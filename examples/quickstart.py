#!/usr/bin/env python
"""Quickstart: verified error bound for the GHZ circuit of the paper.

This walks through the running example of the paper (Example 2.1 / Section 3):
the 2-qubit GHZ preparation ``H(q0); CNOT(q0, q1)`` under a bit-flip noise
model, driven through the public :mod:`repro.api` facade.  Gleipnir

1. approximates the intermediate states with an MPS tensor network,
2. computes a certified (rho, delta)-diamond norm per noisy gate, and
3. chains them with the Seq rule into a verified bound on the whole program,

which we then compare against the unconstrained worst case and the exact
error obtained by full density-matrix simulation (feasible here because the
example is tiny).

Run:  python examples/quickstart.py
"""

from repro import AnalysisConfig, Circuit, NoiseModel
from repro.api import AnalysisSession
from repro.core import exact_error, worst_case_bound


def main() -> None:
    # The GHZ preparation circuit: H(q0); CNOT(q0, q1).
    circuit = Circuit(2, name="ghz-2").h(0).cx(0, 1)

    # The paper's sample noise model: every gate suffers a bit flip with
    # probability p (on its first operand for 2-qubit gates).
    p = 1e-3
    noise = NoiseModel.uniform_bit_flip(p)

    # Analyse through the session facade.  Width 8 is already exact for two
    # qubits; derivation=True keeps the full proof tree on the outcome.
    with AnalysisSession(config=AnalysisConfig(mps_width=8)) as session:
        outcome = session.analyze(circuit, noise, derivation=True)

    print("Program:")
    print("    H(q0); CNOT(q0, q1)   on input |00>")
    print(f"Noise model: bit flip with p = {p:g} per gate\n")

    print(f"Gleipnir verified bound : {outcome.bound:.3e}")
    worst = worst_case_bound(circuit, noise)
    print(f"Worst-case bound        : {worst.value:.3e}   (= gate count x p)")
    exact = exact_error(circuit, noise)
    print(f"Exact error (full sim)  : {exact.value:.3e}\n")

    print("Per-gate contributions (the Gate rule judgments):")
    for row in outcome.gate_contributions():
        print(
            f"  {row.gate_label:>10s} on {row.qubits}: "
            f"eps = {row.epsilon:.3e}   (delta before = {row.delta_before:.1e})"
        )

    print("\nDerivation tree:")
    print(outcome.derivation.pretty())

    # The derivation can be independently re-validated: every SDP certificate
    # is checked for dual feasibility and every rule application re-audited.
    outcome.derivation.check()
    print("\nDerivation re-validated: every step is sound.")

    # The outcome is content-addressed: the fingerprint is the handle a
    # result store or a remote gleipnir-serve would answer for.
    print(f"\nJob fingerprint: {outcome.fingerprint[:16]}…  (status: {outcome.status})")

    assert exact.value <= outcome.bound <= worst.value + 1e-12


if __name__ == "__main__":
    main()
