#!/usr/bin/env python
"""Evaluating qubit-mapping protocols with Gleipnir (the Table 3 study).

A NISQ compiler must decide which physical qubits to run a circuit on; since
device noise is heterogeneous, the choice matters.  This example

1. places GHZ circuits on an emulated IBM-Boeblingen-like 20-qubit device
   under several candidate mappings,
2. computes Gleipnir's verified bound for each mapped circuit under the
   calibration-driven noise model (including readout errors), and
3. compares against the "measured" error from the hardware emulator,
   checking that the bound ranks mappings the same way the measurements do —
   which is what lets Gleipnir guide noise-adaptive mapping without running
   every candidate on hardware.

Finally it asks the noise-adaptive mapping protocol for its own choice and
shows where that lands.

Run:  python examples/qubit_mapping_evaluation.py
"""

from repro.api import AnalysisSession
from repro.config import AnalysisConfig
from repro.devices import (
    CouplingMap,
    HardwareEmulator,
    best_path_mapping,
    boeblingen_calibration,
    map_circuit,
)
from repro.experiments.table3 import analyze_mapped_circuit
from repro.programs import ghz_circuit


def main() -> None:
    coupling = CouplingMap.ibm_boeblingen()
    calibration = boeblingen_calibration()
    emulator = HardwareEmulator(coupling, calibration, seed=42)
    config = AnalysisConfig(mps_width=16)

    circuit = ghz_circuit(3)
    candidate_mappings = [(0, 1, 2), (1, 2, 3), (2, 3, 4), (5, 6, 7)]

    print("GHZ-3 on the emulated Boeblingen-like device")
    print(f"{'mapping':>10s} | {'Gleipnir bound':>14s} | {'measured error':>14s} | {'extra gates':>11s}")
    print("-" * 60)
    rows = []
    # One session fronts every candidate analysis (swap `AnalysisSession()`
    # for `AnalysisSession(remote=...)` to score mappings on a shared server).
    with AnalysisSession() as session:
        for mapping in candidate_mappings:
            mapped = map_circuit(circuit, mapping, coupling)
            bound = analyze_mapped_circuit(mapped, calibration, config=config, session=session)
            measured = emulator.measured_error(mapped, shots=8192)
            rows.append((mapping, bound, measured))
            label = "-".join(map(str, mapping))
            print(f"{label:>10s} | {bound:>14.3f} | {measured:>14.3f} | {mapped.num_added_gates:>11d}")

    by_bound = min(rows, key=lambda row: row[1])[0]
    by_measurement = min(rows, key=lambda row: row[2])[0]
    print(f"\nBest mapping according to Gleipnir     : {'-'.join(map(str, by_bound))}")
    print(f"Best mapping according to the emulator : {'-'.join(map(str, by_measurement))}")

    protocol_choice = best_path_mapping(circuit, coupling, calibration)
    print(f"Noise-adaptive mapping protocol chooses : {'-'.join(map(str, protocol_choice))}")

    print(
        "\nBecause Gleipnir's bounds rank mappings consistently with measured "
        "errors, a compiler can evaluate candidate mappings offline — with a "
        "verified guarantee — instead of calibrating against hardware runs."
    )


if __name__ == "__main__":
    main()
