#!/usr/bin/env python
"""Error analysis of a QAOA max-cut circuit (the Table 2 workload).

Builds a QAOA circuit for max-cut on a random 3-regular graph, analyses it
through the :mod:`repro.api` session facade, and reports:

* the verified Gleipnir bound vs the worst-case (unconstrained diamond norm)
  bound,
* how the bound tightens as the MPS width grows (a miniature Figure 14) —
  submitted as one batch of content-addressed jobs and streamed back in
  completion order,
* which gates contribute most to the bound (useful when deciding where error
  mitigation effort should go).

Run:  python examples/qaoa_maxcut_analysis.py [num_vertices]
"""

import sys

from repro import AnalysisConfig, NoiseModel
from repro.api import AnalysisSession
from repro.core import worst_case_bound
from repro.programs import QAOAParameters, qaoa_maxcut_circuit, random_regular_graph

WIDTHS = (2, 4, 8, 16)


def main(num_vertices: int = 12) -> None:
    graph = random_regular_graph(num_vertices, 3, seed=7)
    params = QAOAParameters.single_round(gamma=0.3, beta=0.25)
    circuit = qaoa_maxcut_circuit(graph, params, name=f"qaoa_{num_vertices}")
    noise = NoiseModel.uniform_bit_flip(1e-4)

    print(f"QAOA max-cut on a random 3-regular graph with {num_vertices} vertices")
    print(f"  edges: {graph.number_of_edges()}, gates: {circuit.gate_count()}\n")

    worst = worst_case_bound(circuit, noise)
    print(f"Worst-case bound (state-agnostic): {worst.value:.4e}\n")

    with AnalysisSession() as session:
        # One job per MPS width, submitted as a single batch through the
        # facade; as_completed() streams outcomes as they finish.
        jobs = [
            session.job(
                circuit,
                noise,
                config=AnalysisConfig(mps_width=width),
                name=f"{circuit.name}[w={width}]",
            )
            for width in WIDTHS
        ]
        print(f"{'MPS width':>10s} | {'Gleipnir bound':>15s} | {'improvement':>12s} | {'time (s)':>9s}")
        print("-" * 57)
        outcomes = dict(session.as_completed(jobs))
        for index, width in enumerate(WIDTHS):
            outcome = outcomes[index]
            improvement = 1.0 - outcome.bound / worst.value
            print(
                f"{width:>10d} | {outcome.bound:>15.4e} | {100 * improvement:>11.1f}% "
                f"| {outcome.elapsed_seconds:>9.2f}"
            )

        # Re-run the widest setting with the derivation tree to see where the
        # bound comes from (records the same judgments, same bound).
        widest = session.analyze(
            circuit, noise, config=AnalysisConfig(mps_width=WIDTHS[-1]), derivation=True
        )

    print("\nFive largest per-gate contributions at the widest setting:")
    contributions = sorted(widest.gate_contributions(), key=lambda row: -row.epsilon)[:5]
    for row in contributions:
        print(f"  {row.gate_label:>12s} on {row.qubits}: eps = {row.epsilon:.3e}")

    print(
        "\nInterpretation: gates acting on qubits whose local state has drifted "
        "away from an X-basis eigenstate dominate the bound; the bit-flip noise "
        "is invisible on the |+>-like states QAOA starts from."
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    main(size)
