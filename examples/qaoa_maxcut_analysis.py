#!/usr/bin/env python
"""Error analysis of a QAOA max-cut circuit (the Table 2 workload).

Builds a QAOA circuit for max-cut on a random 3-regular graph, analyses it
under the paper's bit-flip noise model, and reports:

* the verified Gleipnir bound vs the worst-case (unconstrained diamond norm)
  bound,
* how the bound tightens as the MPS width grows (a miniature Figure 14),
* which gates contribute most to the bound (useful when deciding where error
  mitigation effort should go).

Run:  python examples/qaoa_maxcut_analysis.py [num_vertices]
"""

import sys

from repro import AnalysisConfig, GleipnirAnalyzer, NoiseModel
from repro.core import worst_case_bound
from repro.programs import QAOAParameters, qaoa_maxcut_circuit, random_regular_graph


def main(num_vertices: int = 12) -> None:
    graph = random_regular_graph(num_vertices, 3, seed=7)
    params = QAOAParameters.single_round(gamma=0.3, beta=0.25)
    circuit = qaoa_maxcut_circuit(graph, params, name=f"qaoa_{num_vertices}")
    noise = NoiseModel.uniform_bit_flip(1e-4)

    print(f"QAOA max-cut on a random 3-regular graph with {num_vertices} vertices")
    print(f"  edges: {graph.number_of_edges()}, gates: {circuit.gate_count()}\n")

    worst = worst_case_bound(circuit, noise)
    print(f"Worst-case bound (state-agnostic): {worst.value:.4e}\n")

    print(f"{'MPS width':>10s} | {'Gleipnir bound':>15s} | {'improvement':>12s} | {'time (s)':>9s}")
    print("-" * 57)
    last = None
    for width in (2, 4, 8, 16):
        analyzer = GleipnirAnalyzer(noise, AnalysisConfig(mps_width=width))
        result = analyzer.analyze(circuit)
        improvement = 1.0 - result.error_bound / worst.value
        print(
            f"{width:>10d} | {result.error_bound:>15.4e} | {100 * improvement:>11.1f}% "
            f"| {result.elapsed_seconds:>9.2f}"
        )
        last = result

    print("\nFive largest per-gate contributions at the widest setting:")
    contributions = sorted(last.gate_contributions(), key=lambda row: -row.epsilon)[:5]
    for row in contributions:
        print(f"  {row.gate_label:>12s} on {row.qubits}: eps = {row.epsilon:.3e}")

    print(
        "\nInterpretation: gates acting on qubits whose local state has drifted "
        "away from an X-basis eigenstate dominate the bound; the bit-flip noise "
        "is invisible on the |+>-like states QAOA starts from."
    )


if __name__ == "__main__":
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    main(size)
