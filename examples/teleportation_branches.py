#!/usr/bin/env python
"""Error analysis of a program with measurement branches (the Meas rule).

Quantum teleportation moves the state of qubit 0 onto qubit 2 using an
entangled pair and two mid-circuit measurements whose outcomes control
Pauli corrections.  The program therefore has four measurement branches —
exactly the ``if q = |0> then ... else ...`` construct of the paper's syntax.

Gleipnir handles branches by forking the MPS approximation per outcome
(Section 5.2) and combining the branch bounds with the Meas rule
``(1 - delta) * eps + delta`` (Section 4).  This example analyses the
teleportation circuit under depolarizing noise and verifies the bound against
full density-matrix simulation.

Run:  python examples/teleportation_branches.py
"""

import numpy as np

from repro import AnalysisConfig, Circuit, NoiseModel
from repro.api import AnalysisSession
from repro.core import exact_error


def teleportation_circuit(theta: float = 0.6) -> Circuit:
    """Teleport ``ry(theta)|0>`` from qubit 0 to qubit 2."""
    circuit = Circuit(3, name="teleportation")
    # State to teleport.
    circuit.ry(theta, 0)
    # Bell pair between qubits 1 and 2.
    circuit.h(1)
    circuit.cx(1, 2)
    # Bell measurement on qubits 0 and 1 (rotated into the computational basis).
    circuit.cx(0, 1)
    circuit.h(0)
    # Conditional corrections on qubit 2.
    circuit.if_measure(1, lambda c: None, lambda c: c.x(2))
    circuit.if_measure(0, lambda c: None, lambda c: c.z(2))
    return circuit


def main() -> None:
    circuit = teleportation_circuit()
    noise = NoiseModel.uniform_depolarizing(5e-4, 2e-3)
    with AnalysisSession(config=AnalysisConfig(mps_width=8)) as session:
        outcome = session.analyze(circuit, noise, derivation=True)

        print("Quantum teleportation with mid-circuit measurements")
        print(f"  gates analysed       : {outcome.num_gates}")
        print(f"  measurement branches : {outcome.num_branches}")
        print(f"  Gleipnir bound       : {outcome.bound:.4e}")

        exact = exact_error(circuit, noise)
        print(f"  exact error          : {exact.value:.4e}")
        assert outcome.bound >= exact.value - 1e-12

        print("\nDerivation (trimmed to the first levels):")
        lines = outcome.derivation.pretty().splitlines()
        for line in lines[:12]:
            print(f"  {line}")
        if len(lines) > 12:
            print(f"  ... ({len(lines) - 12} more lines)")

        outcome.derivation.check()
        print("\nDerivation re-validated, including the Meas-rule arithmetic.")

        # The Meas rule charges the full measurement-confusion probability
        # delta, so branchy bounds are more conservative than branch-free ones
        # — run the same physics with deferred measurement to see the
        # difference.
        deferred = Circuit(3, name="teleportation_deferred")
        deferred.ry(0.6, 0).h(1).cx(1, 2).cx(0, 1).h(0).cx(1, 2).cz(0, 2)
        deferred_outcome = session.analyze(deferred, noise)
    print(
        f"\nDeferred-measurement variant bound: {deferred_outcome.bound:.4e} "
        f"(branch-free, {deferred_outcome.num_gates} gates)"
    )


if __name__ == "__main__":
    np.set_printoptions(precision=4, suppress=True)
    main()
