"""Benchmark regenerating Figure 14: error bound and runtime versus MPS size.

The sweep runs the Ising benchmark at increasing bond dimensions.  The shape
assertions mirror the figure: bounds improve (weakly) and saturate as the
width grows, while runtimes grow.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure14 import run_figure14

from conftest import experiment_config, experiment_scale

_SCALE = experiment_scale()
_WIDTHS = (1, 2, 4, 8, 16, 32, 64, 128) if _SCALE == "full" else (1, 2, 4, 8, 16)
_POINTS = {}


@pytest.mark.parametrize("width", _WIDTHS)
def test_figure14_point(benchmark, width):
    config = experiment_config()

    def run():
        return run_figure14(
            scale=_SCALE,
            benchmark="Isingmodel45",
            widths=[width],
            config=config,
        ).points[0]

    point = benchmark.pedantic(run, rounds=1, iterations=1)
    _POINTS[width] = point
    benchmark.extra_info["error_bound"] = point.error_bound
    benchmark.extra_info["final_delta"] = point.final_delta
    assert point.error_bound > 0


def test_figure14_shape():
    if len(_POINTS) < len(_WIDTHS):
        pytest.skip("width benchmarks did not all run")
    widths = sorted(_POINTS)
    bounds = [_POINTS[w].error_bound for w in widths]
    deltas = [_POINTS[w].final_delta for w in widths]
    # Wider MPS => (weakly) tighter bound and smaller truncation error.
    assert bounds[-1] <= bounds[0] + 1e-9
    assert deltas[-1] <= deltas[0] + 1e-12
    for narrow, wide in zip(bounds, bounds[1:]):
        assert wide <= narrow + 1e-6
