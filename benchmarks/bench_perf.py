"""Performance benchmark for the SDP hot path (ISSUE 1 reference workload).

Measures the pieces the perf trajectory tracks:

* the **reference workload** — the profiled 5-qubit / 65-gate random circuit
  analysed end-to-end under the paper's uniform bit-flip model — through the
  scheduled (default, single-pass) and sequential analyzer paths;
* the **SDP micro-kernel** — per-iteration PSD projection throughput of the
  batched packed-real kernel vs the per-block eigendecomposition loop it
  replaced;
* **batched certification** — solving and certifying the workload's unique
  solve classes in one fused batch versus one gate at a time (the two paths
  must produce bit-identical bounds);
* SDP workload statistics (solves, cache/dominance hits, MPS walks).

``scripts/run_bench.py`` calls :func:`collect_all` and writes the result to
``BENCH_perf.json`` at the repository root; the pytest entry points below run
a smoke-sized subset and guard against gross regressions relative to the
committed baseline file.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (REPO_ROOT / "src", REPO_ROOT / "tests"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

from helpers import random_circuit  # noqa: E402

from repro.config import AnalysisConfig  # noqa: E402
from repro.core.analyzer import analyze_program  # noqa: E402
from repro.linalg.decompositions import positive_part  # noqa: E402
from repro.noise import NoiseModel  # noqa: E402
from repro.sdp import get_layout  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_perf.json"

#: Wall-clock of the seed revision's sequential path on the reference
#: workload, measured on the machine that produced the committed baseline.
SEED_BASELINE_SECONDS = 5.44

REFERENCE_QUBITS = 5
REFERENCE_GATES = 65
REFERENCE_SEED = 7


def _reference_circuit():
    return random_circuit(REFERENCE_QUBITS, REFERENCE_GATES, seed=REFERENCE_SEED)


def measure_reference_workload(*, scheduler: bool, mps_width: int = 16) -> dict:
    """Analyse the 5-qubit / 65-gate workload once; report time and stats."""
    circuit = _reference_circuit()
    model = NoiseModel.uniform_bit_flip(1e-3)
    config = AnalysisConfig(mps_width=mps_width, scheduler=scheduler)
    start = time.perf_counter()
    result = analyze_program(circuit, model, config=config)
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "error_bound": result.error_bound,
        "num_gates": result.num_gates,
        "sdp_solves": result.sdp_solves,
        "sdp_cache_hits": result.sdp_cache_hits,
        "sdp_dominance_hits": result.sdp_dominance_hits,
        "scheduled_solves": result.scheduled_solves,
        "mps_walks": result.mps_walks,
    }


def measure_mps_phase(*, mps_width: int = 16) -> dict:
    """Time the MPS approximation alone (the non-SDP phase of the analysis)."""
    from repro.mps.approximator import approximate_program

    circuit = _reference_circuit()
    start = time.perf_counter()
    approximation = approximate_program(circuit, width=mps_width)
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "delta": approximation.delta}


def measure_kernel_microbench(*, batch: int = 64, repeats: int = 50) -> dict:
    """PSD-projection throughput: batched kernel vs per-block eigh loop."""
    layout = get_layout((4, 4, 2, 1))
    rng = np.random.default_rng(0)
    vectors = rng.normal(size=(batch, layout.total_real_dim))

    start = time.perf_counter()
    for _ in range(repeats):
        layout.project_psd(vectors)
    batched_seconds = time.perf_counter() - start

    blocks = [layout.unpack_blocks(vector) for vector in vectors]
    start = time.perf_counter()
    for _ in range(repeats):
        for block_list in blocks:
            for block in block_list:
                if block.shape == (1, 1):
                    max(0.0, block[0, 0].real)
                else:
                    positive_part(block)
    loop_seconds = time.perf_counter() - start

    projections = batch * len(layout.dims) * repeats
    return {
        "batch": batch,
        "repeats": repeats,
        "batched_seconds": batched_seconds,
        "per_block_loop_seconds": loop_seconds,
        "kernel_speedup": loop_seconds / batched_seconds if batched_seconds else None,
        "projections_per_second_batched": projections / batched_seconds,
    }


def reference_solve_classes(*, mps_width: int = 16):
    """The unique (gate, noise, predicate) solve classes of the workload."""
    from repro.core.analyzer import GleipnirAnalyzer
    from repro.core.rules import absorb_continuations
    from repro.core.scheduler import BoundScheduler
    from repro.mps.approximator import MPSApproximator

    circuit = _reference_circuit()
    model = NoiseModel.uniform_bit_flip(1e-3)
    config = AnalysisConfig(mps_width=mps_width)
    analyzer = GleipnirAnalyzer(model, config)
    scheduler = BoundScheduler(
        model, analyzer.cache, config, gate_key=analyzer._gate_key
    )
    program = absorb_continuations(circuit.to_program())
    approximator = MPSApproximator.from_product_state(
        [0] * REFERENCE_QUBITS, width=mps_width
    )
    from repro.core.derivation import ReplayTape

    scheduler._collect(program, approximator, ReplayTape())
    return [
        (c.gate_matrix, c.noise_channel, c.rho_rounded, c.delta_effective)
        for c in scheduler._classes.values()
    ]


def measure_batched_reductions(*, mps_width: int = 16, repeats: int = 20) -> dict:
    """Batched structural-reduction front-end vs the per-instance loop.

    Both paths run the identical stacked primitives (the per-instance path is
    a batch of one), so the outputs must match bit for bit; the measured gap
    is the per-instance Python the batch amortises (Choi lookups, conjugation
    dispatch, partial-trace plumbing).  Both sides are timed warm — the
    per-channel factoring memo is shared state, so the first call pays it for
    whichever side runs first.
    """
    import numpy as np

    from repro.sdp.diamond import (
        _reduced_gate_problem,
        _reduced_gate_problems_batch,
    )

    instances = reference_solve_classes(mps_width=mps_width)
    problems = [(gate, channel, rho) for gate, channel, rho, _delta in instances]

    batched = _reduced_gate_problems_batch(problems)  # warm the factoring memo
    start = time.perf_counter()
    for _ in range(repeats):
        batched = _reduced_gate_problems_batch(problems)
    batched_seconds = (time.perf_counter() - start) / repeats

    per_instance = [_reduced_gate_problem(*problem) for problem in problems]
    start = time.perf_counter()
    for _ in range(repeats):
        per_instance = [_reduced_gate_problem(*problem) for problem in problems]
    per_instance_seconds = (time.perf_counter() - start) / repeats

    bit_identical = all(
        np.array_equal(batch_choi, single_choi)
        and np.array_equal(batch_sigma, single_sigma)
        for (batch_choi, batch_sigma), (single_choi, single_sigma) in zip(
            batched, per_instance
        )
    )
    return {
        "unique_classes": len(problems),
        "repeats": repeats,
        "batched_seconds": batched_seconds,
        "per_instance_seconds": per_instance_seconds,
        "reduction_speedup": (
            per_instance_seconds / batched_seconds if batched_seconds else None
        ),
        "bit_identical": bit_identical,
    }


def measure_batch_certification(*, mps_width: int = 16) -> dict:
    """Fused batch solve+certify vs one gate at a time, on the unique classes.

    Both paths run the identical batched primitives (the per-gate path is a
    batch of one), so the bounds must match bit for bit; the measured gap is
    pure batching leverage (dispatch overhead and small-matrix eigh fusion).
    """
    from repro.sdp import gate_error_bound, gate_error_bounds_batch

    instances = reference_solve_classes(mps_width=mps_width)

    start = time.perf_counter()
    batched = gate_error_bounds_batch(instances)
    batched_seconds = time.perf_counter() - start

    start = time.perf_counter()
    per_gate = [gate_error_bound(*instance) for instance in instances]
    per_gate_seconds = time.perf_counter() - start

    return {
        "unique_classes": len(instances),
        "batched_seconds": batched_seconds,
        "per_gate_seconds": per_gate_seconds,
        "batch_speedup": per_gate_seconds / batched_seconds if batched_seconds else None,
        "bit_identical": [b.value for b in batched] == [b.value for b in per_gate],
    }


def measure_tracing_overhead(*, mps_width: int = 16, repeats: int = 3) -> dict:
    """Cost of running the reference workload with full observability on.

    Runs the scheduled analysis ``repeats`` times with tracing + a scoped
    metrics registry active and ``repeats`` times with both off, keeping the
    best time of each (best-of-N is the standard way to shave scheduler
    jitter off a CI runner).  The bounds must be bit-identical either way —
    observability is read-only by construction.
    """
    from repro.obs import metrics as obs_metrics
    from repro.obs.trace import collecting

    def best_of(instrumented: bool) -> tuple[float, float, int]:
        best = float("inf")
        bound = None
        spans = 0
        for _ in range(repeats):
            if instrumented:
                with obs_metrics.scoped(), collecting() as collector:
                    run = measure_reference_workload(
                        scheduler=True, mps_width=mps_width
                    )
                    spans = len(collector)
            else:
                run = measure_reference_workload(scheduler=True, mps_width=mps_width)
            best = min(best, run["seconds"])
            bound = run["error_bound"]
        return best, bound, spans

    off_seconds, off_bound, _ = best_of(False)
    on_seconds, on_bound, span_count = best_of(True)
    return {
        "seconds_off": off_seconds,
        "seconds_on": on_seconds,
        "overhead_ratio": on_seconds / max(off_seconds, 1e-9),
        "spans_recorded": span_count,
        "bit_identical": off_bound == on_bound,
    }


#: CI gate: tracing + metrics may cost at most this fraction of the
#: uninstrumented runtime on the reference workload (ISSUE 7 acceptance).
TRACING_OVERHEAD_BUDGET = 0.05


def collect_all() -> dict:
    """The full BENCH_perf.json payload."""
    # One small warm-up analysis so the measured phases reflect steady state
    # (shape templates, layout caches, numpy dispatch) rather than
    # first-call costs, which would otherwise land on whichever phase runs
    # first and add noise to the regression gate.
    measure_reference_workload(scheduler=True, mps_width=8)
    sequential = measure_reference_workload(scheduler=False)
    scheduled = measure_reference_workload(scheduler=True)
    return {
        "workload": {
            "description": (
                f"random {REFERENCE_QUBITS}-qubit/{REFERENCE_GATES}-gate circuit, "
                "uniform bit-flip 1e-3, certified SDP mode"
            ),
            "seed_baseline_seconds": SEED_BASELINE_SECONDS,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "phases": {
            "mps_approximation": measure_mps_phase(),
            "analyze_sequential": sequential,
            "analyze_scheduled": scheduled,
        },
        "kernel_microbench": measure_kernel_microbench(),
        "batch_certification_microbench": measure_batch_certification(),
        "batched_reduction_microbench": measure_batched_reductions(),
        "tracing_overhead_microbench": measure_tracing_overhead(),
        "speedup_vs_seed_baseline": SEED_BASELINE_SECONDS / scheduled["seconds"],
        "speedup_scheduled_vs_sequential": (
            sequential["seconds"] / scheduled["seconds"]
        ),
        "single_pass": {
            "scheduled_mps_walks": scheduled["mps_walks"],
            "bounds_bit_identical_scheduled_vs_sequential": (
                scheduled["error_bound"] == sequential["error_bound"]
            ),
        },
    }


def load_baseline() -> dict | None:
    if not BASELINE_PATH.exists():
        return None
    try:
        payload = json.loads(BASELINE_PATH.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return payload or None


# ---------------------------------------------------------------------------
# pytest entry points (smoke-sized; used by CI)
# ---------------------------------------------------------------------------

def regression_budget_seconds(baseline: dict, sequential_seconds: float) -> float:
    """The 2x-regression budget, calibrated to the current machine.

    CI runners and developer laptops differ in raw speed, so the committed
    absolute numbers cannot be compared directly.  The sequential path
    measured in the *same run* serves as the speed calibration: the budget is
    2x the committed scheduled time, scaled by how much slower (or faster)
    this machine ran the sequential path than the baseline machine did.
    """
    baseline_scheduled = baseline["phases"]["analyze_scheduled"]["seconds"]
    baseline_sequential = baseline["phases"]["analyze_sequential"]["seconds"]
    machine_factor = sequential_seconds / max(baseline_sequential, 1e-9)
    return 2.0 * max(baseline_scheduled, 0.05) * max(machine_factor, 0.1)


def test_reference_workload_smoke():
    """The scheduled path analyses the reference workload and certifies it."""
    scheduled = measure_reference_workload(scheduler=True)
    assert scheduled["error_bound"] > 0
    assert scheduled["num_gates"] == REFERENCE_GATES
    assert scheduled["sdp_cache_hits"] >= scheduled["sdp_solves"]
    # Single-pass pipeline: the MPS phase ran exactly once.
    assert scheduled["mps_walks"] == 1

    baseline = load_baseline()
    if baseline is None:
        return
    sequential = measure_reference_workload(scheduler=False)
    budget = regression_budget_seconds(baseline, sequential["seconds"])
    assert scheduled["seconds"] < budget, (
        f"reference workload took {scheduled['seconds']:.2f}s, over the "
        f"machine-calibrated 2x budget of {budget:.2f}s (committed scheduled "
        f"baseline {baseline['phases']['analyze_scheduled']['seconds']:.2f}s)"
    )


def test_kernel_microbench_smoke():
    micro = measure_kernel_microbench(batch=16, repeats=5)
    assert micro["kernel_speedup"] is not None
    # The batched projection must beat the per-block Python loop.
    assert micro["kernel_speedup"] > 1.0


def test_batch_certification_smoke():
    """Fused batch certification is bit-identical to the per-gate path."""
    micro = measure_batch_certification()
    assert micro["unique_classes"] > 0
    assert micro["bit_identical"]


def test_batched_reductions_smoke():
    """The batched reduction front-end is bit-identical to per-instance."""
    micro = measure_batched_reductions(repeats=3)
    assert micro["unique_classes"] > 0
    assert micro["bit_identical"]
    assert micro["reduction_speedup"] is not None


if __name__ == "__main__":
    print(json.dumps(collect_all(), indent=2))
