"""Performance benchmark for the analysis engine (ISSUE 2 reference workload).

The **reference multi-program workload** is a serving trace over the reduced
Table 2 suite: every benchmark program is submitted ``DUPLICATES_FACTOR``
times, the way repeated user traffic re-requests the same analyses.  The
engine is measured on three axes:

* **throughput** — jobs/minute at 1, 2, and 4 workers (content-addressed
  dedupe means each unique analysis is paid for once per batch);
* **vs the pre-engine baseline** — the same trace analysed one submission at
  a time with no dedupe, the way ``run_table2`` worked before the engine;
* **warm persistent cache** — the Table 2 reduced sweep cold versus re-run
  against the shared on-disk bound store (``--cache-dir``), which must keep
  bounds bit-identical while eliminating every SDP solve;
* **whole-outcome warm path** — the serving trace cold versus re-run against
  the content-addressed :class:`~repro.engine.outcomes.OutcomeStore`, where a
  warm submission must execute nothing at all (zero MPS walks, zero SDP
  solves), stay bit-identical, and keep its stored dual certificates
  re-verifiable (``--check --engine`` fails below a 50x warm speedup).

``scripts/run_bench.py --engine`` writes the result to ``BENCH_engine.json``
at the repository root (``--warm`` refreshes just the warm-cache section;
``--check --engine`` re-runs the trace and fails on a >2x regression against
the committed file, scaled by the single-job ``calibration`` measurement so
machines of different speeds compare fairly).
Throughput scaling across workers is hardware-bound: on a single-core
container the 1/2/4-worker rows measure dispatch overhead, not parallelism,
which is why ``environment.cpu_count`` is part of the payload.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (REPO_ROOT / "src", REPO_ROOT / "tests"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

from repro.api import AnalysisSession  # noqa: E402
from repro.circuits.program import Seq  # noqa: E402
from repro.config import AnalysisConfig, DEFAULT_BIT_FLIP_PROBABILITY  # noqa: E402
from repro.core.scheduler import clear_tape_memo  # noqa: E402
from repro.engine.costmodel import reset_global_model  # noqa: E402
from repro.engine.outcomes import OutcomeStore  # noqa: E402
from repro.engine.pool import AnalysisEngine, execute_job  # noqa: E402
from repro.engine.spec import AnalysisJob  # noqa: E402
from repro.noise import NoiseModel  # noqa: E402
from repro.programs.library import table2_benchmarks  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_engine.json"

#: How often each unique program appears in the serving trace.
DUPLICATES_FACTOR = 3
#: MPS width of the workload (matches the reduced Table 2 default).
WORKLOAD_MPS_WIDTH = 16
WORKER_COUNTS = (1, 2, 4)
#: Single program used to calibrate machine speed for the CI regression gate.
CALIBRATION_BENCHMARK = "Isingmodel10"
#: Worker count whose committed timing the regression gate compares against.
CHECK_WORKERS = 2


def unique_jobs(*, benchmarks: list[str] | None = None) -> list[AnalysisJob]:
    """One job per reduced Table 2 benchmark (optionally a named subset)."""
    model = NoiseModel.uniform_bit_flip(DEFAULT_BIT_FLIP_PROBABILITY)
    config = AnalysisConfig(mps_width=WORKLOAD_MPS_WIDTH)
    specs = table2_benchmarks("reduced")
    if benchmarks is not None:
        specs = [spec for spec in specs if spec.name in set(benchmarks)]
    return [
        AnalysisJob.from_circuit(spec.build(), model, config=config, name=spec.name)
        for spec in specs
    ]


def reference_trace(jobs: list[AnalysisJob]) -> list[AnalysisJob]:
    """The serving trace: every job submitted ``DUPLICATES_FACTOR`` times."""
    return jobs * DUPLICATES_FACTOR


def measure_sequential_baseline(trace: list[AnalysisJob]) -> dict:
    """The pre-engine path: analyse every submission, no dedupe, no sharing."""
    start = time.perf_counter()
    results = [execute_job(job) for job in trace]
    seconds = time.perf_counter() - start
    assert all(result.ok for result in results)
    return {
        "seconds": seconds,
        "jobs_per_minute": 60.0 * len(trace) / seconds,
        "analyses_executed": len(trace),
    }


def measure_engine(trace: list[AnalysisJob], *, workers: int) -> dict:
    """One facade batch over the trace (fresh session, no store, no disk cache)."""
    with AnalysisSession(workers=workers) as session:
        start = time.perf_counter()
        outcomes = session.analyze_batch(trace)
        seconds = time.perf_counter() - start
        assert all(outcome.ok for outcome in outcomes)
        shards = session.engine.stats()["last_batch_shards"]
    unique = len({outcome.fingerprint for outcome in outcomes})
    return {
        "workers": workers,
        "seconds": seconds,
        "jobs_per_minute": 60.0 * len(trace) / seconds,
        "analyses_executed": shards["pending_jobs"] if shards else unique,
        "deduplicated_submissions": len(trace) - unique,
        "bounds": [outcome.bound for outcome in outcomes],
    }


def measure_warm_cache(jobs: list[AnalysisJob], *, workers: int = 1) -> dict:
    """Cold vs warm sweep against a shared persistent bound cache."""
    with tempfile.TemporaryDirectory(prefix="bench-engine-cache-") as tmp:
        cache_dir = os.path.join(tmp, "bounds")
        with AnalysisSession(workers=workers, cache_dir=cache_dir) as session:
            start = time.perf_counter()
            cold = session.analyze_batch(jobs)
            cold_seconds = time.perf_counter() - start

        with AnalysisSession(workers=workers, cache_dir=cache_dir) as session:
            start = time.perf_counter()
            warm = session.analyze_batch(jobs)
            warm_seconds = time.perf_counter() - start
    assert all(o.ok for o in cold) and all(o.ok for o in warm)
    return {
        "workers": workers,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup_warm_vs_cold": cold_seconds / warm_seconds,
        "bit_identical": [o.bound for o in cold] == [o.bound for o in warm],
        "sdp_solves_cold": sum(o.sdp_solves for o in cold),
        "sdp_solves_warm": sum(o.sdp_solves for o in warm),
    }


#: Warm traffic must be at least this much faster than cold (the whole point
#: of the outcome store: a warm hit is one dict lookup, not an MPS walk plus
#: a derivation replay).  ``--check --engine`` fails below it.
OUTCOME_WARM_SPEEDUP_FLOOR = 50.0


def measure_outcome_warm_path(jobs: list[AnalysisJob], *, duplicates: int = DUPLICATES_FACTOR) -> dict:
    """Cold vs warm serving trace against the whole-outcome store.

    The cold engine executes every unique analysis once and writes the full
    :class:`~repro.engine.spec.JobResult` plus dual certificates to the
    store; a **fresh** engine over the same file then replays the trace and
    must answer every submission without a single execution (zero MPS walks,
    zero SDP solves), bit-identical to the cold results, with every stored
    certificate still re-verifiable on demand.
    """
    trace = reference_trace(jobs) if duplicates == DUPLICATES_FACTOR else jobs * duplicates
    with tempfile.TemporaryDirectory(prefix="bench-engine-outcomes-") as tmp:
        path = os.path.join(tmp, "outcomes.jsonl")
        start = time.perf_counter()
        cold = AnalysisEngine(workers=1, outcomes=path).run(trace)
        cold_seconds = time.perf_counter() - start
        assert cold.ok

        # A fresh engine + store over the same file: the cross-process warm hit.
        warm_engine = AnalysisEngine(workers=1, outcomes=path)
        start = time.perf_counter()
        warm = warm_engine.run(trace)
        warm_seconds = time.perf_counter() - start
        assert warm.ok

        store = OutcomeStore(path)
        certificates_reverified = all(
            store.get(job.fingerprint(), verify=True) is not None for job in jobs
        )
        stats = warm_engine.stats()["outcomes"]
    return {
        "workers": 1,
        "submissions": len(trace),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup_warm_vs_cold": cold_seconds / warm_seconds,
        "warm_jobs_per_minute": 60.0 * len(trace) / warm_seconds,
        "executed_cold": cold.executed,
        # Zero == the warm trace performed no MPS walk and no SDP solve.
        "executed_warm": warm.executed,
        "outcome_hits_warm": warm.outcome_hits,
        "bit_identical": warm.results == cold.results,
        "certificates_reverified": certificates_reverified,
        "store_stats": stats,
    }


#: A fused concurrent multi-job window must beat the same batch unfused by at
#: least this factor (cross-job dedupe + one giant kernel launch instead of
#: many under-filled per-job launches).  ``--check --engine`` fails below it.
FUSION_SPEEDUP_FLOOR = 2.0

#: Program whose prefix truncations form the concurrent serving slice.
FUSION_BENCHMARK = "QAOA_line_10"
#: Prefix fractions of the fused workload — overlapping but *distinct* jobs
#: (distinct fingerprints, so no engine-level dedupe), whose shared prefix
#: makes their quantised solve classes overlap heavily.
FUSION_PREFIX_FRACTIONS = (0.7, 0.8, 0.9, 1.0)
#: Fusion window used by the benchmark: effectively unbounded, so the whole
#: batch is always admitted (the window is a latency knob, not the subject).
FUSION_WINDOW_MS = 10_000.0


def fusion_jobs() -> list[AnalysisJob]:
    """The concurrent multi-job slice: prefix truncations of one benchmark.

    Concurrent users iterating on variants of one circuit submit near-
    duplicate programs; prefix truncation models that while guaranteeing the
    jobs share quantised solve classes (identical MPS evolution over the
    shared prefix) yet stay distinct jobs to the engine.
    """
    model = NoiseModel.uniform_bit_flip(DEFAULT_BIT_FLIP_PROBABILITY)
    config = AnalysisConfig(mps_width=WORKLOAD_MPS_WIDTH)
    spec = next(s for s in table2_benchmarks("reduced") if s.name == FUSION_BENCHMARK)
    circuit = spec.build()
    program = circuit.to_program()
    parts = list(program.parts) if isinstance(program, Seq) else [program]
    jobs = []
    for fraction in FUSION_PREFIX_FRACTIONS:
        keep = max(1, int(len(parts) * fraction))
        jobs.append(
            AnalysisJob(
                program=Seq(tuple(parts[:keep])),
                noise_model=model,
                config=config,
                num_qubits=circuit.num_qubits,
                name=f"{FUSION_BENCHMARK}_prefix{keep}",
            )
        )
    return jobs


def measure_cross_job_fusion(*, jobs: list[AnalysisJob] | None = None) -> dict:
    """Fused vs unfused execution of the concurrent multi-job serving slice.

    Both legs run the same batch on a fresh engine with a fresh outcome
    store; process-wide state (tape prefix memo, solve cost model) is reset
    before each leg so neither inherits the other's warmth.  The fused leg
    must produce bit-identical bounds, keep every stored dual certificate
    re-verifiable, and beat the unfused leg by ``FUSION_SPEEDUP_FLOOR``.
    """
    jobs = jobs if jobs is not None else fusion_jobs()

    def leg(batch_window_ms: float) -> dict:
        clear_tape_memo()
        reset_global_model()
        with tempfile.TemporaryDirectory(prefix="bench-engine-fusion-") as tmp:
            path = os.path.join(tmp, "outcomes.jsonl")
            engine = AnalysisEngine(
                workers=1, outcomes=path, batch_window_ms=batch_window_ms
            )
            start = time.perf_counter()
            report = engine.run(jobs)
            seconds = time.perf_counter() - start
            assert report.ok
            store = OutcomeStore(path)
            certificates_reverified = all(
                store.get(job.fingerprint(), verify=True) is not None for job in jobs
            )
            return {
                "seconds": seconds,
                "bounds": [result.error_bound for result in report.results],
                "sdp_solves": sum(result.sdp_solves for result in report.results),
                "certificates_reverified": certificates_reverified,
                "fusion": engine.stats()["fusion"],
            }

    unfused = leg(0.0)
    fused = leg(FUSION_WINDOW_MS)
    clear_tape_memo()
    reset_global_model()
    return {
        "workers": 1,
        "jobs": len(jobs),
        "benchmark": FUSION_BENCHMARK,
        "prefix_fractions": list(FUSION_PREFIX_FRACTIONS),
        "unfused_seconds": unfused["seconds"],
        "fused_seconds": fused["seconds"],
        "speedup_fused_vs_unfused": unfused["seconds"] / fused["seconds"],
        "fused_jobs_per_minute": 60.0 * len(jobs) / fused["seconds"],
        "bit_identical": fused["bounds"] == unfused["bounds"],
        "certificates_reverified": (
            unfused["certificates_reverified"] and fused["certificates_reverified"]
        ),
        "sdp_solves_unfused": unfused["sdp_solves"],
        "sdp_solves_fused": fused["sdp_solves"],
        "fused_jobs": fused["fusion"]["fused_jobs"],
        "fused_classes": fused["fusion"]["fused_classes"],
    }


#: Registry string-lookup dispatch may cost at most this fraction over a
#: direct ``diamond_distance`` call (``--check --engine`` fails beyond it).
REGISTRY_OVERHEAD_BUDGET = 0.05
#: Interleaved timing rounds of the registry-vs-direct measurement.
METRIC_REGISTRY_REPEATS = 30


def _metric_channel_pairs():
    from repro.noise.channels import bit_flip, depolarizing, identity_noise

    return [
        (bit_flip(1e-3), identity_noise(1)),
        (depolarizing(1e-3), identity_noise(1)),
        (bit_flip(1e-3), bit_flip(2e-3)),
    ]


def measure_metric_registry(*, repeats: int = METRIC_REGISTRY_REPEATS) -> dict:
    """Registry-routed diamond norm vs the legacy direct call.

    Times ``get_metric("diamond_norm").compute(a, b)`` against
    ``diamond_distance(a, b)`` over the same channel pairs, interleaved (one
    round of each per repeat, warmup round excluded) so cache warmth and CPU
    frequency drift hit both paths equally.  Medians are compared; the two
    paths must be **bit-identical** — the registry adds dispatch, never
    arithmetic — and the dispatch overhead must stay within
    ``REGISTRY_OVERHEAD_BUDGET``.
    """
    import statistics

    from repro.metrics import get_metric
    from repro.sdp.diamond import diamond_distance

    pairs = _metric_channel_pairs()
    metric = get_metric("diamond_norm")
    config = AnalysisConfig().sdp

    def run_direct():
        return [diamond_distance(a, b, config=config).value for a, b in pairs]

    def run_registry():
        return [metric.compute(a, b, config=config).value for a, b in pairs]

    # Warmup: template caches, import side effects, allocator steady state.
    direct_values = run_direct()
    registry_values = run_registry()

    direct_times, registry_times = [], []
    for _ in range(repeats):
        start = time.perf_counter()
        run_direct()
        direct_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        run_registry()
        registry_times.append(time.perf_counter() - start)

    direct_median = statistics.median(direct_times)
    registry_median = statistics.median(registry_times)
    return {
        "pairs": len(pairs),
        "repeats": repeats,
        "direct_median_seconds": direct_median,
        "registry_median_seconds": registry_median,
        "dispatch_overhead_ratio": registry_median / max(direct_median, 1e-12) - 1.0,
        "bit_identical": registry_values == direct_values,
        "values": registry_values,
    }


def measure_calibration() -> dict:
    """One inline analysis of the calibration benchmark (machine-speed probe).

    CI runners and developer laptops differ in raw speed, so committed
    absolute engine timings cannot be compared directly; this single-job
    measurement, taken both when the baseline was committed and at check
    time, supplies the scaling factor (see :func:`regression_budget_seconds`).
    """
    (job,) = unique_jobs(benchmarks=[CALIBRATION_BENCHMARK])
    start = time.perf_counter()
    result = execute_job(job)
    seconds = time.perf_counter() - start
    assert result.ok
    return {"benchmark": CALIBRATION_BENCHMARK, "seconds": seconds}


def regression_budget_seconds(baseline: dict, calibration_seconds: float) -> float:
    """The 2x-regression budget for the engine trace, machine-calibrated.

    The budget is 2x the committed ``workers_2`` trace time, scaled by how
    much slower (or faster) this machine ran the calibration job than the
    baseline machine did.
    """
    committed = baseline["engine"][f"workers_{CHECK_WORKERS}"]["seconds"]
    committed_calibration = baseline["calibration"]["seconds"]
    machine_factor = calibration_seconds / max(committed_calibration, 1e-9)
    return 2.0 * max(committed, 0.5) * max(machine_factor, 0.1)


def measure_check() -> dict:
    """The measurements the CI regression gate needs: calibration + one run."""
    jobs = unique_jobs()
    trace = reference_trace(jobs)
    calibration = measure_calibration()
    run = measure_engine(trace, workers=CHECK_WORKERS)
    return {
        "calibration_seconds": calibration["seconds"],
        "seconds": run["seconds"],
        "workers": CHECK_WORKERS,
        "submissions": len(trace),
    }


def _environment() -> dict:
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def collect_all() -> dict:
    """The full BENCH_engine.json payload."""
    jobs = unique_jobs()
    trace = reference_trace(jobs)
    sequential = measure_sequential_baseline(trace)
    engine_runs = {f"workers_{n}": measure_engine(trace, workers=n) for n in WORKER_COUNTS}

    sequential_unique_bounds = None
    four = engine_runs.get("workers_4")
    if four is not None:
        # bit-identity check: the engine's bounds vs the no-engine baseline
        direct = [execute_job(job) for job in jobs]
        sequential_unique_bounds = [result.error_bound for result in direct]
        assert four["bounds"] == sequential_unique_bounds * DUPLICATES_FACTOR

    payload = {
        "workload": {
            "description": (
                "serving trace over the reduced Table 2 suite: "
                f"{len(jobs)} unique programs x {DUPLICATES_FACTOR} submissions, "
                f"uniform bit-flip {DEFAULT_BIT_FLIP_PROBABILITY:g}, "
                f"MPS width {WORKLOAD_MPS_WIDTH}, certified SDP mode"
            ),
            "unique_programs": len(jobs),
            "duplicates_factor": DUPLICATES_FACTOR,
            "submissions": len(trace),
            "mps_width": WORKLOAD_MPS_WIDTH,
        },
        "environment": _environment(),
        "calibration": measure_calibration(),
        "sequential_baseline": sequential,
        "engine": {
            key: {k: v for k, v in run.items() if k != "bounds"}
            for key, run in engine_runs.items()
        },
        "speedup_at_4_workers_vs_sequential": (
            sequential["seconds"] / engine_runs["workers_4"]["seconds"]
        ),
        "bounds_bit_identical_at_4_workers": four["bounds"][: len(jobs)]
        == sequential_unique_bounds,
        "warm_cache_table2_reduced": measure_warm_cache(jobs),
        "outcome_store_warm_path": measure_outcome_warm_path(jobs),
        "cross_job_fusion": measure_cross_job_fusion(),
        "metric_registry": measure_metric_registry(),
    }
    return payload


def collect_warm_only() -> dict:
    """Just the warm-cache section (``scripts/run_bench.py --warm``)."""
    return measure_warm_cache(unique_jobs())


def load_baseline() -> dict | None:
    if not BASELINE_PATH.exists():
        return None
    try:
        payload = json.loads(BASELINE_PATH.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return payload or None


# ---------------------------------------------------------------------------
# pytest entry points (smoke-sized; used by CI)
# ---------------------------------------------------------------------------

SMOKE_BENCHMARKS = ["QAOA_line_10", "Isingmodel10", "QAOARandom20"]


def test_engine_sweep_smoke():
    """A 2-worker facade sweep of three small programs matches the inline one."""
    jobs = unique_jobs(benchmarks=SMOKE_BENCHMARKS)
    assert len(jobs) == 3
    trace = jobs * 2
    with AnalysisSession(workers=1) as session:
        inline = session.analyze_batch(trace)
    with AnalysisSession(workers=2) as session:
        sharded = session.analyze_batch(trace)
        shards = session.engine.stats()["last_batch_shards"]
    assert all(o.ok for o in inline) and all(o.ok for o in sharded)
    assert shards["pending_jobs"] == 3  # dedupe: 6 submissions, 3 executions
    assert [o.bound for o in sharded] == [o.bound for o in inline]


def test_warm_cache_smoke():
    """A warm re-run answers everything from disk with identical bounds."""
    jobs = unique_jobs(benchmarks=SMOKE_BENCHMARKS[:1])
    warm = measure_warm_cache(jobs)
    assert warm["bit_identical"]
    assert warm["sdp_solves_warm"] == 0
    assert warm["sdp_solves_cold"] > 0


def test_outcome_warm_path_smoke():
    """A warm outcome-store trace executes nothing and stays bit-identical."""
    jobs = unique_jobs(benchmarks=SMOKE_BENCHMARKS[:1])
    outcome = measure_outcome_warm_path(jobs, duplicates=2)
    assert outcome["executed_warm"] == 0
    assert outcome["outcome_hits_warm"] == 1
    assert outcome["bit_identical"]
    assert outcome["certificates_reverified"]


def test_cross_job_fusion_smoke():
    """Fused cross-job bounds are bit-identical with certificates intact.

    The ≥2x speedup floor is asserted by ``run_bench.py --check --engine``
    (timing assertions do not belong in a unit smoke); here the checks are
    the structural ones — the window actually fused work across jobs, the
    fused bounds match the unfused ones exactly, and every stored dual
    certificate still re-verifies.
    """
    fusion = measure_cross_job_fusion()
    assert fusion["bit_identical"]
    assert fusion["certificates_reverified"]
    assert fusion["fused_jobs"] == len(FUSION_PREFIX_FRACTIONS)
    assert fusion["fused_classes"] > 0
    # Cross-job dedupe + persistent transport: the fused jobs answer their
    # classes from the shared store instead of solving them again.
    assert fusion["sdp_solves_fused"] == 0
    assert fusion["sdp_solves_unfused"] > 0


def test_metric_registry_smoke():
    """Registry-routed diamond norm is bit-identical to the direct call.

    The ≤5% dispatch-overhead budget is asserted by ``run_bench.py --check
    --engine`` (timing assertions do not belong in a unit smoke); here the
    check is the structural one — same channels through ``get_metric`` and
    through ``diamond_distance`` produce the exact same floats.
    """
    measurement = measure_metric_registry(repeats=3)
    assert measurement["bit_identical"]
    assert len(measurement["values"]) == measurement["pairs"]
    assert all(value >= 0.0 for value in measurement["values"])
    assert any(value > 0.0 for value in measurement["values"])


if __name__ == "__main__":
    print(json.dumps(collect_all(), indent=2))
