"""Benchmark regenerating Table 2: Gleipnir vs LQR-full-simulation vs worst case.

Each paper row is one benchmark case.  The reduced configuration (default)
uses the smaller stand-in circuits from :mod:`repro.programs.library`; with
``REPRO_FULL=1`` the paper-scale circuits and MPS width 128 are used.

Shape assertions (the reproduction targets) run on every case:

* the Gleipnir bound never exceeds the worst-case bound;
* the worst-case bound is exactly ``gate count x p``;
* the LQR + full-simulation baseline matches Gleipnir on rows it can handle
  and reports a timeout on rows beyond the dense-simulation budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.table2 import run_table2_row
from repro.programs import table2_benchmarks

from conftest import experiment_config, experiment_mps_width, experiment_scale

_SCALE = experiment_scale()
_SPECS = table2_benchmarks(_SCALE)
_RESULTS = {}


@pytest.mark.parametrize("spec", _SPECS, ids=[spec.name for spec in _SPECS])
def test_table2_row(benchmark, spec):
    config = experiment_config()
    # The LQR + full-simulation baseline is exponential; restrict it to the
    # rows it can realistically handle (the paper's 10-qubit rows).  At full
    # scale it is attempted everywhere so the >= 20-qubit rows demonstrate the
    # timeout behaviour of Table 2.
    include_lqr = spec.num_qubits <= 10 or _SCALE == "full"

    def run():
        return run_table2_row(
            spec,
            mps_width=experiment_mps_width(),
            config=config,
            include_lqr=include_lqr,
        )

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[spec.name] = row

    benchmark.extra_info["qubits"] = row.num_qubits
    benchmark.extra_info["gates"] = row.gate_count
    benchmark.extra_info["gleipnir_bound"] = row.gleipnir_bound
    benchmark.extra_info["worst_case_bound"] = row.worst_case_bound
    benchmark.extra_info["improvement"] = row.improvement_over_worst_case
    benchmark.extra_info["lqr_bound"] = row.lqr_bound
    benchmark.extra_info["lqr_timed_out"] = row.lqr_timed_out

    # --- shape assertions -------------------------------------------------
    assert row.gleipnir_bound <= row.worst_case_bound + 1e-9
    assert np.isclose(row.worst_case_bound, row.gate_count * 1e-4, rtol=1e-6)
    assert row.improvement_over_worst_case >= 0.0
    if include_lqr and not row.lqr_timed_out:
        # With exact predicates the LQR baseline coincides with Gleipnir up to
        # MPS truncation (tiny on these instances).
        assert row.lqr_bound == pytest.approx(row.gleipnir_bound, rel=0.2, abs=5e-4)
    if include_lqr and row.num_qubits > config.guard.max_dense_qubits:
        assert row.lqr_timed_out


def test_table2_aggregate_shape():
    """Across the suite: the line benchmark is dramatically tighter; the large
    entangled benchmarks land in the paper's 10-50% improvement band."""
    if len(_RESULTS) < len(_SPECS):
        pytest.skip("row benchmarks did not all run")
    line = _RESULTS["QAOA_line_10"]
    assert line.improvement_over_worst_case > 0.5
    for name in ("QAOARandom20", "QAOA4reg_20", "QAOA50", "QAOA75", "QAOA100"):
        improvement = _RESULTS[name].improvement_over_worst_case
        assert 0.05 <= improvement <= 0.6, (name, improvement)
