"""Ablation benchmark: MPS approximator cost and truncation-error scaling.

Measures the throughput of the tensor-network substrate itself (gate
application and reduced-density-matrix extraction at several bond dimensions)
and checks the qualitative scaling DESIGN.md documents: larger widths cost
more per gate but accumulate less truncation error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mps import MPSApproximator
from repro.programs import IsingParameters, ising_circuit

_WIDTHS = (4, 16, 64)
_DELTAS: dict[int, float] = {}


def _workload():
    return ising_circuit(
        12, IsingParameters(steps=3, time_step=0.3), initial_superposition=True
    )


@pytest.mark.parametrize("width", _WIDTHS)
def test_mps_circuit_application(benchmark, width):
    circuit = _workload()

    def run():
        approximator = MPSApproximator.zero_state(circuit.num_qubits, width=width)
        approximator.apply_circuit(circuit)
        return approximator

    approximator = benchmark.pedantic(run, rounds=1, iterations=2)
    _DELTAS[width] = approximator.delta
    benchmark.extra_info["delta"] = approximator.delta
    benchmark.extra_info["max_bond"] = approximator.mps.max_bond_dimension()
    assert approximator.delta >= 0.0


def test_truncation_error_decreases_with_width():
    if len(_DELTAS) < len(_WIDTHS):
        pytest.skip("width benchmarks did not all run")
    deltas = [_DELTAS[w] for w in sorted(_DELTAS)]
    assert deltas[-1] <= deltas[0] + 1e-12


@pytest.mark.parametrize("width", (8, 32))
def test_local_predicate_extraction(benchmark, width):
    circuit = _workload()
    approximator = MPSApproximator.zero_state(circuit.num_qubits, width=width)
    approximator.apply_circuit(circuit)
    rng = np.random.default_rng(0)
    pairs = [tuple(sorted(rng.choice(circuit.num_qubits, 2, replace=False))) for _ in range(8)]

    def run():
        return [approximator.local_predicate(pair).rho_local for pair in pairs]

    rhos = benchmark.pedantic(run, rounds=2, iterations=2)
    for rho in rhos:
        assert np.isclose(np.trace(rho).real, 1.0, atol=1e-8)
