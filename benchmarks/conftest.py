"""Shared configuration for the benchmark harness.

``pytest benchmarks/ --benchmark-only`` runs a reduced but shape-preserving
configuration of every experiment in the paper's evaluation; setting
``REPRO_FULL=1`` switches to the paper-scale configuration (10–100 qubits,
MPS width 128), with runtimes of minutes per row as in the paper.
"""

from __future__ import annotations

import pytest

from repro.config import AnalysisConfig, SDPConfig, full_scale_requested


def experiment_scale() -> str:
    return "full" if full_scale_requested() else "reduced"


def experiment_mps_width() -> int:
    return 128 if full_scale_requested() else 16


def experiment_config() -> AnalysisConfig:
    return AnalysisConfig(
        mps_width=experiment_mps_width(),
        sdp=SDPConfig(max_iterations=1500, tolerance=3e-6),
    )


@pytest.fixture(scope="session")
def scale() -> str:
    return experiment_scale()


@pytest.fixture(scope="session")
def analysis_config() -> AnalysisConfig:
    return experiment_config()
