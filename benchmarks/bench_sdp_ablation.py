"""Ablation benchmark: certified SDP bounds vs the fast analytic dual bound.

DESIGN.md calls out the choice between the ADMM-backed certified mode and the
cheap ``J₊`` dual family.  This benchmark measures both on representative
(gate, noise, predicate) combinations and checks the expected relationships:

* both are sound (they dominate a brute-force feasible lower bound);
* the certified mode is at least as tight as the fast mode;
* the fast mode is much cheaper.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SDPConfig
from repro.linalg import CNOT, HADAMARD, identity_channel, maximally_mixed, plus_state, pure_density, zero_state
from repro.noise import amplitude_damping, bit_flip, depolarizing, two_qubit_depolarizing
from repro.sdp import constrained_diamond_lower_bound, gate_error_bound

_CASES = {
    "h_bitflip_plus_state": (
        HADAMARD,
        bit_flip(1e-3),
        pure_density(zero_state(1)),
        0.0,
    ),
    "h_depolarizing_mixed": (
        HADAMARD,
        depolarizing(1e-3),
        maximally_mixed(1),
        0.05,
    ),
    "h_amplitude_damping": (
        HADAMARD,
        amplitude_damping(5e-3),
        pure_density(plus_state(1)),
        0.01,
    ),
    "cnot_single_qubit_bitflip": (
        CNOT,
        bit_flip(1e-3).tensor(identity_channel(1)),
        pure_density(np.kron(plus_state(1), zero_state(1))),
        0.02,
    ),
    "cnot_two_qubit_depolarizing": (
        CNOT,
        two_qubit_depolarizing(5e-3),
        maximally_mixed(2),
        0.05,
    ),
}

_RESULTS: dict[str, dict[str, float]] = {}


@pytest.mark.parametrize("mode", ["certified", "fast"])
@pytest.mark.parametrize("case", sorted(_CASES), ids=sorted(_CASES))
def test_gate_bound_modes(benchmark, case, mode):
    gate, noise, rho, delta = _CASES[case]
    config = SDPConfig(mode=mode, max_iterations=1500, tolerance=3e-6)

    def run():
        return gate_error_bound(gate, noise, rho, delta, config=config)

    bound = benchmark.pedantic(run, rounds=1, iterations=3)
    benchmark.extra_info["value"] = bound.value
    _RESULTS.setdefault(case, {})[mode] = bound.value
    assert bound.value >= 0.0


def test_modes_relationship():
    if not _RESULTS:
        pytest.skip("mode benchmarks did not run")
    for case, values in _RESULTS.items():
        if {"certified", "fast"} <= set(values):
            assert values["certified"] <= values["fast"] + 1e-9, case


@pytest.mark.parametrize("case", ["h_bitflip_plus_state", "cnot_single_qubit_bitflip"])
def test_certified_bound_dominates_brute_force(case):
    gate, noise, rho, delta = _CASES[case]
    config = SDPConfig(max_iterations=1000, tolerance=1e-5)
    bound = gate_error_bound(gate, noise, rho, delta, config=config)
    from repro.linalg import unitary_channel

    lower = constrained_diamond_lower_bound(
        noise.compose(unitary_channel(gate)),
        unitary_channel(gate),
        rho,
        delta,
        num_samples=16,
        rng=np.random.default_rng(0),
    )
    assert bound.value >= lower - 1e-7
