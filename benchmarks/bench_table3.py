"""Benchmark regenerating Table 3: qubit-mapping evaluation on the emulated device.

Shape assertions (the paper's two findings):

* Gleipnir's bound dominates the emulator's measured error for every mapping
  (measured against the exact emulated distribution);
* the ranking of mappings by bound matches the ranking by measured error, for
  both GHZ-3 and GHZ-5.
"""

from __future__ import annotations

from repro.experiments.table3 import run_table3

from conftest import experiment_config


def test_table3(benchmark):
    config = experiment_config()

    def run():
        return run_table3(shots=None, config=config, seed=11)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    for row in result.rows:
        benchmark.extra_info[f"{row.circuit}:{row.mapping_label}"] = {
            "bound": row.gleipnir_bound,
            "measured": row.measured_error,
        }

    assert result.all_bounds_dominate()
    assert result.ranking_consistent("GHZ-3")
    assert result.ranking_consistent("GHZ-5")

    ghz3 = {row.mapping_label: row for row in result.rows_for("GHZ-3")}
    # The calibration-driven ground truth of the synthetic device: the middle
    # window (1-2-3) is the cleanest placement, the 0-1-2 window the noisiest.
    assert ghz3["1-2-3"].gleipnir_bound < ghz3["2-3-4"].gleipnir_bound < ghz3["0-1-2"].gleipnir_bound

    ghz5 = {row.mapping_label: row for row in result.rows_for("GHZ-5")}
    # The broom-shaped GHZ-5 is routing-free under the reversed-head mapping.
    assert ghz5["2-1-0-3-4"].gleipnir_bound < ghz5["0-1-2-3-4"].gleipnir_bound


def test_table3_with_finite_shots(benchmark):
    """With realistic shot counts the ranking remains consistent."""
    config = experiment_config()

    def run():
        return run_table3(shots=8192, config=config, seed=12)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.ranking_consistent("GHZ-3")
