"""Client-vs-server smoke: drive a live ``gleipnir-serve`` via ``repro.api``.

Used by the CI engine-smoke job (and handy locally)::

    PYTHONPATH=src python scripts/api_smoke.py

The script

1. launches ``gleipnir-serve`` as a real subprocess on an ephemeral port,
2. discovers it via ``GET /v1/capabilities``,
3. submits a small batch (with a duplicate) through
   :class:`repro.api.Client` / a remote :class:`repro.api.AnalysisSession`,
   collecting results via the long-poll push path,
4. runs the identical jobs through an in-process local session, and
5. asserts the two surfaces return **bit-identical** certified bounds — and
   that a completed long-poll costs exactly one request.

Exit code 0 means the whole HTTP path (serialization, batching, condition-
variable result push, error envelopes) agrees with the in-process facade.
"""

from __future__ import annotations

import re
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import AnalysisConfig, Circuit, NoiseModel  # noqa: E402
from repro.api import AnalysisSession, Client  # noqa: E402
from repro.errors import JobNotFoundError  # noqa: E402

METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? ([0-9.eE+-]+|NaN|[+-]Inf)$"
)


def check_observability(base_url: str) -> None:
    """Validate ``/v1/healthz`` and the ``/v1/metrics`` Prometheus exposition."""
    import json
    import urllib.request

    with urllib.request.urlopen(f"{base_url}/v1/healthz", timeout=10) as response:
        health = json.loads(response.read())
    assert health["status"] == "ok", health
    for key in ("version", "uptime_seconds", "queue_depth", "workers"):
        assert key in health, f"/v1/healthz missing {key}: {health}"

    with urllib.request.urlopen(f"{base_url}/v1/metrics", timeout=10) as response:
        content_type = response.headers.get("Content-Type", "")
        body = response.read().decode("utf-8")
    assert content_type.startswith("text/plain"), content_type
    families: set[str] = set()
    for line in body.splitlines():
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            families.add(line.split()[2])
            continue
        assert METRIC_LINE.match(line), f"malformed exposition line: {line!r}"
    for family in (
        "repro_http_request_seconds",
        "repro_engine_jobs_total",
        "repro_service_queue_depth",
    ):
        assert family in families, f"/v1/metrics missing {family}; got {sorted(families)}"
    # The batch we just ran must have moved the request-latency histogram.
    samples = [
        line
        for line in body.splitlines()
        if line.startswith("repro_http_request_seconds_count")
    ]
    assert samples, body
    assert any(float(line.rsplit(" ", 1)[1]) > 0 for line in samples), samples

FAST = AnalysisConfig(mps_width=4)
MODEL = NoiseModel.uniform_bit_flip(1e-3)


def smoke_jobs(session: AnalysisSession) -> list:
    ghz2 = Circuit(2, name="ghz2").h(0).cx(0, 1)
    ghz3 = Circuit(3, name="ghz3").h(0).cx(0, 1).cx(1, 2)
    return [
        session.job(ghz2, MODEL, config=FAST),
        session.job(ghz3, MODEL, config=FAST),
        session.job(ghz2, MODEL, config=FAST),  # duplicate: dedupe on the wire
    ]


def start_server() -> tuple[subprocess.Popen, str]:
    process = subprocess.Popen(
        [
            sys.executable,
            "-c",
            "from repro.engine.service import main; "
            "raise SystemExit(main(['--port', '0', '--workers', '1']))",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert process.stdout is not None
    for _ in range(10):  # skip interpreter warnings until the banner line
        line = process.stdout.readline()
        match = re.search(r"listening on (http://[\d.]+:\d+)", line)
        if match:
            return process, match.group(1)
    process.terminate()
    raise RuntimeError("could not parse the gleipnir-serve banner")


def main() -> int:
    process, base_url = start_server()
    try:
        client = Client(base_url)
        for _ in range(50):  # the server socket is up; wait for the batcher
            try:
                capabilities = client.capabilities()
                break
            except Exception:
                time.sleep(0.1)
        else:
            raise RuntimeError("server never answered /v1/capabilities")
        assert capabilities["api"]["version"] == "v1", capabilities

        with AnalysisSession(client=client, config=FAST) as remote:
            jobs = smoke_jobs(remote)
            entries = client.submit(jobs)
            assert entries[0]["fingerprint"] == entries[2]["fingerprint"], "dedupe lost"
            before = client.requests_sent
            pushed = client.wait(entries[0]["fingerprint"], timeout=120)
            assert pushed["status"] == "done", pushed
            assert client.requests_sent - before == 1, "long poll needed >1 request"
            remote_outcomes = remote.analyze_batch(jobs)

        with AnalysisSession(config=FAST) as local:
            local_outcomes = local.analyze_batch(smoke_jobs(local))

        remote_bounds = [outcome.bound for outcome in remote_outcomes]
        local_bounds = [outcome.bound for outcome in local_outcomes]
        assert remote_bounds == local_bounds, (
            f"client-vs-server bounds differ: {remote_bounds} != {local_bounds}"
        )

        try:  # structured 404 envelope on the wire
            client.status("deadbeef")
        except JobNotFoundError:
            pass
        else:
            raise AssertionError("unknown fingerprint did not raise JobNotFoundError")

        check_observability(base_url)

        print(
            f"api smoke OK: {len(jobs)} submissions, bounds bit-identical "
            f"({remote_bounds}), long-poll push in 1 request, "
            "/v1/healthz + /v1/metrics exposition valid"
        )
        return 0
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()


if __name__ == "__main__":
    raise SystemExit(main())
