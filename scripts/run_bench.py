"""Run the perf benchmark suite and write BENCH_perf.json.

Usage:
    python scripts/run_bench.py            # measure and overwrite BENCH_perf.json
    python scripts/run_bench.py --check    # measure, compare against the file,
                                           # exit non-zero on a >2x regression
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import bench_perf  # noqa: E402


def main() -> int:
    check_only = "--check" in sys.argv
    payload = bench_perf.collect_all()
    scheduled = payload["phases"]["analyze_scheduled"]
    print(
        f"reference workload: {scheduled['seconds']:.2f}s scheduled "
        f"({payload['phases']['analyze_sequential']['seconds']:.2f}s sequential, "
        f"seed baseline {payload['workload']['seed_baseline_seconds']:.2f}s, "
        f"speedup {payload['speedup_vs_seed_baseline']:.1f}x)"
    )
    print(
        f"kernel microbench: {payload['kernel_microbench']['kernel_speedup']:.1f}x "
        "batched vs per-block loop"
    )

    if check_only:
        baseline = bench_perf.load_baseline()
        if baseline is None:
            print("no committed BENCH_perf.json; nothing to compare against")
            return 0
        current = scheduled["seconds"]
        budget = bench_perf.regression_budget_seconds(
            baseline, payload["phases"]["analyze_sequential"]["seconds"]
        )
        if current > budget:
            print(
                f"REGRESSION: {current:.2f}s over the machine-calibrated "
                f"2x budget of {budget:.2f}s",
                file=sys.stderr,
            )
            return 1
        print(f"within budget: {current:.2f}s vs calibrated budget {budget:.2f}s")
        return 0

    bench_perf.BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {bench_perf.BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
