"""Run the benchmark suites and write BENCH_perf.json / BENCH_engine.json.

Usage:
    python scripts/run_bench.py            # measure and overwrite BENCH_perf.json
    python scripts/run_bench.py --check    # measure, compare against the file,
                                           # exit non-zero on a >2x regression
    python scripts/run_bench.py --engine   # measure the analysis engine and
                                           # overwrite BENCH_engine.json
    python scripts/run_bench.py --check --engine
                                           # machine-calibrated engine check:
                                           # re-run the serving trace and exit
                                           # non-zero on a >2x regression vs
                                           # the committed BENCH_engine.json,
                                           # or if the whole-outcome warm path
                                           # re-executes anything, diverges
                                           # from cold, or drops below its
                                           # 50x speedup floor, or if cross-job
                                           # batch fusion diverges / drops
                                           # below its 2x throughput floor
    python scripts/run_bench.py --warm     # warm-cache mode: pre-populate the
                                           # persistent bound cache via the
                                           # engine and report cold vs warm
                                           # timings for the Table 2 reduced
                                           # suite (refreshes the warm_cache
                                           # section of BENCH_engine.json)
    python scripts/run_bench.py --serve    # client-vs-server smoke: start a
                                           # real gleipnir-serve, drive it with
                                           # repro.api.Client, and assert its
                                           # bounds are bit-identical to the
                                           # in-process repro.api facade

The engine measurements run through the public :mod:`repro.api` session
facade (see ``benchmarks/bench_engine.py``), so the numbers cover the same
surface users call.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import bench_engine  # noqa: E402
import bench_perf  # noqa: E402


def run_perf(check_only: bool) -> int:
    payload = bench_perf.collect_all()
    scheduled = payload["phases"]["analyze_scheduled"]
    print(
        f"reference workload: {scheduled['seconds']:.2f}s scheduled "
        f"({payload['phases']['analyze_sequential']['seconds']:.2f}s sequential, "
        f"seed baseline {payload['workload']['seed_baseline_seconds']:.2f}s, "
        f"speedup {payload['speedup_vs_seed_baseline']:.1f}x)"
    )
    print(
        f"kernel microbench: {payload['kernel_microbench']['kernel_speedup']:.1f}x "
        "batched vs per-block loop"
    )
    certification = payload["batch_certification_microbench"]
    print(
        f"batch certification: {certification['batch_speedup']:.1f}x fused vs "
        f"per-gate over {certification['unique_classes']} classes "
        f"(bit-identical: {certification['bit_identical']})"
    )
    reductions = payload["batched_reduction_microbench"]
    print(
        f"batched reductions: {reductions['reduction_speedup']:.1f}x stacked vs "
        f"per-instance over {reductions['unique_classes']} classes "
        f"(bit-identical: {reductions['bit_identical']})"
    )
    print(
        f"single pass: {scheduled['mps_walks']} MPS walk(s), scheduled == "
        f"sequential bounds: "
        f"{payload['single_pass']['bounds_bit_identical_scheduled_vs_sequential']}"
    )
    tracing = payload["tracing_overhead_microbench"]
    print(
        f"tracing overhead: {(tracing['overhead_ratio'] - 1.0) * 100:+.1f}% "
        f"({tracing['seconds_off']:.2f}s off -> {tracing['seconds_on']:.2f}s on, "
        f"{tracing['spans_recorded']} spans, "
        f"bit-identical: {tracing['bit_identical']})"
    )

    if check_only:
        # The perf gate covers the batched-reduction path: the front door of
        # the scheduled workload must stay bit-identical to the per-instance
        # reductions, not just fast.
        if not reductions["bit_identical"]:
            print(
                "REGRESSION: batched structural reductions are no longer "
                "bit-identical to the per-instance path",
                file=sys.stderr,
            )
            return 1
        if not certification["bit_identical"]:
            print(
                "REGRESSION: batched certification is no longer bit-identical "
                "to the per-gate path",
                file=sys.stderr,
            )
            return 1
        if not tracing["bit_identical"]:
            print(
                "REGRESSION: bounds differ with tracing/metrics enabled — "
                "observability must be read-only",
                file=sys.stderr,
            )
            return 1
        if tracing["overhead_ratio"] > 1.0 + bench_perf.TRACING_OVERHEAD_BUDGET:
            print(
                f"REGRESSION: tracing overhead "
                f"{(tracing['overhead_ratio'] - 1.0) * 100:.1f}% exceeds the "
                f"{bench_perf.TRACING_OVERHEAD_BUDGET * 100:.0f}% budget",
                file=sys.stderr,
            )
            return 1
        baseline = bench_perf.load_baseline()
        if baseline is None:
            print("no committed BENCH_perf.json; nothing to compare against")
            return 0
        current = scheduled["seconds"]
        budget = bench_perf.regression_budget_seconds(
            baseline, payload["phases"]["analyze_sequential"]["seconds"]
        )
        if current > budget:
            print(
                f"REGRESSION: {current:.2f}s over the machine-calibrated "
                f"2x budget of {budget:.2f}s",
                file=sys.stderr,
            )
            return 1
        print(f"within budget: {current:.2f}s vs calibrated budget {budget:.2f}s")
        return 0

    bench_perf.BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {bench_perf.BASELINE_PATH}")
    return 0


def run_engine() -> int:
    payload = bench_engine.collect_all()
    sequential = payload["sequential_baseline"]
    print(
        f"serving trace ({payload['workload']['submissions']} submissions, "
        f"{payload['workload']['unique_programs']} unique): "
        f"sequential baseline {sequential['seconds']:.2f}s "
        f"({sequential['jobs_per_minute']:.1f} jobs/min)"
    )
    for key, run in payload["engine"].items():
        print(
            f"  engine {key}: {run['seconds']:.2f}s "
            f"({run['jobs_per_minute']:.1f} jobs/min, "
            f"{run['analyses_executed']} analyses for "
            f"{run['deduplicated_submissions']} deduped submissions)"
        )
    print(
        f"speedup at 4 workers vs sequential: "
        f"{payload['speedup_at_4_workers_vs_sequential']:.2f}x "
        f"(bit-identical bounds: {payload['bounds_bit_identical_at_4_workers']})"
    )
    warm = payload["warm_cache_table2_reduced"]
    print(
        f"warm cache (table2 reduced): cold {warm['cold_seconds']:.2f}s -> "
        f"warm {warm['warm_seconds']:.2f}s ({warm['speedup_warm_vs_cold']:.2f}x, "
        f"{warm['sdp_solves_warm']} warm solves)"
    )
    outcome = payload["outcome_store_warm_path"]
    print(
        f"outcome store (serving trace): cold {outcome['cold_seconds']:.2f}s -> "
        f"warm {outcome['warm_seconds']:.2f}s "
        f"({outcome['speedup_warm_vs_cold']:.1f}x, "
        f"{outcome['warm_jobs_per_minute']:.0f} warm jobs/min, "
        f"{outcome['executed_warm']} warm executions, "
        f"bit-identical: {outcome['bit_identical']}, "
        f"certificates re-verified: {outcome['certificates_reverified']})"
    )
    fusion = payload["cross_job_fusion"]
    print(
        f"cross-job fusion ({fusion['jobs']} concurrent jobs): unfused "
        f"{fusion['unfused_seconds']:.2f}s -> fused {fusion['fused_seconds']:.2f}s "
        f"({fusion['speedup_fused_vs_unfused']:.2f}x, "
        f"{fusion['fused_classes']} classes fused across {fusion['fused_jobs']} jobs, "
        f"bit-identical: {fusion['bit_identical']}, "
        f"certificates re-verified: {fusion['certificates_reverified']})"
    )
    registry = payload["metric_registry"]
    print(
        f"metric registry dispatch: "
        f"{registry['dispatch_overhead_ratio'] * 100:+.1f}% vs direct call "
        f"({registry['pairs']} pairs x {registry['repeats']} rounds, "
        f"bit-identical: {registry['bit_identical']})"
    )
    bench_engine.BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {bench_engine.BASELINE_PATH}")
    return 0


def run_engine_check() -> int:
    """Machine-calibrated engine regression gate (used by the CI smoke job)."""
    baseline = bench_engine.load_baseline()
    if baseline is None or "calibration" not in baseline or "engine" not in baseline:
        print("no committed BENCH_engine.json with calibration; nothing to compare")
        return 0
    current = bench_engine.measure_check()
    budget = bench_engine.regression_budget_seconds(
        baseline, current["calibration_seconds"]
    )
    print(
        f"engine trace ({current['submissions']} submissions, "
        f"{current['workers']} workers): {current['seconds']:.2f}s, "
        f"calibration job {current['calibration_seconds']:.2f}s"
    )
    if current["seconds"] > budget:
        print(
            f"REGRESSION: {current['seconds']:.2f}s over the machine-calibrated "
            f"2x budget of {budget:.2f}s",
            file=sys.stderr,
        )
        return 1
    print(f"within budget: {current['seconds']:.2f}s vs calibrated budget {budget:.2f}s")

    # Whole-outcome warm-path gate (live, machine-independent — a ratio):
    # warm traffic must execute nothing, stay bit-identical, and clear the
    # 50x speedup floor.  Measured on the smoke subset to keep CI cheap.
    outcome = bench_engine.measure_outcome_warm_path(
        bench_engine.unique_jobs(benchmarks=bench_engine.SMOKE_BENCHMARKS)
    )
    print(
        f"outcome store warm path: {outcome['speedup_warm_vs_cold']:.1f}x "
        f"(floor {bench_engine.OUTCOME_WARM_SPEEDUP_FLOOR:.0f}x), "
        f"{outcome['executed_warm']} warm executions, "
        f"bit-identical: {outcome['bit_identical']}"
    )
    if outcome["executed_warm"] != 0:
        print("REGRESSION: warm outcome-store traffic re-executed analyses", file=sys.stderr)
        return 1
    if not outcome["bit_identical"]:
        print("REGRESSION: warm outcome-store results diverge from cold", file=sys.stderr)
        return 1
    if not outcome["certificates_reverified"]:
        print("REGRESSION: stored dual certificates no longer verify", file=sys.stderr)
        return 1
    if outcome["speedup_warm_vs_cold"] < bench_engine.OUTCOME_WARM_SPEEDUP_FLOOR:
        print(
            f"REGRESSION: warm outcome path only "
            f"{outcome['speedup_warm_vs_cold']:.1f}x faster than cold "
            f"(floor {bench_engine.OUTCOME_WARM_SPEEDUP_FLOOR:.0f}x)",
            file=sys.stderr,
        )
        return 1

    # Cross-job batch fusion gate (live, machine-independent — a ratio):
    # fusing the concurrent multi-job window must stay bit-identical, keep
    # its certificates verifiable, and clear the 2x throughput floor.
    fusion = bench_engine.measure_cross_job_fusion()
    print(
        f"cross-job fusion: {fusion['speedup_fused_vs_unfused']:.2f}x "
        f"(floor {bench_engine.FUSION_SPEEDUP_FLOOR:.0f}x), "
        f"{fusion['fused_classes']} classes fused across "
        f"{fusion['fused_jobs']} jobs, "
        f"bit-identical: {fusion['bit_identical']}"
    )
    if not fusion["bit_identical"]:
        print("REGRESSION: fused bounds diverge from the unfused path", file=sys.stderr)
        return 1
    if not fusion["certificates_reverified"]:
        print(
            "REGRESSION: certificates no longer verify under cross-job fusion",
            file=sys.stderr,
        )
        return 1
    if fusion["fused_jobs"] == 0 or fusion["fused_classes"] == 0:
        print("REGRESSION: the fusion window fused no cross-job work", file=sys.stderr)
        return 1
    if fusion["speedup_fused_vs_unfused"] < bench_engine.FUSION_SPEEDUP_FLOOR:
        print(
            f"REGRESSION: cross-job fusion only "
            f"{fusion['speedup_fused_vs_unfused']:.2f}x faster than unfused "
            f"(floor {bench_engine.FUSION_SPEEDUP_FLOOR:.0f}x)",
            file=sys.stderr,
        )
        return 1

    # Metric-registry dispatch gate (live, machine-independent — a ratio):
    # routing the diamond norm through the string-keyed registry must stay
    # bit-identical to the direct call and within the 5% dispatch budget.
    registry = bench_engine.measure_metric_registry()
    print(
        f"metric registry dispatch: "
        f"{registry['dispatch_overhead_ratio'] * 100:+.1f}% vs direct call "
        f"(budget {bench_engine.REGISTRY_OVERHEAD_BUDGET * 100:.0f}%, "
        f"bit-identical: {registry['bit_identical']})"
    )
    if not registry["bit_identical"]:
        print(
            "REGRESSION: registry-routed diamond norm diverges from the "
            "direct diamond_distance call",
            file=sys.stderr,
        )
        return 1
    if registry["dispatch_overhead_ratio"] > bench_engine.REGISTRY_OVERHEAD_BUDGET:
        print(
            f"REGRESSION: metric registry dispatch overhead "
            f"{registry['dispatch_overhead_ratio'] * 100:.1f}% exceeds the "
            f"{bench_engine.REGISTRY_OVERHEAD_BUDGET * 100:.0f}% budget",
            file=sys.stderr,
        )
        return 1
    return 0


def run_warm() -> int:
    warm = bench_engine.collect_warm_only()
    print(
        f"warm cache (table2 reduced): cold {warm['cold_seconds']:.2f}s -> "
        f"warm {warm['warm_seconds']:.2f}s ({warm['speedup_warm_vs_cold']:.2f}x)"
    )
    print(
        f"bit-identical bounds: {warm['bit_identical']}; "
        f"SDP solves cold={warm['sdp_solves_cold']} warm={warm['sdp_solves_warm']}"
    )
    if not warm["bit_identical"]:
        print("WARM CACHE CHANGED BOUNDS — this is a bug", file=sys.stderr)
        return 1
    baseline = bench_engine.load_baseline() or {}
    baseline["warm_cache_table2_reduced"] = warm
    bench_engine.BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"updated warm_cache_table2_reduced in {bench_engine.BASELINE_PATH}")
    return 0


def main() -> int:
    if "--serve" in sys.argv:
        import api_smoke  # the client-vs-server smoke (scripts/api_smoke.py)

        return api_smoke.main()
    if "--engine" in sys.argv:
        if "--check" in sys.argv:
            return run_engine_check()
        return run_engine()
    if "--warm" in sys.argv:
        return run_warm()
    return run_perf("--check" in sys.argv)


if __name__ == "__main__":
    raise SystemExit(main())
