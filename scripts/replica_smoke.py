"""Multi-replica smoke: two sharded replicas + router vs the in-process engine.

Used by the CI engine-smoke job (and handy locally)::

    PYTHONPATH=src python scripts/replica_smoke.py

The script

1. starts a 2-replica :class:`~repro.engine.replicas.ReplicaSet` (each child
   a real ``gleipnir-serve`` subprocess with its own sharded result store)
   and a :class:`~repro.engine.replicas.ShardRouter` in front,
2. submits a mixed batch through the router *and* through a shard-aware
   :class:`repro.api.Client` handed the replica URLs directly,
3. runs the identical jobs through an in-process local session, and
4. asserts all three surfaces return **bit-identical** certified bounds,
   that every entry is tagged with the owning shard, that each replica
   exports its ``repro_replica_shard`` gauge on ``/v1/metrics``, and that
   the router's ``/v1/healthz`` aggregates both replicas as healthy.

Exit code 0 means a sharded deployment is observationally equivalent to one
in-process engine.
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import AnalysisConfig, Circuit, NoiseModel  # noqa: E402
from repro.api import AnalysisSession, Client  # noqa: E402
from repro.engine.replicas import (  # noqa: E402
    ReplicaSet,
    ShardRouter,
    shard_index,
    shard_location,
)

FAST = AnalysisConfig(mps_width=4)
MODEL = NoiseModel.uniform_bit_flip(1e-3)
REPLICAS = 2


def smoke_jobs(session: AnalysisSession) -> list:
    ghz2 = Circuit(2, name="ghz2").h(0).cx(0, 1)
    ghz3 = Circuit(3, name="ghz3").h(0).cx(0, 1).cx(1, 2)
    ghz4 = Circuit(4, name="ghz4").h(0).cx(0, 1).cx(1, 2).cx(2, 3)
    return [
        session.job(ghz2, MODEL, config=FAST),
        session.job(ghz3, MODEL, config=FAST),
        session.job(ghz4, MODEL, config=FAST),
    ]


def fetch_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read())


def check_shard_gauges(urls: list[str]) -> None:
    for expected_shard, url in enumerate(urls):
        with urllib.request.urlopen(f"{url}/v1/metrics", timeout=30) as response:
            exposition = response.read().decode()
        values = [
            float(line.split()[1])
            for line in exposition.splitlines()
            if line.startswith("repro_replica_shard ")
        ]
        assert values == [float(expected_shard)], (
            f"replica {expected_shard} gauge: {values}"
        )


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        store = str(Path(tmp) / "results.jsonl")
        replica_set = ReplicaSet(
            REPLICAS,
            [
                ["--workers", "1", "--store", shard_location(store, index)]
                for index in range(REPLICAS)
            ],
        )
        urls = replica_set.start()
        router = ShardRouter(urls, "127.0.0.1", 0)
        thread = threading.Thread(target=router.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{router.server_address[1]}"
        try:
            routed = Client(base)
            sharded = Client(urls)

            with AnalysisSession(config=FAST) as local:
                jobs = smoke_jobs(local)
                local_outcomes = local.analyze_batch(jobs)

            routed_entries = routed.submit(jobs)
            shards = {entry["shard"] for entry in routed_entries}
            assert len(shards) == REPLICAS, (
                f"mixed batch landed on one shard only: {routed_entries}"
            )
            for entry in routed_entries:
                assert entry["shard"] == shard_index(entry["fingerprint"], REPLICAS)

            routed_done = {
                entry["fingerprint"]: routed.wait(entry["fingerprint"], timeout=300)
                for entry in routed_entries
            }
            sharded_entries = sharded.submit(jobs)
            sharded_done = {
                entry["fingerprint"]: sharded.wait(entry["fingerprint"], timeout=300)
                for entry in sharded_entries
            }

            for outcome in local_outcomes:
                via_router = routed_done[outcome.fingerprint]
                via_shards = sharded_done[outcome.fingerprint]
                assert via_router["status"] == "done", via_router
                assert via_router["result"]["error_bound"] == outcome.bound, (
                    f"router bound diverged for {outcome.name}"
                )
                assert via_shards["result"]["error_bound"] == outcome.bound, (
                    f"shard-aware client bound diverged for {outcome.name}"
                )

            health = fetch_json(f"{base}/v1/healthz")
            assert health["status"] == "ok", health
            assert health["replica_count"] == REPLICAS, health
            capabilities = fetch_json(f"{base}/v1/capabilities")
            assert capabilities["router"]["replicas"] == REPLICAS, capabilities
            check_shard_gauges(urls)

            bounds = [outcome.bound for outcome in local_outcomes]
            print(
                f"replica smoke OK: {len(jobs)} jobs over {REPLICAS} replicas "
                f"(shards {sorted(shards)}), router + shard-aware client both "
                f"bit-identical to in-process ({bounds}), shard gauges exported, "
                "router healthz aggregated"
            )
            return 0
        finally:
            router.shutdown()
            thread.join(timeout=10)
            router.server_close()
            replica_set.stop()


if __name__ == "__main__":
    raise SystemExit(main())
