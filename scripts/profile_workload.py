"""Profile the 5-qubit / 65-gate reference workload (ISSUE 1 baseline)."""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from helpers import random_circuit

from repro.config import AnalysisConfig
from repro.core.analyzer import analyze_program
from repro.noise import NoiseModel


def main() -> None:
    circuit = random_circuit(5, 65, seed=7)
    model = NoiseModel.uniform_bit_flip(1e-3)
    config = AnalysisConfig(mps_width=16)

    start = time.perf_counter()
    result = analyze_program(circuit, model, config=config)
    elapsed = time.perf_counter() - start
    print(result.summary())
    print(f"wall: {elapsed:.2f}s")

    if "--profile" in sys.argv:
        profiler = cProfile.Profile()
        profiler.enable()
        analyze_program(circuit, model, config=config)
        profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative").print_stats(40)
        print(stream.getvalue())


if __name__ == "__main__":
    main()
