"""Remote A/B comparison smoke: drive a live ``gleipnir-serve`` with
:class:`~repro.engine.spec.ComparisonJob` submissions.

Used by the CI engine-smoke job (and handy locally)::

    PYTHONPATH=src python scripts/metric_smoke.py

The script

1. launches ``gleipnir-serve`` as a real subprocess on an ephemeral port,
2. discovers the metric registry via ``GET /v1/capabilities`` and asserts
   the comparison job kind plus the program-level ``bound_drift`` metric are
   advertised,
3. submits a noise-model A/B comparison and a channel-pair diamond-norm
   comparison through :class:`repro.api.Client` / a remote
   :class:`repro.api.AnalysisSession`,
4. runs the identical comparisons through an in-process local session, and
5. asserts the two surfaces return **bit-identical** drift values and side
   bounds, and that the ``repro_metric_jobs_total`` counter moved on the
   server.

Exit code 0 means comparison jobs travel the ``/v1`` wire (serialization,
fingerprinting, shard routing, result push) without perturbing a single bit
of the arithmetic.
"""

from __future__ import annotations

import re
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import AnalysisConfig, Circuit, NoiseModel  # noqa: E402
from repro.api import AnalysisSession, Client  # noqa: E402
from repro.noise.channels import bit_flip  # noqa: E402

FAST = AnalysisConfig(mps_width=4)


def smoke_comparisons(session: AnalysisSession) -> list:
    ghz2 = Circuit(2, name="ghz2").h(0).cx(0, 1)
    return [
        session.comparison_job(
            ghz2,
            NoiseModel.uniform_bit_flip(1e-3),
            NoiseModel.uniform_bit_flip(2e-3),
            metric="bound_drift",
            config=FAST,
        ),
        session.comparison_job(bit_flip(1e-3), bit_flip(2e-3), metric="diamond_norm"),
    ]


def start_server() -> tuple[subprocess.Popen, str]:
    process = subprocess.Popen(
        [
            sys.executable,
            "-c",
            "from repro.engine.service import main; "
            "raise SystemExit(main(['--port', '0', '--workers', '1']))",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert process.stdout is not None
    for _ in range(10):  # skip interpreter warnings until the banner line
        line = process.stdout.readline()
        match = re.search(r"listening on (http://[\d.]+:\d+)", line)
        if match:
            return process, match.group(1)
    process.terminate()
    raise RuntimeError("could not parse the gleipnir-serve banner")


def check_capabilities(capabilities: dict) -> None:
    """Capability discovery: job kinds, the metric registry, storage schemes."""
    assert "comparison_job" in capabilities["job_kinds"], capabilities
    metrics = {entry["name"]: entry for entry in capabilities["metrics"]}
    assert len(metrics) >= 3, f"capabilities lists {len(metrics)} metrics"
    assert "bound_drift" in metrics, sorted(metrics)
    assert metrics["diamond_norm"]["tier"] == "certified", metrics["diamond_norm"]
    assert metrics["bound_drift"]["kind"] == "program", metrics["bound_drift"]
    assert "jsonl" in capabilities["storage_schemes"], capabilities


def check_metric_counter(base_url: str) -> None:
    """The A/B batch must have moved ``repro_metric_jobs_total``."""
    import urllib.request

    with urllib.request.urlopen(f"{base_url}/v1/metrics", timeout=10) as response:
        body = response.read().decode("utf-8")
    samples = [
        line
        for line in body.splitlines()
        if line.startswith("repro_metric_jobs_total{")
    ]
    assert samples, "no repro_metric_jobs_total samples in /v1/metrics"
    assert any('metric="bound_drift"' in line for line in samples), samples
    assert any(float(line.rsplit(" ", 1)[1]) > 0 for line in samples), samples


def main() -> int:
    process, base_url = start_server()
    try:
        client = Client(base_url)
        for _ in range(50):  # the server socket is up; wait for the batcher
            try:
                capabilities = client.capabilities()
                break
            except Exception:
                time.sleep(0.1)
        else:
            raise RuntimeError("server never answered /v1/capabilities")
        check_capabilities(capabilities)

        with AnalysisSession(client=client, config=FAST) as remote:
            remote_outcomes = remote.compare_batch(smoke_comparisons(remote))
        with AnalysisSession(config=FAST) as local:
            local_outcomes = local.compare_batch(smoke_comparisons(local))

        for outcome in remote_outcomes + local_outcomes:
            outcome.raise_for_status()
        remote_values = [
            (o.metric, o.bound, o.value_a, o.value_b) for o in remote_outcomes
        ]
        local_values = [
            (o.metric, o.bound, o.value_a, o.value_b) for o in local_outcomes
        ]
        assert remote_values == local_values, (
            f"client-vs-server comparisons differ: {remote_values} != {local_values}"
        )
        assert remote_outcomes[0].metric_tier == "heuristic", remote_outcomes[0]
        assert remote_outcomes[1].metric_tier == "certified", remote_outcomes[1]

        check_metric_counter(base_url)

        print(
            f"metric smoke OK: {len(remote_outcomes)} comparisons, values "
            f"bit-identical ({[v[1] for v in remote_values]}), "
            f"{len(capabilities['metrics'])} metrics advertised, "
            "repro_metric_jobs_total moved"
        )
        return 0
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()


if __name__ == "__main__":
    raise SystemExit(main())
