"""Track the nightly benchmark results as a scalability curve over time.

The nightly CI job measures the full suites (``run_bench.py`` and
``run_bench.py --engine``), then:

    python scripts/bench_history.py append --history bench-history.jsonl
    python scripts/bench_history.py check  --history bench-history.jsonl

``append`` distils the freshly written ``BENCH_perf.json`` /
``BENCH_engine.json`` into one compact JSONL record and appends it to the
history file (carried across nightly runs by an ``actions/cache`` entry and
re-uploaded with the night's artifacts, so the curve survives the 90-day
artifact expiry).  ``check`` compares the newest record against the median
of the previous ones and exits non-zero on a >2x drift in either direction
of "worse": timings are **calibration-normalised** before comparison (each
night's absolute seconds are divided by that night's single-job calibration
measurement), so a slower or faster runner does not read as a regression —
only a change in the *shape* of the curve does.

Records are self-describing::

    {"timestamp": "...", "run_id": "...", "python": "3.12.x",
     "metrics": {"engine_trace_calibrated": 12.3, "fusion_speedup": 3.0, ...}}
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import statistics
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Fail ``check`` when the newest entry is worse than the median of the
#: previous entries by more than this factor.
DRIFT_FACTOR = 2.0

#: metric name -> direction ("lower" = lower is better, "higher" = higher is
#: better).  Only metrics present in both the history and tonight's record
#: are compared, so adding a metric never breaks an existing history file.
METRIC_DIRECTIONS = {
    # engine serving trace, in calibration units (seconds / calibration job
    # seconds — machine-independent).
    "engine_trace_calibrated": "lower",
    "sequential_baseline_calibrated": "lower",
    # scheduled analysis relative to the sequential analyzer (bench_perf).
    "scheduled_vs_sequential_ratio": "lower",
    # live ratios — already machine-independent.
    "warm_cache_speedup": "higher",
    "outcome_warm_speedup": "higher",
    "fusion_speedup": "higher",
    "engine_speedup_4_workers": "higher",
}


def _get(payload: dict, *path):
    node = payload
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def build_record() -> dict:
    """Distil the committed BENCH_*.json files into one history record."""
    metrics: dict[str, float] = {}

    engine_path = REPO_ROOT / "BENCH_engine.json"
    if engine_path.exists():
        engine = json.loads(engine_path.read_text())
        calibration = _get(engine, "calibration", "seconds")
        trace = _get(engine, "engine", "workers_2", "seconds")
        if calibration and trace:
            metrics["engine_trace_calibrated"] = trace / calibration
        sequential = _get(engine, "sequential_baseline", "seconds")
        if calibration and sequential:
            metrics["sequential_baseline_calibrated"] = sequential / calibration
        for name, path in (
            ("warm_cache_speedup", ("warm_cache_table2_reduced", "speedup_warm_vs_cold")),
            ("outcome_warm_speedup", ("outcome_store_warm_path", "speedup_warm_vs_cold")),
            ("fusion_speedup", ("cross_job_fusion", "speedup_fused_vs_unfused")),
            ("engine_speedup_4_workers", ("speedup_at_4_workers_vs_sequential",)),
        ):
            value = _get(engine, *path)
            if value:
                metrics[name] = float(value)

    perf_path = REPO_ROOT / "BENCH_perf.json"
    if perf_path.exists():
        perf = json.loads(perf_path.read_text())
        scheduled = _get(perf, "phases", "analyze_scheduled", "seconds")
        sequential = _get(perf, "phases", "analyze_sequential", "seconds")
        if scheduled and sequential:
            metrics["scheduled_vs_sequential_ratio"] = scheduled / sequential

    return {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "run_id": os.environ.get("GITHUB_RUN_ID", ""),
        "python": platform.python_version(),
        "metrics": metrics,
    }


def load_history(path: Path) -> list[dict]:
    if not path.exists():
        return []
    entries = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue  # a torn write must not wedge every future nightly
        if isinstance(entry, dict) and isinstance(entry.get("metrics"), dict):
            entries.append(entry)
    return entries


def append(path: Path) -> int:
    record = build_record()
    if not record["metrics"]:
        print("no BENCH_*.json measurements found; nothing to append", file=sys.stderr)
        return 1
    with path.open("a") as handle:
        handle.write(json.dumps(record) + "\n")
    print(f"appended {len(record['metrics'])} metrics to {path} "
          f"({len(load_history(path))} entries total)")
    return 0


def check(path: Path) -> int:
    """Exit non-zero when the newest entry drifted >2x worse vs the median."""
    history = load_history(path)
    if len(history) < 2:
        print(f"{len(history)} history entries; need 2+ to compare — skipping")
        return 0
    latest = history[-1]["metrics"]
    failures = []
    for name, direction in METRIC_DIRECTIONS.items():
        value = latest.get(name)
        previous = [
            entry["metrics"][name]
            for entry in history[:-1]
            if isinstance(entry["metrics"].get(name), (int, float))
        ]
        if value is None or not previous:
            continue
        median = statistics.median(previous)
        if median <= 0 or value <= 0:
            continue
        if direction == "lower":
            drifted = value > DRIFT_FACTOR * median
            arrow = f"{median:.3g} -> {value:.3g}"
        else:
            drifted = value < median / DRIFT_FACTOR
            arrow = f"{median:.3g} -> {value:.3g}"
        status = "DRIFT" if drifted else "ok"
        print(f"  {name}: {arrow} (median of {len(previous)} prior runs) [{status}]")
        if drifted:
            failures.append(name)
    if failures:
        print(
            f"DRIFT: {', '.join(failures)} moved >{DRIFT_FACTOR:g}x worse than "
            f"the nightly median",
            file=sys.stderr,
        )
        return 1
    print(f"no >{DRIFT_FACTOR:g}x drift across {len(history)} nightly entries")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_history.py",
        description="Append nightly benchmark results to a tracked history and "
        "fail on >2x drift.",
    )
    parser.add_argument("command", choices=["append", "check"])
    parser.add_argument(
        "--history",
        type=Path,
        default=REPO_ROOT / "bench-history.jsonl",
        help="history JSONL path (default: bench-history.jsonl at the repo root)",
    )
    args = parser.parse_args(argv)
    if args.command == "append":
        return append(args.history)
    return check(args.history)


if __name__ == "__main__":
    raise SystemExit(main())
