"""The asyncio serving surface under load: parked coroutines, WebSocket push.

The headline claim of the async front end is capacity: one process holds
hundreds of concurrently parked ``?wait=`` long polls (each a coroutine, not
a thread) and releases every one of them with the same bit-identical result
when the job lands.  The test makes that deterministic by *not* starting the
service's batcher until the parked-waiter gauge proves all waiters are
actually parked — no timing assumptions.

The WebSocket tests speak raw RFC 6455 (masked client frames, stdlib only)
against ``GET /v1/stream``: handshake digest, subscribe→push, submit→push,
ping/pong, and the unknown-op error envelope.
"""

import base64
import hashlib
import json
import resource
import socket
import threading

import pytest

from repro.circuits import Circuit
from repro.config import AnalysisConfig, SDPConfig
from repro.engine.pool import AnalysisEngine
from repro.engine.service import AnalysisService, make_server
from repro.engine.spec import AnalysisJob
from repro.noise import NoiseModel
from repro.obs import metrics as obs_metrics

FAST = AnalysisConfig(mps_width=4, sdp=SDPConfig(max_iterations=200, tolerance=1e-4))
MODEL = NoiseModel.uniform_bit_flip(1e-3)

#: The capacity bar from the acceptance criteria.
WAITERS = 500


def _job(name: str = "ghz2", *, num_qubits: int = 2) -> AnalysisJob:
    circuit = Circuit(num_qubits, name=name).h(0).cx(0, 1)
    for q in range(2, num_qubits):
        circuit.cx(q - 1, q)
    return AnalysisJob.from_circuit(circuit, MODEL, config=FAST)


def _raise_fd_limit(needed: int) -> None:
    """Lift the soft RLIMIT_NOFILE: 500 sockets on each side is > 1024 fds."""
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < needed:
        resource.setrlimit(resource.RLIMIT_NOFILE, (min(needed, hard), hard))


@pytest.fixture
def cold_server(tmp_path):
    """A server whose batcher is NOT running: submissions stay queued."""
    engine = AnalysisEngine(workers=1, store=str(tmp_path / "results.jsonl"))
    service = AnalysisService(engine, batch_window=0.02, max_batch=8)
    httpd = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd.server_address[1], service
    httpd.shutdown()
    thread.join(timeout=10)
    httpd.server_close()
    service.stop()


@pytest.fixture
def server(cold_server):
    port, service = cold_server
    service.start()
    return port, service


def _http_response(sock: socket.socket) -> tuple[int, dict]:
    """Read one ``Connection: close`` response off a raw socket."""
    chunks = []
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        chunks.append(chunk)
    raw = b"".join(chunks)
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(body)


class TestParkedLongPolls:
    def test_500_concurrent_parked_waiters_one_process(self, cold_server):
        port, service = cold_server
        _raise_fd_limit(4096)
        entry = service.submit_payload(_job().to_json_dict())
        fingerprint = entry["fingerprint"]
        assert entry["status"] == "queued"  # batcher not running yet

        gauge = obs_metrics.gauge("repro_async_parked_waiters")
        baseline = gauge.value
        request = (
            f"GET /v1/jobs/{fingerprint}?wait=60 HTTP/1.1\r\n"
            f"Host: 127.0.0.1\r\nConnection: close\r\n\r\n"
        ).encode()
        sockets = []
        try:
            for _ in range(WAITERS):
                sock = socket.create_connection(("127.0.0.1", port), timeout=120)
                sock.settimeout(120)
                sock.sendall(request)
                sockets.append(sock)
            # Deterministic barrier: every waiter visibly parked at once.
            deadline = threading.Event()
            for _ in range(1200):
                if gauge.value - baseline >= WAITERS:
                    break
                deadline.wait(0.05)
            assert gauge.value - baseline >= WAITERS

            service.start()  # run the job; the batcher wakes all waiters
            answers = [_http_response(sock) for sock in sockets]
        finally:
            for sock in sockets:
                sock.close()
        assert len(answers) == WAITERS
        bounds = set()
        for status, payload in answers:
            assert status == 200
            assert payload["status"] == "done"
            bounds.add(payload["result"]["error_bound"])
        assert len(bounds) == 1  # every waiter saw the same bit-identical result
        assert gauge.value - baseline == 0  # everything unparked

    def test_stop_releases_parked_waiters(self, cold_server):
        port, service = cold_server
        entry = service.submit_payload(_job().to_json_dict())
        sock = socket.create_connection(("127.0.0.1", port), timeout=60)
        sock.settimeout(60)
        sock.sendall(
            (
                f"GET /v1/jobs/{entry['fingerprint']}?wait=60 HTTP/1.1\r\n"
                f"Host: 127.0.0.1\r\nConnection: close\r\n\r\n"
            ).encode()
        )
        gauge = obs_metrics.gauge("repro_async_parked_waiters")
        baseline = gauge.value
        for _ in range(600):
            if gauge.value > baseline:
                break
            threading.Event().wait(0.05)
        service.stop()  # no batcher ran: waiter must still be released now
        status, payload = _http_response(sock)
        sock.close()
        assert status == 200
        assert payload["status"] == "queued"  # current view, not a timeout


# -- WebSocket plumbing ------------------------------------------------------

_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"


class WsClient:
    """A minimal RFC 6455 client: masked frames over a blocking socket."""

    def __init__(self, port: int, timeout: float = 120.0):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
        key = base64.b64encode(b"0123456789abcdef").decode()
        self.sock.sendall(
            (
                "GET /v1/stream HTTP/1.1\r\n"
                "Host: 127.0.0.1\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                "Sec-WebSocket-Version: 13\r\n\r\n"
            ).encode()
        )
        head = b""
        while b"\r\n\r\n" not in head:
            head += self.sock.recv(4096)
        assert b"101" in head.split(b"\r\n", 1)[0]
        expected = base64.b64encode(
            hashlib.sha1((key + _WS_GUID).encode()).digest()
        ).decode()
        assert f"Sec-WebSocket-Accept: {expected}".encode() in head
        self._buffer = head.split(b"\r\n\r\n", 1)[1]

    def _read_exact(self, count: int) -> bytes:
        while len(self._buffer) < count:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("WebSocket closed")
            self._buffer += chunk
        data, self._buffer = self._buffer[:count], self._buffer[count:]
        return data

    def send(self, opcode: int, payload: bytes) -> None:
        mask = b"\xaa\xbb\xcc\xdd"
        header = bytearray([0x80 | opcode])
        if len(payload) < 126:
            header.append(0x80 | len(payload))
        else:
            header.append(0x80 | 126)
            header += len(payload).to_bytes(2, "big")
        masked = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
        self.sock.sendall(bytes(header) + mask + masked)

    def send_json(self, message: dict) -> None:
        self.send(0x1, json.dumps(message).encode())

    def recv_frame(self) -> tuple[int, bytes]:
        first = self._read_exact(2)
        opcode = first[0] & 0x0F
        length = first[1] & 0x7F
        if length == 126:
            length = int.from_bytes(self._read_exact(2), "big")
        elif length == 127:
            length = int.from_bytes(self._read_exact(8), "big")
        return opcode, self._read_exact(length)

    def recv_json(self) -> dict:
        opcode, payload = self.recv_frame()
        assert opcode == 0x1, f"expected text frame, got opcode {opcode}"
        return json.loads(payload)

    def close(self) -> None:
        self.sock.close()


class TestWebSocketStream:
    def test_submit_pushes_results_for_multi_job_batch(self, server):
        port, _service = server
        ws = WsClient(port)
        try:
            jobs = [_job().to_json_dict(), _job("ghz3", num_qubits=3).to_json_dict()]
            ws.send_json({"op": "submit", "jobs": jobs})
            submitted = ws.recv_json()
            assert submitted["type"] == "submitted"
            fingerprints = {entry["fingerprint"] for entry in submitted["jobs"]}
            assert len(fingerprints) == 2

            seen = {}
            while len(seen) < 2:
                event = ws.recv_json()
                assert event["type"] == "result"
                job = event["job"]
                assert job["status"] == "done"
                assert job["result"]["error_bound"] > 0
                assert job["fingerprint"] not in seen  # at most one push per job
                seen[job["fingerprint"]] = job
            assert set(seen) == fingerprints
        finally:
            ws.close()

    def test_subscribe_before_submit_and_warm_resubmit(self, server):
        port, service = server
        fingerprint = _job().fingerprint()
        ws = WsClient(port)
        try:
            # Subscribing to a never-seen fingerprint is an error envelope...
            ws.send_json({"op": "subscribe", "fingerprints": [fingerprint]})
            event = ws.recv_json()
            assert event["type"] == "error"
            assert event["error"]["error"]["type"] == "JobNotFoundError"

            # ...but once submitted (even out-of-band), subscribe pushes the
            # result — including instantly for already-terminal jobs.
            service.submit_payload(_job().to_json_dict())
            service.wait(fingerprint, timeout=120)
            ws.send_json({"op": "subscribe", "fingerprints": [fingerprint]})
            event = ws.recv_json()
            assert event["type"] == "result"
            assert event["job"]["fingerprint"] == fingerprint
            assert event["job"]["status"] == "done"
        finally:
            ws.close()

    def test_ping_pong_and_unknown_op(self, server):
        port, _service = server
        ws = WsClient(port)
        try:
            ws.send(0x9, b"marco")  # ping
            opcode, payload = ws.recv_frame()
            assert (opcode, payload) == (0xA, b"marco")
            ws.send_json({"op": "frobnicate"})
            event = ws.recv_json()
            assert event["type"] == "error"
            assert "frobnicate" in event["error"]["error"]["message"]
        finally:
            ws.close()

    def test_close_handshake(self, server):
        port, _service = server
        ws = WsClient(port)
        ws.send(0x8, b"")  # close
        opcode, _payload = ws.recv_frame()
        assert opcode == 0x8  # echoed close
        ws.close()
