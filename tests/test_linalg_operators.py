"""Unit tests for repro.linalg.operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GateError
from repro.linalg import (
    CNOT,
    CZ,
    HADAMARD,
    PAULI_X,
    PAULI_Y,
    PAULI_Z,
    SWAP,
    anticommutator,
    basis_state,
    commutator,
    controlled,
    embed_operator,
    expand_to_adjacent,
    is_hermitian,
    is_unitary,
    kron_all,
    operator_from_function,
    pauli_matrix,
    pauli_string_matrix,
    random_unitary,
    rx_matrix,
    ry_matrix,
    rz_matrix,
    rzz_matrix,
    u3_matrix,
)


class TestStandardMatrices:
    def test_paulis_are_hermitian_unitary(self):
        for pauli in (PAULI_X, PAULI_Y, PAULI_Z):
            assert is_hermitian(pauli)
            assert is_unitary(pauli)

    def test_pauli_algebra(self):
        assert np.allclose(PAULI_X @ PAULI_Y, 1j * PAULI_Z)
        assert np.allclose(commutator(PAULI_X, PAULI_Y), 2j * PAULI_Z)
        assert np.allclose(anticommutator(PAULI_X, PAULI_X), 2 * np.eye(2))

    def test_hadamard_maps_z_to_x(self):
        assert np.allclose(HADAMARD @ PAULI_Z @ HADAMARD, PAULI_X)

    def test_cnot_action(self):
        assert np.allclose(CNOT @ basis_state("10"), basis_state("11"))
        assert np.allclose(CNOT @ basis_state("01"), basis_state("01"))

    def test_swap_action(self):
        assert np.allclose(SWAP @ basis_state("10"), basis_state("01"))

    def test_cz_symmetric(self):
        assert np.allclose(CZ, CZ.T)

    def test_pauli_matrix_lookup(self):
        assert np.allclose(pauli_matrix("x"), PAULI_X)
        with pytest.raises(GateError):
            pauli_matrix("Q")

    def test_pauli_string(self):
        assert np.allclose(pauli_string_matrix("XZ"), np.kron(PAULI_X, PAULI_Z))
        with pytest.raises(GateError):
            pauli_string_matrix("")


class TestRotations:
    @pytest.mark.parametrize("factory", [rx_matrix, ry_matrix, rz_matrix])
    def test_rotations_are_unitary(self, factory):
        assert is_unitary(factory(0.7))

    def test_rotation_at_zero_is_identity(self):
        assert np.allclose(rx_matrix(0.0), np.eye(2))

    def test_rx_pi_is_x_up_to_phase(self):
        assert np.allclose(rx_matrix(np.pi), -1j * PAULI_X)

    def test_rzz_diagonal(self):
        mat = rzz_matrix(0.3)
        assert np.allclose(mat, np.diag(np.diag(mat)))
        assert is_unitary(mat)

    def test_u3_generic(self):
        assert is_unitary(u3_matrix(0.3, 0.8, -1.2))

    def test_controlled(self):
        assert np.allclose(controlled(PAULI_X), CNOT)


class TestEmbedding:
    def test_embed_matches_kron_for_adjacent(self):
        embedded = embed_operator(CNOT, [0, 1], 3)
        expected = np.kron(CNOT, np.eye(2))
        assert np.allclose(embedded, expected)

    def test_expand_to_adjacent(self):
        assert np.allclose(expand_to_adjacent(PAULI_X, 1, 3), np.kron(np.kron(np.eye(2), PAULI_X), np.eye(2)))

    def test_embed_reversed_qubits(self):
        # CNOT with control=1, target=0 flips qubit 0 when qubit 1 is set.
        embedded = embed_operator(CNOT, [1, 0], 2)
        assert np.allclose(embedded @ basis_state("01"), basis_state("11"))
        assert np.allclose(embedded @ basis_state("10"), basis_state("10"))

    def test_embed_non_adjacent(self):
        embedded = embed_operator(CNOT, [0, 2], 3)
        assert np.allclose(embedded @ basis_state("100"), basis_state("101"))
        assert np.allclose(embedded @ basis_state("010"), basis_state("010"))

    def test_embed_preserves_unitarity(self):
        embedded = embed_operator(random_unitary(4, rng=np.random.default_rng(3)), [2, 0], 3)
        assert is_unitary(embedded)

    def test_embed_rejects_duplicates(self):
        with pytest.raises(GateError):
            embed_operator(CNOT, [1, 1], 3)

    def test_embed_rejects_out_of_range(self):
        with pytest.raises(GateError):
            embed_operator(PAULI_X, [5], 3)

    def test_embed_shape_mismatch(self):
        with pytest.raises(GateError):
            embed_operator(PAULI_X, [0, 1], 3)


class TestHelpers:
    def test_kron_all(self):
        assert kron_all([PAULI_X]).shape == (2, 2)
        assert kron_all([PAULI_X, PAULI_Z]).shape == (4, 4)
        with pytest.raises(GateError):
            kron_all([])

    def test_operator_from_function(self):
        op = operator_from_function(2, lambda bits: bits[0] + bits[1])
        assert np.allclose(np.diag(op), [0, 1, 1, 2])

    def test_random_unitary_is_unitary(self):
        assert is_unitary(random_unitary(8, rng=np.random.default_rng(0)))


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 500),
    num_qubits=st.integers(2, 4),
)
def test_embedding_is_multiplicative(seed, num_qubits):
    """Embedding commutes with composition: embed(UV) = embed(U) embed(V)."""
    rng = np.random.default_rng(seed)
    qubits = list(rng.choice(num_qubits, size=2, replace=False))
    u = random_unitary(4, rng=rng)
    v = random_unitary(4, rng=rng)
    lhs = embed_operator(u @ v, qubits, num_qubits)
    rhs = embed_operator(u, qubits, num_qubits) @ embed_operator(v, qubits, num_qubits)
    assert np.allclose(lhs, rhs, atol=1e-10)
