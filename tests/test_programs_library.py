"""Tests for the named Table 2 benchmark suite."""

import pytest

from repro.errors import ExperimentError
from repro.programs import benchmark_by_name, benchmark_names, table2_benchmarks


class TestSuite:
    def test_full_suite_matches_paper_rows(self):
        names = benchmark_names()
        assert names == [
            "QAOA_line_10",
            "Isingmodel10",
            "QAOARandom20",
            "QAOA4reg_20",
            "QAOA4reg_30",
            "Isingmodel45",
            "QAOA50",
            "QAOA75",
            "QAOA100",
        ]

    def test_full_scale_qubit_counts(self):
        expected = {
            "QAOA_line_10": 10,
            "Isingmodel10": 10,
            "QAOARandom20": 20,
            "QAOA4reg_20": 20,
            "QAOA4reg_30": 30,
            "Isingmodel45": 45,
            "QAOA50": 50,
            "QAOA75": 75,
            "QAOA100": 100,
        }
        for spec in table2_benchmarks("full"):
            assert spec.num_qubits == expected[spec.name]

    def test_reduced_suite_is_smaller(self):
        full = {spec.name: spec for spec in table2_benchmarks("full")}
        for spec in table2_benchmarks("reduced"):
            assert spec.num_qubits <= full[spec.name].num_qubits

    def test_builders_are_deterministic(self):
        spec = benchmark_by_name("QAOARandom20", "reduced")
        first = spec.build()
        second = spec.build()
        assert [op.gate.name for op in first.operations()] == [
            op.gate.name for op in second.operations()
        ]
        assert [op.qubits for op in first.operations()] == [
            op.qubits for op in second.operations()
        ]

    def test_circuit_sizes_match_spec(self):
        for spec in table2_benchmarks("reduced"):
            circuit = spec.build()
            assert circuit.num_qubits == spec.num_qubits
            assert circuit.gate_count() > 0

    def test_full_gate_counts_are_close_to_paper(self):
        """Generated circuits land within 25% of the paper's reported counts."""
        for spec in table2_benchmarks("full"):
            if spec.paper_gate_count is None or spec.name == "QAOA_line_10":
                continue
            circuit = spec.build()
            ratio = circuit.gate_count() / spec.paper_gate_count
            assert 0.75 <= ratio <= 1.3, (spec.name, circuit.gate_count())

    def test_unknown_name(self):
        with pytest.raises(ExperimentError):
            benchmark_by_name("nope")
        with pytest.raises(ExperimentError):
            table2_benchmarks("medium")
