"""Tests for ReplayTape prefix memoisation (``core/scheduler.py``).

The contract under test: a prefix-memoised (warm) analysis is **bit-identical**
to a cold one — same error bound, same final delta — while reusing the
recorded walk of every shared top-level step.  Memoisation is an execution
knob (``AnalysisConfig.tape_memo``); it never changes fingerprints or
results, only how the tape is produced.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import random_circuit

from repro.circuits import Circuit
from repro.config import AnalysisConfig, SDPConfig
from repro.core.analyzer import analyze_program
from repro.core.scheduler import clear_tape_memo, tape_memo_stats
from repro.noise import NoiseModel

FAST = AnalysisConfig(mps_width=4, sdp=SDPConfig(max_iterations=200, tolerance=1e-4))
NO_MEMO = FAST.replace(tape_memo=False)
MODEL = NoiseModel.uniform_bit_flip(1e-3)


@pytest.fixture(autouse=True)
def _fresh_memo():
    """Every test starts and ends with an empty process-wide tape memo."""
    clear_tape_memo()
    yield
    clear_tape_memo()


def _analyze(circuit: Circuit, config: AnalysisConfig = FAST):
    return analyze_program(circuit, MODEL, config=config)


# A small gate vocabulary for generated suffixes: (name, arity).
_GATES = [("h", 1), ("x", 1), ("rx", 1), ("rz", 1), ("cx", 2)]


def _apply(circuit: Circuit, gate: tuple[str, int, int, float]) -> Circuit:
    name, qubit, other, angle = gate
    if name == "rx":
        return circuit.rx(angle, qubit)
    if name == "rz":
        return circuit.rz(angle, qubit)
    if name == "cx":
        return circuit.cx(qubit, other)
    return getattr(circuit, name)(qubit)


def _gate_strategy(num_qubits: int):
    return st.tuples(
        st.sampled_from([name for name, _arity in _GATES]),
        st.integers(min_value=0, max_value=num_qubits - 1),
        st.integers(min_value=0, max_value=num_qubits - 1),
        st.floats(min_value=0.05, max_value=1.5, allow_nan=False),
    ).filter(lambda gate: gate[0] != "cx" or gate[1] != gate[2])


class TestBitIdentity:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        prefix_depth=st.integers(min_value=2, max_value=8),
        suffix=st.lists(_gate_strategy(3), min_size=1, max_size=4),
    )
    def test_prefix_hit_bit_identical_to_cold(self, seed, prefix_depth, suffix):
        """Property: for any shared prefix and any divergent suffix, the warm
        analysis (prefix served from the memo) equals the cold one bit for bit."""
        # Circuit builders mutate in place: build the shared prefix twice
        # (same seed => identical program) instead of aliasing it.
        prefix = random_circuit(3, prefix_depth, seed=seed)
        extended = random_circuit(3, prefix_depth, seed=seed)
        for gate in suffix:
            extended = _apply(extended, gate)

        # Cold reference with memoisation off entirely.
        cold = _analyze(extended, NO_MEMO)
        assert cold.tape_steps_reused == 0

        # Seed the memo with the prefix, then analyze the extension warm.
        clear_tape_memo()
        _analyze(prefix)
        warm = _analyze(extended)

        assert warm.tape_steps_reused > 0
        assert warm.error_bound == cold.error_bound
        assert warm.final_delta == cold.final_delta

    def test_identical_rerun_reuses_every_step(self):
        circuit = random_circuit(3, 12, seed=5)
        first = _analyze(circuit)
        assert first.tape_steps_reused == 0
        again = _analyze(circuit)
        assert again.tape_steps_reused > 0
        assert again.error_bound == first.error_bound
        assert again.final_delta == first.final_delta


class TestKnobsAndStats:
    def test_tape_memo_off_never_reuses(self):
        circuit = random_circuit(3, 10, seed=7)
        _analyze(circuit, NO_MEMO)
        repeat = _analyze(circuit, NO_MEMO)
        assert repeat.tape_steps_reused == 0
        assert tape_memo_stats()["entries"] == 0

    def test_stats_count_hits_and_misses(self):
        circuit = random_circuit(3, 8, seed=11)
        _analyze(circuit)
        after_cold = tape_memo_stats()
        assert after_cold["misses"] >= 1
        assert after_cold["entries"] > 0
        _analyze(circuit)
        after_warm = tape_memo_stats()
        assert after_warm["hits"] == after_cold["hits"] + 1
        assert after_warm["steps_reused"] > 0

    def test_clear_empties_the_memo(self):
        _analyze(random_circuit(2, 6, seed=3))
        assert tape_memo_stats()["entries"] > 0
        clear_tape_memo()
        assert tape_memo_stats()["entries"] == 0

    def test_different_noise_models_do_not_share_entries(self):
        """The memo key includes the environment: a different noise model must
        re-walk, and its results must match its own memo-off reference."""
        circuit = random_circuit(2, 8, seed=13)
        _analyze(circuit)  # seed the memo under MODEL
        other_model = NoiseModel.uniform_bit_flip(5e-3)
        warm = analyze_program(circuit, other_model, config=FAST)
        assert warm.tape_steps_reused == 0  # no cross-environment reuse
        cold = analyze_program(circuit, other_model, config=NO_MEMO)
        assert warm.error_bound == cold.error_bound

    def test_different_mps_width_does_not_share_entries(self):
        circuit = random_circuit(2, 8, seed=17)
        _analyze(circuit)
        wider = FAST.replace(mps_width=8)
        warm = analyze_program(circuit, MODEL, config=wider)
        assert warm.tape_steps_reused == 0
        cold = analyze_program(circuit, MODEL, config=wider.replace(tape_memo=False))
        assert warm.error_bound == cold.error_bound


class TestMeasurementBoundary:
    def test_memo_stops_at_first_measuring_step(self):
        """Steps at or after the first measurement are never memoised — the
        recorded walk would not be branch-safe — but the shared gate prefix
        before it still is, and results stay bit-identical."""
        circuit = (
            Circuit(2, name="measured")
            .h(0)
            .cx(0, 1)
            .if_measure(0, lambda c: c.x(1), lambda c: c.z(1))
            .x(1)
        )
        cold = _analyze(circuit, NO_MEMO)
        _analyze(circuit)
        warm = _analyze(circuit)
        # Only the two pre-measurement steps are eligible for reuse.
        assert 0 < warm.tape_steps_reused <= 2
        assert warm.error_bound == cold.error_bound
        assert warm.final_delta == cold.final_delta
