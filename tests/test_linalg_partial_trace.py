"""Unit and property tests for partial traces and reduced density matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.linalg import (
    ghz_state,
    is_density_matrix,
    maximally_mixed,
    partial_trace,
    partial_trace_keep,
    permute_qubits,
    product_density,
    pure_density,
    random_density_matrix,
    random_statevector,
    reduced_density_matrix,
    trace_norm,
)


class TestPartialTrace:
    def test_product_state_factorises(self):
        rho = product_density("01")
        reduced = partial_trace(rho, [0])
        assert np.allclose(reduced, product_density("1"))

    def test_ghz_reduction_is_maximally_mixed(self):
        rho = pure_density(ghz_state(2))
        assert np.allclose(partial_trace(rho, [1]), maximally_mixed(1))

    def test_keep_order_matters(self):
        rho = product_density("01")
        keep_01 = partial_trace_keep(rho, [0, 1])
        keep_10 = partial_trace_keep(rho, [1, 0])
        assert np.allclose(keep_01, product_density("01"))
        assert np.allclose(keep_10, product_density("10"))

    def test_trace_preserved(self):
        rho = random_density_matrix(3, rng=np.random.default_rng(0))
        reduced = partial_trace(rho, [2])
        assert np.isclose(np.trace(reduced).real, 1.0)
        assert is_density_matrix(reduced)

    def test_rejects_bad_qubits(self):
        with pytest.raises(SimulationError):
            partial_trace(maximally_mixed(2), [5])
        with pytest.raises(SimulationError):
            partial_trace_keep(maximally_mixed(2), [0, 0])

    def test_reduced_density_matrix_alias(self):
        rho = pure_density(ghz_state(3))
        assert np.allclose(reduced_density_matrix(rho, [0]), maximally_mixed(1))


class TestPermuteQubits:
    def test_permutation_roundtrip(self):
        rho = random_density_matrix(3, rng=np.random.default_rng(1))
        permuted = permute_qubits(rho, [2, 0, 1])
        # permuting back with the inverse permutation restores the original
        restored = permute_qubits(permuted, [1, 2, 0])
        assert np.allclose(restored, rho)

    def test_identity_permutation(self):
        rho = random_density_matrix(2, rng=np.random.default_rng(2))
        assert np.allclose(permute_qubits(rho, [0, 1]), rho)

    def test_rejects_non_permutation(self):
        with pytest.raises(SimulationError):
            permute_qubits(maximally_mixed(2), [0, 0])


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000))
def test_partial_trace_is_contractive(seed):
    """Partial trace never increases trace-norm distance (used in Thm 6.1)."""
    rng = np.random.default_rng(seed)
    a = pure_density(random_statevector(3, rng=rng))
    b = pure_density(random_statevector(3, rng=rng))
    full = trace_norm(a - b)
    reduced = trace_norm(partial_trace(a, [2]) - partial_trace(b, [2]))
    assert reduced <= full + 1e-9


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000))
def test_keep_then_full_consistency(seed):
    """partial_trace and partial_trace_keep agree on the kept subsystem."""
    rng = np.random.default_rng(seed)
    rho = random_density_matrix(3, rng=rng)
    keep = partial_trace_keep(rho, [0, 2])
    drop = partial_trace(rho, [1])
    assert np.allclose(keep, drop, atol=1e-10)


class TestStackedPartialTrace:
    """partial_trace_keep on (..., d, d) stacks (the batched reduction path)."""

    def test_stack_matches_per_element_bitwise(self):
        import numpy as np

        from repro.linalg.partial_trace import partial_trace_keep
        from repro.linalg.states import random_density_matrix

        stack = np.stack(
            [random_density_matrix(3, rng=np.random.default_rng(seed)) for seed in range(6)]
        )
        for keep in ([0], [1], [2], [0, 2], [2, 0], [1, 2]):
            batched = partial_trace_keep(stack, keep)
            for index in range(stack.shape[0]):
                single = partial_trace_keep(stack[index], keep)
                assert np.array_equal(batched[index], single)

    def test_leading_batch_shape_preserved(self):
        import numpy as np

        from repro.linalg.partial_trace import partial_trace_keep
        from repro.linalg.states import random_density_matrix

        stack = np.stack(
            [random_density_matrix(2, rng=np.random.default_rng(seed)) for seed in range(6)]
        ).reshape(2, 3, 4, 4)
        reduced = partial_trace_keep(stack, [1])
        assert reduced.shape == (2, 3, 2, 2)

    def test_stack_rejects_non_square_and_bad_dims(self):
        import numpy as np
        import pytest

        from repro.errors import SimulationError
        from repro.linalg.partial_trace import partial_trace_keep

        with pytest.raises(SimulationError):
            partial_trace_keep(np.zeros((3, 4, 2)), [0])
        with pytest.raises(SimulationError):
            partial_trace_keep(np.zeros((3, 3, 3)), [0])
