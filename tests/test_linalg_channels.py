"""Unit and property tests for quantum channel representations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NoiseModelError
from repro.linalg import (
    CNOT,
    HADAMARD,
    PAULI_X,
    QuantumChannel,
    apply_kraus,
    channel_difference_choi,
    choi_is_trace_preserving,
    choi_output_trace_map,
    choi_to_kraus,
    choi_to_liouville,
    identity_channel,
    is_cptp_kraus,
    kraus_to_liouville,
    liouville_to_choi,
    maximally_mixed,
    pure_density,
    random_density_matrix,
    random_unitary,
    unitary_channel,
    zero_state,
)
from repro.noise import amplitude_damping, bit_flip, depolarizing


class TestChannelConstruction:
    def test_unitary_channel(self):
        channel = unitary_channel(HADAMARD)
        out = channel(pure_density(zero_state(1)))
        assert np.isclose(out[0, 1].real, 0.5)

    def test_from_unitary_rejects_non_unitary(self):
        with pytest.raises(NoiseModelError):
            QuantumChannel.from_unitary(np.array([[1, 0], [0, 2]]))

    def test_identity_channel(self):
        rho = random_density_matrix(1, rng=np.random.default_rng(0))
        assert np.allclose(identity_channel(1)(rho), rho)

    def test_rejects_empty_kraus(self):
        with pytest.raises(NoiseModelError):
            QuantumChannel([])

    def test_rejects_mismatched_kraus(self):
        with pytest.raises(NoiseModelError):
            QuantumChannel([np.eye(2), np.eye(4)])


class TestRepresentations:
    def test_choi_of_identity(self):
        choi = identity_channel(1).choi()
        omega = np.zeros(4, dtype=complex)
        omega[0] = omega[3] = 1.0
        assert np.allclose(choi, np.outer(omega, omega.conj()))

    def test_choi_trace_preserving(self):
        for channel in (bit_flip(0.3), depolarizing(0.2), amplitude_damping(0.4)):
            assert choi_is_trace_preserving(channel.choi())

    def test_choi_kraus_roundtrip(self):
        channel = amplitude_damping(0.3)
        rebuilt = QuantumChannel(choi_to_kraus(channel.choi()))
        rho = random_density_matrix(1, rng=np.random.default_rng(1))
        assert np.allclose(channel(rho), rebuilt(rho), atol=1e-9)

    def test_liouville_applies_channel(self):
        channel = bit_flip(0.25)
        rho = random_density_matrix(1, rng=np.random.default_rng(2))
        via_liouville = (channel.liouville() @ rho.reshape(-1)).reshape(2, 2)
        assert np.allclose(via_liouville, channel(rho), atol=1e-10)

    def test_choi_liouville_roundtrip(self):
        channel = depolarizing(0.1)
        choi = channel.choi()
        assert np.allclose(liouville_to_choi(choi_to_liouville(choi)), choi, atol=1e-12)
        assert np.allclose(choi_to_liouville(choi), kraus_to_liouville(channel.kraus), atol=1e-10)

    def test_choi_output_trace_map(self):
        reduced = choi_output_trace_map(bit_flip(0.2).choi())
        assert np.allclose(reduced, np.eye(2), atol=1e-10)

    def test_choi_to_kraus_rejects_non_square_dim(self):
        with pytest.raises(NoiseModelError):
            choi_to_kraus(np.eye(3))

    def test_choi_to_kraus_rejects_non_psd(self):
        with pytest.raises(NoiseModelError):
            choi_to_kraus(np.diag([1.0, -1.0, 0.0, 0.0]))


class TestChannelAlgebra:
    def test_composition(self):
        x_channel = unitary_channel(PAULI_X)
        composed = x_channel @ x_channel
        rho = random_density_matrix(1, rng=np.random.default_rng(3))
        assert np.allclose(composed(rho), rho, atol=1e-10)

    def test_composition_dimension_check(self):
        with pytest.raises(NoiseModelError):
            unitary_channel(CNOT).compose(unitary_channel(PAULI_X))

    def test_tensor(self):
        joint = bit_flip(1.0).tensor(identity_channel(1))
        rho = pure_density(zero_state(2))
        out = joint(rho)
        assert np.isclose(out[2, 2].real, 1.0)

    def test_embed(self):
        flip = bit_flip(1.0).embed([1], 2)
        out = flip(pure_density(zero_state(2)))
        assert np.isclose(out[1, 1].real, 1.0)

    def test_adjoint_unital_for_unitary(self):
        channel = unitary_channel(HADAMARD)
        assert np.allclose(channel.adjoint()(np.eye(2)), np.eye(2))

    def test_apply_kraus_function(self):
        rho = pure_density(zero_state(1))
        assert np.allclose(apply_kraus([PAULI_X], rho), PAULI_X @ rho @ PAULI_X)

    def test_difference_choi_is_traceless_difference(self):
        diff = channel_difference_choi(bit_flip(0.2), identity_channel(1))
        assert np.isclose(np.trace(diff).real, 0.0, atol=1e-10)

    def test_difference_choi_dimension_check(self):
        with pytest.raises(NoiseModelError):
            channel_difference_choi(bit_flip(0.1), identity_channel(2))


class TestCPTPChecks:
    def test_is_cptp_kraus(self):
        assert is_cptp_kraus(bit_flip(0.4).kraus)
        assert not is_cptp_kraus([0.5 * np.eye(2)])

    def test_channel_reports_cptp(self):
        assert depolarizing(0.3).is_cptp()
        assert unitary_channel(HADAMARD).is_unitary_channel()

    def test_maximally_mixing_channel(self):
        channel = depolarizing(1.0)
        out = channel(pure_density(zero_state(1)))
        # Full depolarizing with our parametrisation keeps 1/3 weight asymmetry,
        # but the output must still be a valid state.
        assert np.isclose(np.trace(out).real, 1.0)
        assert np.all(np.linalg.eigvalsh(out) >= -1e-10)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2000))
def test_random_unitary_channels_are_cptp(seed):
    rng = np.random.default_rng(seed)
    channel = unitary_channel(random_unitary(4, rng=rng))
    assert channel.is_cptp()
    assert choi_is_trace_preserving(channel.choi())
    # Kraus -> Choi -> Kraus roundtrip preserves action.
    rebuilt = QuantumChannel(choi_to_kraus(channel.choi()))
    rho = random_density_matrix(2, rng=rng)
    assert np.allclose(channel(rho), rebuilt(rho), atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2000), p=st.floats(0.0, 1.0))
def test_mixtures_of_channels_are_cptp(seed, p):
    rng = np.random.default_rng(seed)
    u = unitary_channel(random_unitary(2, rng=rng))
    mixed_kraus = [np.sqrt(1 - p) * k for k in u.kraus] + [np.sqrt(p) * k for k in bit_flip(0.5).kraus]
    assert is_cptp_kraus(mixed_kraus)
    out = apply_kraus(mixed_kraus, maximally_mixed(1))
    assert np.isclose(np.trace(out).real, 1.0, atol=1e-9)


class TestChoiStack:
    """choi_stack: stacked Choi construction with cache write-back."""

    def test_matches_per_channel_and_fills_cache(self):
        import numpy as np

        from repro.linalg.channels import QuantumChannel, choi_stack, kraus_to_choi
        from repro.noise import channels as noise_channels

        group = [
            noise_channels.bit_flip(0.01),
            noise_channels.depolarizing(0.05),
            QuantumChannel.from_unitary(np.array([[0, 1], [1, 0]], dtype=complex)),
        ]
        stacked = choi_stack(group)
        assert stacked.shape == (3, 4, 4)
        for row, channel in enumerate(group):
            assert np.array_equal(stacked[row], channel.choi())
            assert np.array_equal(stacked[row], kraus_to_choi(channel.kraus))

    def test_mixed_cached_and_uncached(self):
        import numpy as np

        from repro.linalg.channels import choi_stack
        from repro.noise import channels as noise_channels

        warm = noise_channels.bit_flip(0.02)
        cached = warm.choi()  # warm the cache
        cold = noise_channels.phase_flip(0.03)
        stacked = choi_stack([warm, cold])
        assert stacked[0] is not cached or np.array_equal(stacked[0], cached)
        assert np.array_equal(stacked[0], cached)
        assert np.array_equal(stacked[1], cold.choi())

    def test_rejects_mixed_arity(self):
        import pytest

        from repro.errors import NoiseModelError
        from repro.linalg.channels import choi_stack
        from repro.noise import channels as noise_channels

        with pytest.raises(NoiseModelError):
            choi_stack(
                [noise_channels.bit_flip(0.1), noise_channels.two_qubit_depolarizing(0.1)]
            )
        with pytest.raises(NoiseModelError):
            choi_stack([])


class TestUnitaryConjugateStack:
    def test_matches_per_element_bitwise(self):
        import numpy as np

        from repro.linalg.channels import unitary_conjugate_stack
        from repro.linalg.states import random_density_matrix

        rng = np.random.default_rng(4)
        qs = [np.linalg.qr(rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4)))[0] for _ in range(5)]
        rhos = [random_density_matrix(2, rng=np.random.default_rng(seed)) for seed in range(5)]
        batched = unitary_conjugate_stack(np.stack(qs), np.stack(rhos))
        for u, rho, out in zip(qs, rhos, batched):
            assert np.array_equal(out, u @ rho @ u.conj().T)
