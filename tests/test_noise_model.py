"""Unit tests for NoiseModel resolution rules."""

import numpy as np
import pytest

from repro.circuits import gates as gate_lib
from repro.errors import NoiseModelError
from repro.linalg import pure_density, zero_state
from repro.noise import NoiseModel, bit_flip, depolarizing, identity_noise


class TestResolution:
    def test_noiseless_model(self):
        model = NoiseModel.noiseless()
        assert model.channel_for(gate_lib.h(), (0,)) is None
        assert model.is_noiseless_for(gate_lib.h(), (0,))
        assert not model.is_position_dependent()

    def test_uniform_bit_flip_defaults(self):
        model = NoiseModel.uniform_bit_flip(0.1)
        assert model.channel_for(gate_lib.h(), (3,)) is not None
        two_qubit = model.channel_for(gate_lib.cx(), (0, 1))
        assert two_qubit.num_qubits == 2
        assert not model.is_position_dependent()

    def test_uniform_depolarizing(self):
        model = NoiseModel.uniform_depolarizing(1e-3, 1e-2)
        assert model.channel_for(gate_lib.cx(), (0, 1)).num_qubits == 2

    def test_gate_name_rule_overrides_default(self):
        model = NoiseModel.uniform_bit_flip(0.1)
        model.add_gate_rule("h", depolarizing(0.5))
        assert model.channel_for(gate_lib.h(), (0,)).name.startswith("depolarizing")
        assert model.channel_for(gate_lib.x(), (0,)).name.startswith("bit_flip")

    def test_qubit_rule_overrides_gate_name(self):
        model = NoiseModel()
        model.add_gate_rule("h", bit_flip(0.1))
        model.add_qubit_rule((2,), depolarizing(0.3))
        assert model.channel_for(gate_lib.h(), (2,)).name.startswith("depolarizing")
        assert model.is_position_dependent()

    def test_gate_and_qubit_rule_is_most_specific(self):
        model = NoiseModel()
        model.add_qubit_rule((0,), bit_flip(0.1))
        model.add_rule("h", (0,), depolarizing(0.2))
        assert model.channel_for(gate_lib.h(), (0,)).name.startswith("depolarizing")
        assert model.channel_for(gate_lib.x(), (0,)).name.startswith("bit_flip")

    def test_factory_model(self):
        def factory(gate, qubits):
            return bit_flip(0.01) if gate.num_qubits == 1 else None

        model = NoiseModel.from_factory(factory)
        assert model.channel_for(gate_lib.h(), (0,)) is not None
        assert model.channel_for(gate_lib.cx(), (0, 1)) is None
        assert model.is_position_dependent()

    def test_dimension_validation(self):
        model = NoiseModel()
        with pytest.raises(NoiseModelError):
            model.set_default(2, bit_flip(0.1))
        with pytest.raises(NoiseModelError):
            model.add_qubit_rule((0, 1), bit_flip(0.1))

    def test_rules_listing(self):
        model = NoiseModel.uniform_bit_flip(0.1)
        model.add_gate_rule("h", depolarizing(0.2))
        labels = {rule.gate_name for rule in model.rules()}
        assert "h" in labels


class TestNoisyGateChannel:
    def test_noise_after_gate(self):
        model = NoiseModel.uniform_bit_flip(1.0)
        channel = model.noisy_gate_channel(gate_lib.x(), (0,))
        # X then certain bit flip = identity.
        rho = pure_density(zero_state(1))
        assert np.allclose(channel(rho), rho, atol=1e-12)

    def test_noise_before_gate(self):
        model = NoiseModel(noise_after_gate=False)
        model.set_default(1, bit_flip(1.0))
        channel = model.noisy_gate_channel(gate_lib.x(), (0,))
        rho = pure_density(zero_state(1))
        assert np.allclose(channel(rho), rho, atol=1e-12)

    def test_noiseless_gate_channel_is_unitary(self):
        model = NoiseModel.noiseless()
        channel = model.noisy_gate_channel(gate_lib.h(), (0,))
        assert channel.is_unitary_channel()

    def test_identity_noise_explicit(self):
        model = NoiseModel()
        model.set_default(1, identity_noise(1))
        channel = model.noisy_gate_channel(gate_lib.h(), (0,))
        assert channel.is_cptp()
