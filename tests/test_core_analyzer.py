"""End-to-end tests of the Gleipnir analyzer, including the key soundness property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit
from repro.config import AnalysisConfig, SDPConfig
from repro.core import GleipnirAnalyzer, analyze_program, worst_case_bound
from repro.errors import LogicError
from repro.noise import NoiseModel, depolarizing
from repro.semantics import exact_program_error

from helpers import random_circuit


FAST = AnalysisConfig(mps_width=8, sdp=SDPConfig(max_iterations=300, tolerance=1e-5))


class TestAnalyzerBasics:
    def test_ghz2_bound_structure(self, ghz2_circuit, bit_flip_model):
        result = GleipnirAnalyzer(bit_flip_model, FAST).analyze(ghz2_circuit)
        assert result.num_gates == 2
        assert result.num_branches == 1
        assert 0 < result.error_bound <= 2 * 1e-3 + 1e-6
        assert result.derivation is not None
        assert result.summary()

    def test_noiseless_model_gives_zero(self, ghz3_circuit):
        result = GleipnirAnalyzer(NoiseModel.noiseless(), FAST).analyze(ghz3_circuit)
        assert result.error_bound == 0.0

    def test_functional_wrapper(self, ghz2_circuit, bit_flip_model):
        result = analyze_program(ghz2_circuit, bit_flip_model, config=FAST)
        assert result.error_bound > 0

    def test_initial_bits(self, bit_flip_model):
        circuit = Circuit(2).cx(0, 1)
        result = GleipnirAnalyzer(bit_flip_model, FAST).analyze(circuit, initial_bits="10")
        assert result.error_bound > 0

    def test_invalid_inputs(self, bit_flip_model):
        analyzer = GleipnirAnalyzer(bit_flip_model, FAST)
        with pytest.raises(LogicError):
            analyzer.analyze(Circuit(2).h(0), initial_bits="0")

    def test_no_derivation_mode(self, ghz2_circuit, bit_flip_model):
        config = FAST.replace(collect_derivation=False)
        result = GleipnirAnalyzer(bit_flip_model, config).analyze(ghz2_circuit)
        assert result.derivation is None
        with pytest.raises(LogicError):
            result.gate_contributions()

    def test_cache_reuse_across_layers(self, bit_flip_model):
        circuit = Circuit(4).h_layer()
        result = GleipnirAnalyzer(bit_flip_model, FAST).analyze(circuit)
        assert result.sdp_solves == 1
        # The scheduler pre-solves the one unique class, so all four gate
        # applications are answered from the cache during the replay.
        assert result.sdp_cache_hits == 4
        assert result.scheduled_solves == 1

    def test_bound_never_exceeds_worst_case(self, bit_flip_model):
        circuit = random_circuit(4, 12, seed=3)
        result = GleipnirAnalyzer(bit_flip_model, FAST).analyze(circuit)
        worst = worst_case_bound(circuit, bit_flip_model, config=FAST)
        assert result.error_bound <= worst.value + 1e-9


class TestSoundness:
    """Theorem A.1: the derived bound dominates the true error."""

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 50), width=st.integers(1, 4))
    def test_bound_dominates_exact_error_bit_flip(self, seed, width):
        circuit = random_circuit(4, 10, seed=seed)
        model = NoiseModel.uniform_bit_flip(5e-3)
        config = FAST.replace(mps_width=width)
        result = GleipnirAnalyzer(model, config).analyze(circuit)
        exact = exact_program_error(circuit, model)
        assert result.error_bound >= exact - 1e-9
        result.derivation.check()

    def test_bound_dominates_exact_error_depolarizing(self):
        circuit = random_circuit(3, 8, seed=11)
        model = NoiseModel.uniform_depolarizing(2e-3, 8e-3)
        result = GleipnirAnalyzer(model, FAST).analyze(circuit)
        exact = exact_program_error(circuit, model)
        assert result.error_bound >= exact - 1e-9

    def test_bound_dominates_for_position_dependent_noise(self):
        from repro.noise import two_qubit_depolarizing

        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2).rz(0.3, 2)
        model = NoiseModel()
        model.add_qubit_rule((1,), depolarizing(0.01))
        model.add_qubit_rule((2,), depolarizing(0.03))
        model.set_default(1, depolarizing(0.002))
        model.set_default(2, two_qubit_depolarizing(0.02))
        result = GleipnirAnalyzer(model, FAST).analyze(circuit)
        exact = exact_program_error(circuit, model)
        assert result.error_bound >= exact - 1e-9

    def test_branchy_program_soundness(self):
        circuit = Circuit(2).h(0)
        circuit.if_measure(0, lambda c: c.x(1), lambda c: c.z(1))
        circuit.h(1)
        model = NoiseModel.uniform_bit_flip(5e-3)
        result = GleipnirAnalyzer(model, FAST).analyze(circuit)
        exact = exact_program_error(circuit, model)
        assert result.error_bound >= exact - 1e-9
        assert result.num_branches >= 2
        result.derivation.check()

    def test_unreachable_branch_uses_trivial_predicate(self):
        # Measuring |0> deterministically: the else-branch is unreachable.
        circuit = Circuit(2)
        circuit.if_measure(0, lambda c: c.x(1), lambda c: c.x(1))
        model = NoiseModel.uniform_bit_flip(5e-3)
        result = GleipnirAnalyzer(model, FAST).analyze(circuit)
        exact = exact_program_error(circuit, model)
        assert result.error_bound >= exact - 1e-9


class TestMonotonicity:
    def test_wider_mps_is_at_least_as_tight(self):
        circuit = random_circuit(5, 16, seed=21)
        model = NoiseModel.uniform_bit_flip(1e-3)
        narrow = GleipnirAnalyzer(model, FAST.replace(mps_width=1)).analyze(circuit)
        wide = GleipnirAnalyzer(model, FAST.replace(mps_width=16)).analyze(circuit)
        assert wide.error_bound <= narrow.error_bound + 1e-9

    def test_more_noise_gives_larger_bound(self, ghz3_circuit):
        quiet = GleipnirAnalyzer(NoiseModel.uniform_bit_flip(1e-4), FAST).analyze(ghz3_circuit)
        loud = GleipnirAnalyzer(NoiseModel.uniform_bit_flip(1e-2), FAST).analyze(ghz3_circuit)
        assert loud.error_bound > quiet.error_bound
