"""Tests for cross-job SDP batch fusion and cost-aware timing attribution.

The fusion window pre-solves the union of the pending jobs' solve classes as
one batched kernel run and parks the bounds in a shared persistent cache;
executing jobs then warm-hit exact entries.  The properties under test are
the contract of the feature: bit-identical bounds, re-verifiable stored
certificates, and zero residual SDP solves on the fused path.
"""

from __future__ import annotations

import os
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import random_circuit

from repro.api import AnalysisSession
from repro.circuits.program import Seq
from repro.config import AnalysisConfig, SDPConfig
from repro.core.scheduler import clear_tape_memo
from repro.engine.costmodel import reset_global_model
from repro.engine.outcomes import OutcomeStore
from repro.engine.pool import AnalysisEngine
from repro.engine.spec import AnalysisJob
from repro.errors import EngineError
from repro.noise import NoiseModel

FAST = AnalysisConfig(mps_width=4, sdp=SDPConfig(max_iterations=200, tolerance=1e-4))
MODEL = NoiseModel.uniform_bit_flip(1e-3)

#: Effectively unbounded window: every pending job is admitted, so the tests
#: exercise the fusion path itself rather than the latency knob.
WIDE_WINDOW_MS = 10_000.0


@pytest.fixture(autouse=True)
def _fresh_process_state():
    """Neither leg of a fused-vs-unfused comparison may inherit warmth."""
    clear_tape_memo()
    reset_global_model()
    yield
    clear_tape_memo()
    reset_global_model()


def prefix_jobs(seed: int, num_gates: int = 12, fractions=(0.5, 1.0)) -> list[AnalysisJob]:
    """Prefix truncations of one random circuit: distinct jobs (distinct
    fingerprints, no engine dedupe) whose shared prefix guarantees
    overlapping quantised solve classes — the cross-job fusion workload."""
    circuit = random_circuit(3, num_gates, seed=seed)
    program = circuit.to_program()
    parts = list(program.parts) if isinstance(program, Seq) else [program]
    jobs = []
    for fraction in fractions:
        keep = max(1, int(len(parts) * fraction))
        jobs.append(
            AnalysisJob(
                program=Seq(tuple(parts[:keep])),
                noise_model=MODEL,
                config=FAST,
                num_qubits=circuit.num_qubits,
                name=f"prefix{keep}",
            )
        )
    return jobs


def run_leg(jobs: list[AnalysisJob], batch_window_ms: float) -> dict:
    clear_tape_memo()
    reset_global_model()
    with tempfile.TemporaryDirectory(prefix="test-fusion-") as tmp:
        path = os.path.join(tmp, "outcomes.jsonl")
        engine = AnalysisEngine(workers=1, outcomes=path, batch_window_ms=batch_window_ms)
        report = engine.run(jobs)
        assert report.ok
        store = OutcomeStore(path)
        return {
            "bounds": [result.error_bound for result in report.results],
            "sdp_solves": sum(result.sdp_solves for result in report.results),
            "certificates_reverified": all(
                store.get(job.fingerprint(), verify=True) is not None for job in jobs
            ),
            "fusion": engine.stats()["fusion"],
        }


class TestFusedBitIdentity:
    @settings(max_examples=3, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_fused_bounds_bit_identical_and_certificates_verify(self, seed):
        jobs = prefix_jobs(seed)
        unfused = run_leg(jobs, 0.0)
        fused = run_leg(jobs, WIDE_WINDOW_MS)
        assert fused["bounds"] == unfused["bounds"]
        assert unfused["certificates_reverified"]
        assert fused["certificates_reverified"]
        # Every executing job warm-hits the fused cache: no residual solves.
        assert fused["sdp_solves"] == 0
        assert unfused["sdp_solves"] > 0
        assert fused["fusion"]["fused_jobs"] == len(jobs)
        assert fused["fusion"]["fused_classes"] > 0

    def test_fusion_counts_windows_and_groups(self):
        jobs = prefix_jobs(seed=7)
        fused = run_leg(jobs, WIDE_WINDOW_MS)
        stats = fused["fusion"]
        assert stats["windows"] == 1
        assert stats["fused_groups"] >= 1
        assert stats["solve_seconds"] > 0.0


class TestFusionGating:
    def test_zero_window_disables_fusion(self):
        jobs = prefix_jobs(seed=3)
        result = run_leg(jobs, 0.0)
        assert result["fusion"]["windows"] == 0
        assert result["fusion"]["fused_jobs"] == 0
        assert result["sdp_solves"] > 0

    def test_single_job_batch_never_fuses(self):
        jobs = prefix_jobs(seed=3, fractions=(1.0,))
        result = run_leg(jobs, WIDE_WINDOW_MS)
        assert result["fusion"]["windows"] == 0
        assert result["fusion"]["fused_jobs"] == 0

    def test_window_knobs_are_validated(self):
        with pytest.raises(ValueError):
            AnalysisEngine(workers=1, batch_window_ms=-1.0)
        with pytest.raises(ValueError):
            AnalysisEngine(workers=1, batch_window_max_classes=0)

    def test_stats_expose_window_and_costmodel(self):
        engine = AnalysisEngine(workers=1, batch_window_ms=5.0, batch_window_max_classes=7)
        stats = engine.stats()
        assert stats["fusion"]["batch_window_ms"] == 5.0
        assert stats["fusion"]["batch_window_max_classes"] == 7
        assert "coefficients" in stats["costmodel"]

    def test_remote_sessions_reject_the_fusion_window(self):
        with pytest.raises(EngineError):
            AnalysisSession(remote="http://127.0.0.1:1", batch_window_ms=5.0)


class TestTimingAttribution:
    """solve_timings events carry worker/chunk attribution and a prediction."""

    def test_events_record_worker_chunk_and_prediction(self):
        jobs = prefix_jobs(seed=11, fractions=(1.0,))
        report = AnalysisEngine(workers=1).run(jobs)
        assert report.ok
        events = (report.results[0].timings or {}).get("solve_classes")
        assert events
        for event in events:
            assert event["count"] >= 1
            assert event["seconds"] >= 0.0
            assert isinstance(event["worker"], int) and event["worker"] >= 0
            assert event["chunk"] == event["worker"]
            assert event["predicted_seconds"] >= 0.0
