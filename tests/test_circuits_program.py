"""Unit tests for the program AST."""

import pytest

from repro.circuits import GateOp, IfMeasure, Seq, Skip, gate_op, seq
from repro.circuits import gates as gate_lib
from repro.errors import CircuitError


class TestGateOp:
    def test_basic_properties(self):
        op = gate_op(gate_lib.cx(), [0, 2])
        assert op.qubits == (0, 2)
        assert op.gate_count() == 1
        assert op.qubits_used() == {0, 2}
        assert op.num_qubits == 3

    def test_arity_mismatch(self):
        with pytest.raises(CircuitError):
            GateOp(gate_lib.cx(), (0,))

    def test_duplicate_qubits(self):
        with pytest.raises(CircuitError):
            GateOp(gate_lib.cx(), (1, 1))

    def test_negative_qubit(self):
        with pytest.raises(CircuitError):
            GateOp(gate_lib.h(), (-1,))

    def test_single_qubit_shorthand(self):
        assert gate_op(gate_lib.h(), 3).qubits == (3,)


class TestSeqAndSkip:
    def test_skip(self):
        skip = Skip()
        assert skip.gate_count() == 0
        assert skip.statements() == []
        assert list(skip.operations()) == []

    def test_seq_flattening(self):
        program = seq(gate_op(gate_lib.h(), 0), seq(gate_op(gate_lib.x(), 1), Skip()))
        assert isinstance(program, Seq)
        assert program.gate_count() == 2
        assert [op.gate.name for op in program.operations()] == ["h", "x"]

    def test_seq_of_nothing_is_skip(self):
        assert isinstance(seq(Skip(), Skip()), Skip)

    def test_seq_single_element_unwrapped(self):
        op = gate_op(gate_lib.h(), 0)
        assert seq(op) is op

    def test_then_operator(self):
        program = gate_op(gate_lib.h(), 0) >> gate_op(gate_lib.x(), 0)
        assert program.gate_count() == 2

    def test_pretty_contains_gate_names(self):
        program = seq(gate_op(gate_lib.h(), 0), gate_op(gate_lib.cx(), [0, 1]))
        text = program.pretty()
        assert "h(q0)" in text and "cx(q0, q1)" in text


class TestIfMeasure:
    def _branchy(self):
        return IfMeasure(0, gate_op(gate_lib.x(), 1), gate_op(gate_lib.z(), 1))

    def test_counts(self):
        program = self._branchy()
        assert program.branch_count() == 2
        assert program.gate_count() == 1
        assert program.total_gate_count() == 2
        assert program.qubits_used() == {0, 1}

    def test_operations_rejected_for_branches(self):
        with pytest.raises(CircuitError):
            list(self._branchy().operations())

    def test_nested_branch_count(self):
        inner = self._branchy()
        outer = IfMeasure(2, inner, Skip())
        assert outer.branch_count() == 3

    def test_pretty(self):
        text = self._branchy().pretty()
        assert "if q0 = |0>" in text
        assert "else" in text

    def test_seq_with_branches_counts_max(self):
        program = seq(gate_op(gate_lib.h(), 0), self._branchy())
        assert program.gate_count() == 2
        assert program.branch_count() == 2
