"""Tests for derivation trees and their independent re-validation."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.config import AnalysisConfig, SDPConfig
from repro.core import Derivation, GleipnirAnalyzer, gate_rule, meas_rule, seq_rule, skip_rule
from repro.errors import DerivationCheckError
from repro.linalg import pure_density, zero_state
from repro.noise import NoiseModel, bit_flip
from repro.sdp import gate_error_bound


CFG = AnalysisConfig(mps_width=8, sdp=SDPConfig(max_iterations=300, tolerance=1e-5))


def _analyzed(circuit: Circuit) -> Derivation:
    analyzer = GleipnirAnalyzer(NoiseModel.uniform_bit_flip(1e-3), CFG)
    return analyzer.analyze(circuit).derivation


class TestDerivationQueries:
    def test_gate_contributions(self, ghz2_circuit):
        derivation = _analyzed(ghz2_circuit)
        contributions = derivation.gate_contributions()
        assert len(contributions) == 2
        assert contributions[0].gate_label.startswith("h")
        assert contributions[1].qubits == (0, 1)
        assert derivation.error_bound >= contributions[1].epsilon

    def test_pretty_output(self, ghz2_circuit):
        text = _analyzed(ghz2_circuit).pretty()
        assert "[seq]" in text and "[gate]" in text

    def test_total_truncation(self, ghz3_circuit):
        derivation = _analyzed(ghz3_circuit)
        assert derivation.total_truncation() >= 0.0

    def test_nodes_iteration(self, ghz2_circuit):
        derivation = _analyzed(ghz2_circuit)
        rules = [node.rule for node in derivation.nodes()]
        assert rules.count("gate") == 2


class TestCheck:
    def test_valid_derivation_passes(self, ghz3_circuit):
        _analyzed(ghz3_circuit).check()

    def test_branchy_derivation_passes(self):
        circuit = Circuit(2).h(0)
        circuit.if_measure(0, lambda c: c.x(1), lambda c: c.z(1))
        _analyzed(circuit).check()

    def test_tampered_gate_bound_detected(self, ghz2_circuit):
        derivation = _analyzed(ghz2_circuit)
        gate_node = derivation.gate_nodes()[1]
        gate_node.judgment = gate_node.judgment.__class__(
            delta=gate_node.judgment.delta,
            epsilon=gate_node.judgment.epsilon / 100,
            program_label=gate_node.judgment.program_label,
        )
        with pytest.raises(DerivationCheckError):
            derivation.check()

    def test_tampered_seq_total_detected(self, ghz2_circuit):
        derivation = _analyzed(ghz2_circuit)
        root = derivation.root
        root.judgment = root.judgment.__class__(
            delta=root.judgment.delta,
            epsilon=root.judgment.epsilon / 10,
            program_label=root.judgment.program_label,
        )
        with pytest.raises(DerivationCheckError):
            derivation.check()

    def test_tampered_certificate_detected(self, ghz2_circuit):
        derivation = _analyzed(ghz2_circuit)
        node = derivation.gate_nodes()[1]
        # Corrupt the dual certificate matrix: feasibility must now fail.
        node.bound.certificate.z[0, 0] = -10.0
        with pytest.raises(DerivationCheckError):
            derivation.check()

    def test_skip_rule_with_error_detected(self):
        node = skip_rule(0.0)
        node.judgment = node.judgment.__class__(delta=0.0, epsilon=0.5, program_label="skip")
        with pytest.raises(DerivationCheckError):
            Derivation(node).check()

    def test_handcrafted_meas_node_checks(self):
        bound = gate_error_bound(
            np.array([[0, 1], [1, 0]], dtype=complex),
            bit_flip(0.1),
            pure_density(zero_state(1)),
            0.0,
            config=CFG.sdp,
        )
        branches = [gate_rule("x", (0,), 0.2, bound), skip_rule(0.2)]
        node = meas_rule(0, 0.2, branches)
        Derivation(node).check()

    def test_unknown_rule_rejected(self):
        node = skip_rule(0.0)
        node.rule = "mystery"
        with pytest.raises(DerivationCheckError):
            Derivation(node).check()

    def test_weaken_node_checks(self):
        from repro.core import weaken_rule

        bound = gate_error_bound(
            np.array([[0, 1], [1, 0]], dtype=complex),
            bit_flip(0.1),
            pure_density(zero_state(1)),
            0.0,
            config=CFG.sdp,
        )
        premise = gate_rule("x", (0,), 0.4, bound)
        node = weaken_rule(premise, delta=0.1)
        Derivation(seq_rule([node])).check()
