"""Unit tests for repro.linalg.states."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.linalg import (
    basis_state,
    bloch_vector,
    density_from_bloch,
    density_matrix,
    fidelity,
    ghz_state,
    is_density_matrix,
    is_normalized,
    maximally_entangled,
    maximally_mixed,
    num_qubits_of,
    plus_state,
    product_density,
    pure_density,
    purity,
    random_density_matrix,
    random_statevector,
    state_overlap,
    w_state,
    zero_state,
)


class TestBasisStates:
    def test_basis_state_string(self):
        state = basis_state("10")
        assert state.shape == (4,)
        assert state[2] == 1.0

    def test_basis_state_sequence(self):
        assert np.allclose(basis_state([0, 1]), basis_state("01"))

    def test_qubit_zero_is_most_significant(self):
        state = basis_state("100")
        assert state[4] == 1.0

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            basis_state("102")

    def test_zero_state(self):
        assert zero_state(3)[0] == 1.0
        assert np.count_nonzero(zero_state(3)) == 1

    def test_zero_state_requires_qubits(self):
        with pytest.raises(ValueError):
            zero_state(0)

    def test_plus_state_uniform(self):
        state = plus_state(2)
        assert np.allclose(np.abs(state) ** 2, 0.25)


class TestNamedStates:
    def test_ghz_state(self):
        state = ghz_state(3)
        assert np.isclose(abs(state[0]) ** 2, 0.5)
        assert np.isclose(abs(state[-1]) ** 2, 0.5)
        assert is_normalized(state)

    def test_w_state(self):
        state = w_state(3)
        nonzero = np.nonzero(np.abs(state) > 1e-12)[0]
        assert sorted(nonzero) == [1, 2, 4]
        assert is_normalized(state)

    def test_maximally_mixed(self):
        rho = maximally_mixed(2)
        assert np.isclose(np.trace(rho).real, 1.0)
        assert np.isclose(purity(rho), 0.25)

    def test_maximally_entangled_norm(self):
        assert np.isclose(np.linalg.norm(maximally_entangled(4)), 1.0)
        assert np.isclose(np.linalg.norm(maximally_entangled(4, normalized=False)), 2.0)


class TestDensityMatrices:
    def test_pure_density_is_projector(self):
        rho = pure_density(ghz_state(2))
        assert np.allclose(rho @ rho, rho)
        assert is_density_matrix(rho)

    def test_density_matrix_passthrough(self):
        rho = maximally_mixed(1)
        assert density_matrix(rho) is not None
        assert np.allclose(density_matrix(rho), rho)

    def test_density_matrix_rejects_bad_shape(self):
        with pytest.raises(SimulationError):
            density_matrix(np.zeros((2, 3)))

    def test_product_density(self):
        rho = product_density("01")
        assert np.isclose(rho[1, 1].real, 1.0)

    def test_is_density_matrix_rejects_nonpsd(self):
        bad = np.diag([1.5, -0.5]).astype(complex)
        assert not is_density_matrix(bad)

    def test_purity_of_pure_state(self):
        assert np.isclose(purity(random_statevector(2, rng=np.random.default_rng(0))), 1.0)


class TestFidelityAndOverlap:
    def test_fidelity_identical_states(self):
        psi = random_statevector(2, rng=np.random.default_rng(1))
        assert np.isclose(fidelity(psi, psi), 1.0)

    def test_fidelity_orthogonal_states(self):
        assert np.isclose(fidelity(basis_state("0"), basis_state("1")), 0.0, atol=1e-12)

    def test_fidelity_symmetry(self):
        rng = np.random.default_rng(2)
        rho = random_density_matrix(1, rng=rng)
        sigma = random_density_matrix(1, rng=rng)
        assert np.isclose(fidelity(rho, sigma), fidelity(sigma, rho), atol=1e-9)

    def test_state_overlap(self):
        assert np.isclose(state_overlap(plus_state(1), zero_state(1)), 1 / np.sqrt(2))


class TestBloch:
    def test_bloch_roundtrip(self):
        rho = density_from_bloch([0.3, -0.2, 0.4])
        assert np.allclose(bloch_vector(rho), [0.3, -0.2, 0.4])

    def test_bloch_rejects_outside_ball(self):
        with pytest.raises(ValueError):
            density_from_bloch([1.0, 1.0, 1.0])

    def test_bloch_requires_single_qubit(self):
        with pytest.raises(SimulationError):
            bloch_vector(maximally_mixed(2))


class TestInference:
    def test_num_qubits_of(self):
        assert num_qubits_of(zero_state(4)) == 4
        assert num_qubits_of(maximally_mixed(3)) == 3

    def test_num_qubits_of_rejects_non_power(self):
        with pytest.raises(SimulationError):
            num_qubits_of(np.zeros(3))


@settings(max_examples=25, deadline=None)
@given(num_qubits=st.integers(min_value=1, max_value=3), seed=st.integers(0, 1000))
def test_random_density_matrices_are_valid(num_qubits, seed):
    rho = random_density_matrix(num_qubits, rng=np.random.default_rng(seed))
    assert is_density_matrix(rho)


@settings(max_examples=25, deadline=None)
@given(num_qubits=st.integers(min_value=1, max_value=4), seed=st.integers(0, 1000))
def test_random_statevectors_are_normalised(num_qubits, seed):
    psi = random_statevector(num_qubits, rng=np.random.default_rng(seed))
    assert is_normalized(psi)
