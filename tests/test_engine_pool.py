"""Tests for the process-pool engine: dedupe, sharding, budgets, resume."""

import pytest

from helpers import random_circuit

from repro.circuits import Circuit
from repro.config import AnalysisConfig, ResourceGuard, SDPConfig
from repro.engine.pool import AnalysisEngine, execute_job
from repro.engine.spec import AnalysisJob
from repro.engine.store import ResultStore
from repro.noise import NoiseModel

FAST = AnalysisConfig(mps_width=4, sdp=SDPConfig(max_iterations=200, tolerance=1e-4))
MODEL = NoiseModel.uniform_bit_flip(1e-3)


def _job(circuit: Circuit, *, config: AnalysisConfig = FAST, name: str | None = None) -> AnalysisJob:
    return AnalysisJob.from_circuit(circuit, MODEL, config=config, name=name)


def _small_jobs() -> list[AnalysisJob]:
    return [
        _job(Circuit(2, name="ghz2").h(0).cx(0, 1)),
        _job(Circuit(3, name="ghz3").h(0).cx(0, 1).cx(1, 2)),
        _job(random_circuit(3, 12, seed=5), name="random3x12"),
    ]


class TestEngineBasics:
    def test_inline_matches_direct_execution(self):
        jobs = _small_jobs()
        direct = [execute_job(job) for job in jobs]
        report = AnalysisEngine(workers=1).run(jobs)
        assert report.ok and report.executed == 3
        assert [r.error_bound for r in report.results] == [r.error_bound for r in direct]

    def test_dedupe_executes_once(self):
        job = _small_jobs()[0]
        clone = AnalysisJob.from_json(job.to_json())
        report = AnalysisEngine(workers=1).run([job, clone, job])
        assert report.executed == 1
        assert report.deduplicated == 2
        assert report.results[0] is report.results[1] is report.results[2]

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            AnalysisEngine(workers=0)


class TestAdaptiveWorkers:
    """The default worker count adapts to the machine: min(requested, cpus)."""

    def test_requested_workers_clamped_to_cpu_count(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        engine = AnalysisEngine(workers=8)
        assert engine.requested_workers == 8
        assert engine.workers == 2
        assert engine.stats()["requested_workers"] == 8
        assert engine.stats()["workers"] == 2

    def test_clamp_survives_unknown_cpu_count(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert AnalysisEngine(workers=8).workers == 1

    def test_opt_out_takes_requested_count_literally(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        engine = AnalysisEngine(workers=4, adaptive_workers=False)
        assert engine.workers == 4

    def test_requests_within_budget_unclamped(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 16)
        assert AnalysisEngine(workers=4).workers == 4


class TestEngineSharding:
    def test_two_workers_bit_identical_to_inline(self):
        jobs = _small_jobs()
        inline = AnalysisEngine(workers=1).run(jobs)
        # adaptive_workers=False keeps a real process pool on 1-core machines.
        sharded = AnalysisEngine(workers=2, adaptive_workers=False).run(jobs)
        assert sharded.ok
        assert [r.error_bound for r in sharded.results] == [
            r.error_bound for r in inline.results
        ]
        assert [r.fingerprint for r in sharded.results] == [
            job.fingerprint() for job in jobs
        ]

    def test_budget_timeout_does_not_kill_the_sweep(self):
        budgeted_config = AnalysisConfig(
            mps_width=16,
            sdp=SDPConfig(max_iterations=2000, tolerance=1e-7),
            guard=ResourceGuard(max_seconds=0.02),
        )
        jobs = [
            _job(random_circuit(5, 60, seed=3), config=budgeted_config, name="exploding"),
            *_small_jobs(),
        ]
        report = AnalysisEngine(workers=2, adaptive_workers=False).run(jobs)
        statuses = {result.name: result.status for result in report.results}
        assert statuses["exploding"] == "timeout"
        assert all(
            status == "ok" for name, status in statuses.items() if name != "exploding"
        )
        assert report.failures()[0].error_bound is None


class TestEngineStoreIntegration:
    def test_results_recorded_and_resumed(self, tmp_path):
        store_path = str(tmp_path / "results.jsonl")
        jobs = _small_jobs()
        first = AnalysisEngine(workers=1, store=store_path).run(jobs)
        assert first.executed == 3

        resumed = AnalysisEngine(workers=1, store=store_path).run(jobs, resume=True)
        assert resumed.executed == 0
        assert resumed.resumed == 3
        assert [r.error_bound for r in resumed.results] == [
            r.error_bound for r in first.results
        ]

    def test_resume_after_kill_runs_only_missing_jobs(self, tmp_path):
        """A sweep killed mid-run re-executes exactly the jobs it lost."""
        store_path = str(tmp_path / "results.jsonl")
        jobs = _small_jobs()
        # Simulate the kill: only the first job's result ever reached the store.
        AnalysisEngine(workers=1, store=store_path).run(jobs[:1])
        with open(store_path, "a", encoding="utf-8") as handle:
            handle.write('{"fingerprint": "truncat')  # line cut by the kill

        engine = AnalysisEngine(workers=1, store=store_path)
        report = engine.run(jobs, resume=True)
        assert report.resumed == 1
        assert report.executed == 2
        assert report.ok
        # The store now answers the whole sweep.
        final = AnalysisEngine(workers=1, store=store_path).run(jobs, resume=True)
        assert final.executed == 0 and final.resumed == 3

    def test_resume_retries_failures(self, tmp_path):
        store_path = str(tmp_path / "results.jsonl")
        job = _small_jobs()[0]
        impossible = AnalysisJob(
            program=job.program,
            noise_model=job.noise_model,
            config=job.config.replace(guard=ResourceGuard(max_seconds=1e-9)),
            num_qubits=job.num_qubits,
            name=job.name,
        )
        first = AnalysisEngine(workers=1, store=store_path).run([impossible])
        assert not first.ok
        # Same fingerprint (budgets are execution knobs), so a healthy re-run
        # under resume re-executes and replaces the failure record.
        second = AnalysisEngine(workers=1, store=store_path).run([job], resume=True)
        assert second.executed == 1 and second.ok
        assert ResultStore(store_path).completed(job.fingerprint())

    def test_without_resume_flag_store_still_records(self, tmp_path):
        store_path = str(tmp_path / "results.jsonl")
        jobs = _small_jobs()[:2]
        AnalysisEngine(workers=1, store=store_path).run(jobs)
        report = AnalysisEngine(workers=1, store=store_path).run(jobs)  # no resume
        assert report.executed == 2  # recomputed, not answered from the store


class TestSharedBoundCache:
    def test_cache_dir_warms_second_run_without_changing_bounds(self, tmp_path):
        cache_dir = str(tmp_path / "bounds")
        jobs = [_job(random_circuit(3, 20, seed=9), name="warmable")]
        cold = AnalysisEngine(workers=1, cache_dir=cache_dir).run(jobs)
        warm = AnalysisEngine(workers=1, cache_dir=cache_dir).run(jobs)
        assert cold.ok and warm.ok
        assert warm.results[0].error_bound == cold.results[0].error_bound
        assert warm.results[0].sdp_solves == 0  # every bound answered from disk
        assert cold.results[0].sdp_solves > 0

    def test_engine_does_not_mutate_job_config(self, tmp_path):
        job = _small_jobs()[0]
        AnalysisEngine(workers=1, cache_dir=str(tmp_path / "bounds")).run([job])
        assert job.config.sdp.persistent_cache_path is None
        assert job.config.collect_derivation is True


class TestWallClockBudget:
    def test_budget_restores_preexisting_itimer(self):
        """An outer ITIMER_REAL must survive a nested wall-clock budget."""
        import signal

        from repro.engine.pool import _wall_clock_budget

        outer_fired = []

        def outer_handler(signum, frame):
            outer_fired.append(signum)

        previous_handler = signal.signal(signal.SIGALRM, outer_handler)
        try:
            signal.setitimer(signal.ITIMER_REAL, 60.0)
            with _wall_clock_budget(5.0):
                pass
            remaining, interval = signal.getitimer(signal.ITIMER_REAL)
            # The outer timer is still armed, with (roughly) its time left,
            # and the outer handler is back in place.
            assert 0.0 < remaining <= 60.0
            assert interval == 0.0
            assert signal.getsignal(signal.SIGALRM) is outer_handler
            assert not outer_fired
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous_handler)

    def test_budget_disarms_when_no_outer_timer(self):
        import signal

        from repro.engine.pool import _wall_clock_budget

        with _wall_clock_budget(5.0):
            pass
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)

    def test_shorter_outer_deadline_forwards_to_outer_handler(self):
        """A one-shot outer deadline inside the inner budget keeps priority."""
        import signal
        import time

        from repro.engine.pool import _wall_clock_budget

        outer_fired = []

        def outer_handler(signum, frame):
            outer_fired.append(time.monotonic())

        previous_handler = signal.signal(signal.SIGALRM, outer_handler)
        try:
            signal.setitimer(signal.ITIMER_REAL, 0.1)
            start = time.monotonic()
            with _wall_clock_budget(60.0):
                while not outer_fired and time.monotonic() - start < 5.0:
                    time.sleep(0.01)
            # The outer handler fired at its own deadline (no inner
            # ResourceLimitExceeded), and the consumed one-shot timer is not
            # re-armed on exit.
            assert outer_fired and outer_fired[0] - start < 2.0
            assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous_handler)

    def test_periodic_timer_not_clamped_and_restored(self):
        """A periodic ITIMER_REAL (profiler tick) must not clamp the budget."""
        import signal

        from repro.engine.pool import _wall_clock_budget

        ticks = []
        previous_handler = signal.signal(
            signal.SIGALRM, lambda signum, frame: ticks.append(signum)
        )
        try:
            signal.setitimer(signal.ITIMER_REAL, 0.05, 0.05)
            with _wall_clock_budget(60.0):
                remaining, interval = signal.getitimer(signal.ITIMER_REAL)
                # The inner budget is armed, not the 50ms tick.
                assert remaining > 1.0
                assert interval == 0.0
            remaining, interval = signal.getitimer(signal.ITIMER_REAL)
            assert interval == 0.05  # periodic timer resumed on exit
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous_handler)


class TestWarmStartSharding:
    """Per-worker warm-start ordering: pending jobs grouped by program family."""

    def test_families_are_contiguous_and_counted(self):
        from repro.engine.pool import job_family

        ghz = [
            _job(Circuit(2, name="a").h(0).cx(0, 1)),
            _job(Circuit(3, name="b").h(0).cx(0, 1).cx(1, 2)),
        ]
        rx_only = [
            _job(Circuit(2, name="c").rx(0.3, 0).rx(0.3, 1)),
            _job(Circuit(2, name="d").rx(0.3, 0)),
        ]
        assert job_family(ghz[0]) == job_family(ghz[1])
        assert job_family(ghz[0]) != job_family(rx_only[0])

        engine = AnalysisEngine(workers=1)
        # Interleave the families on submission.
        jobs = [ghz[0], rx_only[0], ghz[1], rx_only[1]]
        ordered = engine._shard_pending([(job.fingerprint(), job) for job in jobs])
        families = [job_family(job) for _fp, job in ordered]
        # Grouped: every family occupies one contiguous run.
        seen, runs = set(), 0
        for family in families:
            if family not in seen:
                seen.add(family)
                runs += 1
        assert runs == 2

        stats = engine.stats()
        assert stats["last_batch_shards"] == {
            "pending_jobs": 4,
            "families": 2,
            "largest_family": 2,
        }

    def test_family_depends_on_width_and_noise(self):
        circuit = Circuit(2, name="w").h(0).cx(0, 1)
        from repro.engine.pool import job_family

        narrow = _job(circuit, config=FAST.replace(mps_width=2))
        wide = _job(circuit, config=FAST.replace(mps_width=8))
        assert job_family(narrow) != job_family(wide)

    def test_sharded_order_keeps_results_aligned_and_identical(self):
        jobs = _small_jobs()
        interleaved = [jobs[2], jobs[0], jobs[1]]
        direct = [execute_job(job) for job in interleaved]
        report = AnalysisEngine(workers=1).run(interleaved)
        assert [r.fingerprint for r in report.results] == [
            r.fingerprint for r in direct
        ]
        assert [r.error_bound for r in report.results] == [
            r.error_bound for r in direct
        ]
