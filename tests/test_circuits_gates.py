"""Unit tests for the gate library."""

import numpy as np
import pytest

from repro.circuits import gate_by_name, available_gates
from repro.circuits import gates as gate_lib
from repro.errors import GateError
from repro.linalg import CNOT, HADAMARD, is_unitary


class TestGateConstruction:
    def test_standard_gates_are_unitary(self):
        for name in ("x", "y", "z", "h", "s", "sdg", "t", "tdg", "cx", "cz", "swap", "iswap"):
            gate = gate_by_name(name)
            assert is_unitary(gate.matrix)
            assert gate.dim == 2**gate.num_qubits

    def test_parametric_gates(self):
        gate = gate_by_name("rz", 0.5)
        assert gate.params == (0.5,)
        assert is_unitary(gate.matrix)

    def test_unknown_gate(self):
        with pytest.raises(GateError):
            gate_by_name("foo")

    def test_fixed_gate_rejects_params(self):
        with pytest.raises(GateError):
            gate_by_name("h", 0.3)

    def test_custom_gate(self):
        gate = gate_lib.custom_gate("mycx", CNOT)
        assert gate.num_qubits == 2
        assert gate.name == "mycx"

    def test_custom_gate_rejects_bad_dim(self):
        with pytest.raises(GateError):
            gate_lib.custom_gate("bad", np.eye(3))

    def test_non_unitary_rejected(self):
        with pytest.raises(GateError):
            gate_lib.custom_gate("bad", np.array([[1, 0], [0, 2]]))

    def test_available_gates_contains_core_set(self):
        names = available_gates()
        for required in ("h", "cx", "rz", "rzz", "swap"):
            assert required in names


class TestGateBehaviour:
    def test_equality_ignores_matrix_identity(self):
        assert gate_lib.h() == gate_lib.h()
        assert gate_lib.rz(0.5) == gate_lib.rz(0.5)
        assert gate_lib.rz(0.5) != gate_lib.rz(0.6)

    def test_key_is_hashable(self):
        key = gate_lib.rz(0.123456789).key()
        assert isinstance(hash(key), int)

    def test_dagger(self):
        dagger = gate_lib.s().dagger()
        assert np.allclose(dagger.matrix @ gate_lib.s().matrix, np.eye(2))
        assert dagger.name.endswith("_dg")
        assert gate_lib.rz(0.3).dagger().params == (-0.3,)

    def test_label(self):
        assert gate_lib.h().label() == "h"
        assert gate_lib.rz(0.5).label() == "rz(0.5)"

    def test_matrices_match_linalg(self):
        assert np.allclose(gate_lib.h().matrix, HADAMARD)
        assert np.allclose(gate_lib.cx().matrix, CNOT)

    def test_rzz_matches_cx_rz_cx(self):
        theta = 0.7
        rzz = gate_lib.rzz(theta).matrix
        cx = gate_lib.cx().matrix
        rz_on_target = np.kron(np.eye(2), gate_lib.rz(theta).matrix)
        assert np.allclose(rzz, cx @ rz_on_target @ cx)
