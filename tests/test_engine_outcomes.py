"""Tests for the whole-outcome cache: store semantics, corruption paths,
engine/session/service wiring, and on-demand certificate re-verification."""

import json

import pytest

from helpers import random_circuit

from repro.api import AnalysisSession
from repro.circuits import Circuit
from repro.config import AnalysisConfig, SDPConfig
from repro.engine.outcomes import OutcomeCertificate, OutcomeStore
from repro.engine.pool import AnalysisEngine, execute_job_record
from repro.engine.service import AnalysisService
from repro.engine.spec import AnalysisJob, JobResult
from repro.noise import NoiseModel

FAST = AnalysisConfig(mps_width=4, sdp=SDPConfig(max_iterations=200, tolerance=1e-4))
MODEL = NoiseModel.uniform_bit_flip(1e-3)


def _job(circuit: Circuit, name: str | None = None) -> AnalysisJob:
    return AnalysisJob.from_circuit(circuit, MODEL, config=FAST, name=name)


def _small_jobs() -> list[AnalysisJob]:
    return [
        _job(Circuit(2, name="ghz2").h(0).cx(0, 1)),
        _job(Circuit(3, name="ghz3").h(0).cx(0, 1).cx(1, 2)),
        _job(random_circuit(3, 12, seed=5), name="random3x12"),
    ]


def _executed(job: AnalysisJob):
    result, certificates = execute_job_record(job, collect_certificates=True)
    assert result.ok and certificates
    return result, certificates


class TestStoreBasics:
    def test_roundtrip_and_reload(self, tmp_path):
        path = str(tmp_path / "outcomes.jsonl")
        job = _small_jobs()[0]
        result, certificates = _executed(job)

        store = OutcomeStore(path)
        assert store.get(result.fingerprint) is None  # miss
        store.put(result, certificates)
        assert store.get(result.fingerprint) == result

        # A fresh process (new store over the same file) answers identically.
        reloaded = OutcomeStore(path)
        assert reloaded.get(result.fingerprint) == result
        assert len(reloaded.certificates(result.fingerprint)) == len(certificates)

    def test_failed_results_never_stored(self, tmp_path):
        store = OutcomeStore(str(tmp_path / "outcomes.jsonl"))
        store.put(JobResult(fingerprint="f" * 8, name="boom", status="timeout"))
        assert len(store) == 0

    def test_verify_on_demand_passes_for_genuine_records(self, tmp_path):
        path = str(tmp_path / "outcomes.jsonl")
        job = _small_jobs()[0]
        result, certificates = _executed(job)
        store = OutcomeStore(path)
        store.put(result, certificates)
        assert store.get(result.fingerprint, verify=True) == result
        assert store.stats()["verification_failures"] == 0


class TestCorruptionPaths:
    def test_truncated_trailing_line_healed_on_load(self, tmp_path):
        path = str(tmp_path / "outcomes.jsonl")
        jobs = _small_jobs()[:2]
        store = OutcomeStore(path)
        results = []
        for job in jobs:
            result, certificates = _executed(job)
            store.put(result, certificates)
            results.append(result)
        # Simulate a kill mid-append: a cut-off record without a newline.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"version": 1, "kind": "analysis_outc')

        healed = OutcomeStore(path)
        assert healed.skipped_lines == 1
        assert healed.get(results[0].fingerprint) == results[0]
        # The next append heals the file: a fresh load sees every record.
        extra, extra_certs = _executed(_small_jobs()[2])
        healed.put(extra, extra_certs)
        final = OutcomeStore(path)
        for result in [*results, extra]:
            assert final.get(result.fingerprint) == result

    def test_tampered_certificate_rejected_by_verify(self, tmp_path):
        path = str(tmp_path / "outcomes.jsonl")
        job = _small_jobs()[0]
        result, certificates = _executed(job)
        OutcomeStore(path).put(result, certificates)

        # Tamper on disk: claim a smaller certified value than the dual
        # certificate actually establishes.
        with open(path, "r", encoding="utf-8") as handle:
            record = json.loads(handle.readline())
        for certificate in record["certificates"]:
            certificate["value"] = certificate["value"] * 1e-3
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")

        store = OutcomeStore(path)
        # Blind lookups still answer (the record parses) ...
        assert store.get(result.fingerprint) is not None
        # ... but verify=True re-checks the certificates, drops the record,
        # and reports a miss, so the caller recomputes.
        assert store.get(result.fingerprint, verify=True) is None
        stats = store.stats()
        assert stats["verification_failures"] == 1
        assert store.get(result.fingerprint) is None  # entry is gone

    def test_garbage_certificate_payload_fails_verification(self, tmp_path):
        path = str(tmp_path / "outcomes.jsonl")
        job = _small_jobs()[0]
        result, _certificates = _executed(job)
        store = OutcomeStore(path)
        store.put(result, [{"not": "a certificate"}])
        assert store.get(result.fingerprint, verify=True) is None
        assert store.stats()["verification_failures"] == 1


class TestEvictionAndPinning:
    def test_lru_eviction_over_cap(self, tmp_path):
        path = str(tmp_path / "outcomes.jsonl")
        store = OutcomeStore(path, max_entries=2)
        results = []
        for job in _small_jobs():
            result, certificates = _executed(job)
            store.put(result, certificates)
            results.append(result)
        assert len(store) == 2
        assert store.stats()["evictions"] == 1
        assert store.get(results[0].fingerprint) is None  # LRU victim
        assert store.get(results[2].fingerprint) is not None

    def test_hits_refresh_recency(self, tmp_path):
        store = OutcomeStore(str(tmp_path / "outcomes.jsonl"), max_entries=2)
        jobs = _small_jobs()
        first, first_certs = _executed(jobs[0])
        second, second_certs = _executed(jobs[1])
        store.put(first, first_certs)
        store.put(second, second_certs)
        store.get(first.fingerprint)  # touch: first is now most recent
        third, third_certs = _executed(jobs[2])
        store.put(third, third_certs)
        assert store.get(first.fingerprint) is not None
        assert store.get(second.fingerprint) is None  # evicted instead

    def test_eviction_never_drops_a_pinned_entry(self, tmp_path):
        store = OutcomeStore(str(tmp_path / "outcomes.jsonl"), max_entries=1)
        jobs = _small_jobs()
        first, first_certs = _executed(jobs[0])
        store.put(first, first_certs)
        with store.pinned([first.fingerprint]):
            # Inserts from a concurrent batch exceed the cap, but the pinned
            # entry survives (the store transiently overshoots instead).
            for job in jobs[1:]:
                result, certificates = _executed(job)
                store.put(result, certificates)
            assert store.get(first.fingerprint) is not None
        # Pins released: the deferred eviction brings the store back to cap.
        assert len(store) == 1

    def test_compaction_preserves_live_entries(self, tmp_path):
        path = str(tmp_path / "outcomes.jsonl")
        store = OutcomeStore(path, max_entries=1)
        results = []
        # Enough churn to trigger the dead-lines > live+64 compaction rule.
        for index in range(70):
            job = _job(Circuit(2, name=f"c{index}").h(0).rx(0.01 * (index + 1), 1))
            result, certificates = execute_job_record(job, collect_certificates=True)
            store.put(result, certificates)
            results.append(result)
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line.strip()]
        assert len(lines) < 70  # the log was rewritten
        assert store.get(results[-1].fingerprint) == results[-1]
        assert OutcomeStore(path).get(results[-1].fingerprint) == results[-1]


class TestEngineIntegration:
    def test_warm_hit_skips_execution_and_is_bit_identical(self, tmp_path):
        path = str(tmp_path / "outcomes.jsonl")
        jobs = _small_jobs()
        cold = AnalysisEngine(workers=1, outcomes=path).run(jobs)
        assert cold.ok and cold.executed == 3 and cold.outcome_hits == 0

        warm_engine = AnalysisEngine(workers=1, outcomes=path)
        warm = warm_engine.run(jobs)
        assert warm.executed == 0
        assert warm.outcome_hits == 3
        assert [r.error_bound for r in warm.results] == [
            r.error_bound for r in cold.results
        ]
        assert warm.results == cold.results  # whole records, bit-identical
        stats = warm_engine.stats()["outcomes"]
        assert stats["hits"] == 3 and stats["entries"] == 3

    def test_stored_certificates_reverifiable_after_engine_run(self, tmp_path):
        path = str(tmp_path / "outcomes.jsonl")
        jobs = _small_jobs()
        AnalysisEngine(workers=1, outcomes=path).run(jobs)
        store = OutcomeStore(path)
        for job in jobs:
            fingerprint = job.fingerprint()
            assert store.get(fingerprint, verify=True) is not None
            assert store.certificates(fingerprint)
        assert store.stats()["verification_failures"] == 0

    def test_pool_workers_collect_certificates(self, tmp_path):
        path = str(tmp_path / "outcomes.jsonl")
        jobs = _small_jobs()
        report = AnalysisEngine(
            workers=2, outcomes=path, adaptive_workers=False
        ).run(jobs)
        assert report.ok
        store = OutcomeStore(path)
        for job in jobs:
            assert store.get(job.fingerprint(), verify=True) is not None

    def test_outcome_certificate_wire_roundtrip(self):
        _result, certificates = _executed(_small_jobs()[0])
        for certificate in certificates:
            clone = OutcomeCertificate.from_json_dict(certificate.to_json_dict())
            assert clone.verify()
            assert clone.value == certificate.value


class TestSessionAndServiceIntegration:
    def test_session_analyze_batch_answers_warm_from_store(self, tmp_path):
        path = str(tmp_path / "outcomes.jsonl")
        circuit = Circuit(2, name="ghz2").h(0).cx(0, 1)
        with AnalysisSession(config=FAST, outcomes=path) as session:
            cold = session.analyze(circuit, MODEL)
        with AnalysisSession(config=FAST, outcomes=path) as session:
            warm = session.analyze(circuit, MODEL)
            # Nothing was pending: the whole batch answered from the store.
            assert session.engine.stats()["last_batch_shards"]["pending_jobs"] == 0
        assert warm == cold

    def test_service_warm_hit_answers_without_the_pool(self, tmp_path):
        path = str(tmp_path / "outcomes.jsonl")
        job = _small_jobs()[0]
        AnalysisEngine(workers=1, outcomes=path).run([job])

        engine = AnalysisEngine(workers=1, outcomes=path)
        service = AnalysisService(engine, batch_window=0.01)
        try:
            service.start()
            entry = service.submit_job(job)
            # "done" at submission time: no queue, no batcher, no pool.
            assert entry["status"] == "done"
            assert entry["result"]["error_bound"] is not None
            assert service.batches_run == 0
        finally:
            service.stop()

    def test_capabilities_expose_outcome_counters(self, tmp_path):
        path = str(tmp_path / "outcomes.jsonl")
        with AnalysisSession(config=FAST, outcomes=path) as session:
            session.analyze(Circuit(2, name="ghz2").h(0).cx(0, 1), MODEL)
            outcomes = session.capabilities()["engine"]["outcomes"]
        assert outcomes is not None
        assert {"hits", "misses", "evictions"} <= set(outcomes)

    def test_remote_session_rejects_outcomes_knob(self):
        with pytest.raises(Exception):
            AnalysisSession(remote="http://127.0.0.1:1", outcomes="o.jsonl")
