"""Unit tests for the denotational density-matrix semantics (Figure 3)."""

import numpy as np
import pytest

from repro.circuits import Circuit, IfMeasure, Skip, gate_op, seq
from repro.circuits import gates as gate_lib
from repro.config import ResourceGuard
from repro.errors import ResourceLimitExceeded
from repro.linalg import ghz_state, is_density_matrix, pure_density, basis_state
from repro.semantics import (
    DensityMatrixSimulator,
    measurement_projectors,
    simulate_density,
    simulate_statevector,
)


class TestGateSemantics:
    def test_skip_keeps_state(self):
        rho = simulate_density(Skip(), num_qubits=1)
        assert np.allclose(rho, pure_density(basis_state("0")))

    def test_matches_statevector_for_pure_circuits(self, ghz3_circuit):
        rho = simulate_density(ghz3_circuit)
        psi = simulate_statevector(ghz3_circuit)
        assert np.allclose(rho, pure_density(psi), atol=1e-10)

    def test_sequence_composition(self):
        program = seq(gate_op(gate_lib.h(), 0), gate_op(gate_lib.cx(), [0, 1]))
        rho = simulate_density(program)
        assert np.allclose(rho, pure_density(ghz_state(2)), atol=1e-10)

    def test_initial_density(self):
        rho0 = pure_density(basis_state("1"))
        rho = simulate_density(Circuit(1).x(0), initial_state=rho0)
        assert np.isclose(rho[0, 0].real, 1.0)


class TestMeasurementSemantics:
    def test_projectors(self):
        m0, m1 = measurement_projectors(0, 2)
        assert np.allclose(m0 + m1, np.eye(4))
        assert np.allclose(m0 @ m0, m0)

    def test_if_measure_mixes_branches(self):
        # H on qubit 0, then flip qubit 1 iff qubit 0 measured 1.
        program = seq(
            gate_op(gate_lib.h(), 0),
            IfMeasure(0, Skip(), gate_op(gate_lib.x(), 1)),
        )
        rho = simulate_density(program, num_qubits=2)
        assert is_density_matrix(rho)
        # Outcomes: |00> and |11> with probability 1/2 each, classically mixed.
        assert np.isclose(rho[0, 0].real, 0.5)
        assert np.isclose(rho[3, 3].real, 0.5)
        assert np.isclose(abs(rho[0, 3]), 0.0, atol=1e-12)

    def test_trace_preserved_through_branches(self):
        program = seq(
            gate_op(gate_lib.h(), 0),
            IfMeasure(0, gate_op(gate_lib.h(), 1), gate_op(gate_lib.x(), 1)),
        )
        rho = simulate_density(program, num_qubits=2)
        assert np.isclose(np.trace(rho).real, 1.0)


class TestGuard:
    def test_dense_guard(self):
        simulator = DensityMatrixSimulator(ResourceGuard(max_dense_qubits=3))
        with pytest.raises(ResourceLimitExceeded):
            simulator.run(Circuit(6).h(5))
