"""Tests for judgments, predicates, and the inference-rule constructors."""

import numpy as np
import pytest

from repro.circuits import Circuit, IfMeasure, Skip, gate_op, seq
from repro.circuits import gates as gate_lib
from repro.core import (
    GlobalPredicate,
    Judgment,
    absorb_continuations,
    gate_rule,
    meas_rule,
    seq_rule,
    skip_rule,
    trivial_local_predicate,
    weaken_rule,
)
from repro.errors import LogicError
from repro.linalg import pure_density, zero_state
from repro.noise import bit_flip
from repro.sdp import gate_error_bound
from repro.config import SDPConfig


CFG = SDPConfig(max_iterations=300, tolerance=1e-5)


class TestJudgmentAndPredicate:
    def test_judgment_validation(self):
        with pytest.raises(LogicError):
            Judgment(delta=-0.1, epsilon=0.0)
        with pytest.raises(LogicError):
            Judgment(delta=0.0, epsilon=-1.0)

    def test_judgment_weaken(self):
        judgment = Judgment(delta=0.2, epsilon=0.1)
        weakened = judgment.weaken(delta=0.1, epsilon=0.2)
        assert weakened.delta == 0.1 and weakened.epsilon == 0.2
        with pytest.raises(LogicError):
            judgment.weaken(delta=0.3)
        with pytest.raises(LogicError):
            judgment.weaken(epsilon=0.05)

    def test_judgment_pretty(self):
        assert "<=" in Judgment(delta=0.0, epsilon=0.5, program_label="P").pretty()

    def test_global_predicate(self):
        predicate = GlobalPredicate("MPS(w=8)", 0.1, 4)
        assert not predicate.is_trivial
        assert predicate.weaken(0.5).delta == 0.5
        with pytest.raises(LogicError):
            predicate.weaken(0.05)
        with pytest.raises(LogicError):
            GlobalPredicate("x", -1.0, 2)

    def test_trivial_local_predicate(self):
        predicate = trivial_local_predicate(2)
        assert predicate.delta == 2.0
        assert np.isclose(np.trace(predicate.rho_local).real, 1.0)


class TestRuleConstructors:
    def _gate_bound(self):
        return gate_error_bound(
            gate_lib.x().matrix, bit_flip(0.1), pure_density(zero_state(1)), 0.0, config=CFG
        )

    def test_skip_rule(self):
        node = skip_rule(0.3)
        assert node.judgment.epsilon == 0.0
        assert node.rule == "skip"

    def test_gate_rule(self):
        bound = self._gate_bound()
        node = gate_rule("x", (0,), 0.0, bound)
        assert node.judgment.epsilon == bound.value
        assert node.qubits == (0,)

    def test_gate_rule_noiseless(self):
        node = gate_rule("h", (1,), 0.1, None)
        assert node.judgment.epsilon == 0.0

    def test_seq_rule_sums(self):
        bound = self._gate_bound()
        children = [gate_rule("x", (0,), 0.0, bound), gate_rule("x", (0,), 0.01, bound)]
        node = seq_rule(children)
        assert np.isclose(node.judgment.epsilon, 2 * bound.value)
        assert node.judgment.delta == 0.0

    def test_seq_rule_rejects_decreasing_delta(self):
        bound = self._gate_bound()
        children = [gate_rule("x", (0,), 0.5, bound), gate_rule("x", (0,), 0.1, bound)]
        with pytest.raises(LogicError):
            seq_rule(children)

    def test_seq_rule_empty_is_skip(self):
        assert seq_rule([]).rule == "skip"

    def test_weaken_rule(self):
        node = gate_rule("x", (0,), 0.2, self._gate_bound())
        weakened = weaken_rule(node, delta=0.1, epsilon=node.judgment.epsilon * 2)
        assert weakened.rule == "weaken"
        assert weakened.children == [node]
        with pytest.raises(LogicError):
            weaken_rule(node, delta=0.5)

    def test_meas_rule(self):
        bound = self._gate_bound()
        branches = [gate_rule("x", (0,), 0.2, bound), skip_rule(0.2)]
        node = meas_rule(1, 0.2, branches)
        expected = (1 - 0.2) * bound.value + 0.2
        assert np.isclose(node.judgment.epsilon, expected)
        assert node.measured_qubit == 1

    def test_meas_rule_caps_delta_at_one(self):
        node = meas_rule(0, 1.7, [skip_rule(1.7)])
        assert np.isclose(node.judgment.epsilon, 1.0)

    def test_meas_rule_requires_branches(self):
        with pytest.raises(LogicError):
            meas_rule(0, 0.1, [])


class TestAbsorbContinuations:
    def test_branch_free_program_unchanged(self):
        program = seq(gate_op(gate_lib.h(), 0), gate_op(gate_lib.cx(), [0, 1]))
        absorbed = absorb_continuations(program)
        assert [op.gate.name for op in absorbed.operations()] == ["h", "cx"]

    def test_continuation_duplicated_into_branches(self):
        program = seq(
            gate_op(gate_lib.h(), 0),
            IfMeasure(0, gate_op(gate_lib.x(), 1), Skip()),
            gate_op(gate_lib.h(), 1),
        )
        absorbed = absorb_continuations(program)
        statements = absorbed.statements()
        assert isinstance(statements[-1], IfMeasure)
        branch = statements[-1]
        assert branch.then_branch.gate_count() == 2  # x then the duplicated h
        assert branch.else_branch.gate_count() == 1  # just the duplicated h

    def test_nested_ifs(self):
        inner = IfMeasure(1, gate_op(gate_lib.z(), 2), Skip())
        program = seq(
            IfMeasure(0, gate_op(gate_lib.x(), 2), Skip()),
            inner,
            gate_op(gate_lib.h(), 2),
        )
        absorbed = absorb_continuations(program)
        first = absorbed.statements()[-1]
        assert isinstance(first, IfMeasure)
        # Both branches of the outer if now contain the inner if with the
        # duplicated trailing Hadamard.
        assert first.then_branch.branch_count() == 2
        assert first.then_branch.gate_count() >= 2

    def test_if_as_last_statement_untouched(self):
        program = seq(gate_op(gate_lib.h(), 0), IfMeasure(0, Skip(), Skip()))
        absorbed = absorb_continuations(program)
        assert isinstance(absorbed.statements()[-1], IfMeasure)

    def test_semantics_preserved(self):
        """Absorbing continuations does not change the denotational semantics."""
        from repro.semantics import simulate_density

        circuit = Circuit(2).h(0)
        circuit.if_measure(0, lambda c: c.x(1), lambda c: c.z(1))
        circuit.h(1)
        program = circuit.to_program()
        absorbed = absorb_continuations(program)
        assert np.allclose(
            simulate_density(program, num_qubits=2),
            simulate_density(absorbed, num_qubits=2),
            atol=1e-10,
        )
