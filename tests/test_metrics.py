"""Unit and property tests for the pluggable channel-metric registry.

The hypothesis blocks check the metric axioms (non-negativity, identity on
equal channels, symmetry) over random single-qubit noise channels, and the
bit-identity contract: routing the diamond norm through the registry must
produce the exact floats of the legacy :func:`repro.sdp.diamond_distance`
call, dual certificate included.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SDPConfig
from repro.errors import MetricError
from repro.metrics import (
    TIER_CERTIFIED,
    TIER_EXACT,
    TIER_HEURISTIC,
    ChannelMetric,
    MetricValue,
    get_metric,
    metric_capabilities,
    register_metric,
    registered_metrics,
)
from repro.noise.channels import (
    amplitude_damping,
    bit_flip,
    depolarizing,
    identity_noise,
    phase_flip,
)
from repro.sdp.certificates import verify_certificate
from repro.sdp.diamond import diamond_distance

FAST_SDP = SDPConfig(max_iterations=400, tolerance=1e-5)

_CONSTRUCTORS = [bit_flip, phase_flip, depolarizing, amplitude_damping]


@st.composite
def noise_channels(draw):
    """A random single-qubit noise channel with a visible error rate."""
    constructor = draw(st.sampled_from(_CONSTRUCTORS))
    p = draw(st.floats(min_value=0.0, max_value=0.3, allow_nan=False))
    return constructor(p)


METRIC_NAMES = ["diamond_norm", "trace_norm", "process_fidelity"]


class TestMetricAxioms:
    @settings(max_examples=15, deadline=None)
    @given(channel_a=noise_channels(), channel_b=noise_channels())
    @pytest.mark.parametrize("name", METRIC_NAMES)
    def test_non_negative(self, name, channel_a, channel_b):
        value = get_metric(name).compute(channel_a, channel_b, config=FAST_SDP)
        assert value.value >= 0.0

    @settings(max_examples=15, deadline=None)
    @given(channel=noise_channels())
    @pytest.mark.parametrize("name", METRIC_NAMES)
    def test_identical_channels_measure_zero(self, name, channel):
        value = get_metric(name).compute(channel, channel, config=FAST_SDP)
        assert value.value == 0.0

    @settings(max_examples=15, deadline=None)
    @given(channel_a=noise_channels(), channel_b=noise_channels())
    @pytest.mark.parametrize("name", METRIC_NAMES)
    def test_symmetric(self, name, channel_a, channel_b):
        metric = get_metric(name)
        forward = metric.compute(channel_a, channel_b, config=FAST_SDP).value
        backward = metric.compute(channel_b, channel_a, config=FAST_SDP).value
        assert math.isclose(forward, backward, rel_tol=1e-4, abs_tol=1e-7)

    def test_arity_mismatch_is_structured(self):
        with pytest.raises(MetricError):
            get_metric("trace_norm").compute(bit_flip(0.1), identity_noise(2))


class TestDiamondNormBitIdentity:
    @settings(max_examples=10, deadline=None)
    @given(channel_a=noise_channels(), channel_b=noise_channels())
    def test_registry_matches_legacy_path(self, channel_a, channel_b):
        """The registry adds dispatch, never arithmetic: exact same floats."""
        via_registry = get_metric("diamond_norm").compute(
            channel_a, channel_b, config=FAST_SDP
        )
        legacy = diamond_distance(channel_a, channel_b, config=FAST_SDP)
        assert via_registry.value == legacy.value
        assert via_registry.tier == TIER_CERTIFIED

    def test_certificate_verifies(self):
        value = get_metric("diamond_norm").compute(
            bit_flip(1e-3), identity_noise(1), config=FAST_SDP
        )
        assert value.bound is not None and value.bound.certificate is not None
        assert verify_certificate(
            value.bound.certificate, value.bound.choi, tolerance=1e-6
        )
        assert get_metric("diamond_norm").certify(value)

    def test_certify_rejects_valueless_bound(self):
        bare = MetricValue(metric="diamond_norm", value=0.0, tier=TIER_CERTIFIED)
        assert not get_metric("diamond_norm").certify(bare)


class TestRegistry:
    def test_lookup_unknown_name_lists_registered(self):
        with pytest.raises(MetricError) as excinfo:
            get_metric("no_such_metric")
        assert "diamond_norm" in str(excinfo.value)

    def test_capabilities_cover_the_builtin_tiers(self):
        capabilities = {entry["name"]: entry for entry in metric_capabilities()}
        assert len(capabilities) >= 3
        assert capabilities["diamond_norm"]["tier"] == TIER_CERTIFIED
        assert capabilities["trace_norm"]["tier"] == TIER_EXACT
        assert capabilities["process_fidelity"]["tier"] == TIER_HEURISTIC
        assert capabilities["bound_drift"]["kind"] == "program"

    def test_registered_metrics_sorted_snapshot(self):
        snapshot = registered_metrics()
        names = list(snapshot)
        assert names == sorted(names)
        assert {"diamond_norm", "trace_norm", "process_fidelity"} <= set(names)
        assert all(isinstance(metric, ChannelMetric) for metric in snapshot.values())

    def test_reregistering_same_class_is_idempotent(self):
        cls = type(get_metric("trace_norm"))
        register_metric(cls)
        assert get_metric("trace_norm") is get_metric("trace_norm")

    def test_name_collision_between_classes_is_rejected(self):
        class Impostor(ChannelMetric):
            name = "diamond_norm"
            tier = TIER_HEURISTIC

            def compute(self, channel_a, channel_b, *, config=None):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(MetricError):
            register_metric(Impostor)

    def test_abstract_or_untier_registration_is_rejected(self):
        class Nameless(ChannelMetric):
            def compute(self, channel_a, channel_b, *, config=None):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(MetricError):
            register_metric(Nameless)

        class BadTier(ChannelMetric):
            name = "bad_tier_metric"
            tier = "vibes"

            def compute(self, channel_a, channel_b, *, config=None):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(MetricError):
            register_metric(BadTier)

    def test_bound_drift_refuses_channel_pairs(self):
        with pytest.raises(MetricError):
            get_metric("bound_drift").compute(bit_flip(0.1), bit_flip(0.2))


class TestMetricValue:
    def test_json_round_trip_excludes_the_bound_object(self):
        value = get_metric("trace_norm").compute(bit_flip(0.1), identity_noise(1))
        payload = value.to_json_dict()
        assert payload["metric"] == "trace_norm"
        assert payload["tier"] == TIER_EXACT
        assert "bound" not in payload

    def test_certified_property_follows_tier(self):
        assert MetricValue(metric="m", value=0.0, tier=TIER_CERTIFIED).certified
        assert not MetricValue(metric="m", value=0.0, tier=TIER_EXACT).certified
