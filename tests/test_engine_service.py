"""Tests for the serving front-end: submission, batching, polling, HTTP."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.circuits import Circuit
from repro.config import AnalysisConfig, SDPConfig
from repro.engine.pool import AnalysisEngine
from repro.engine.service import AnalysisService, make_server
from repro.engine.spec import AnalysisJob
from repro.noise import NoiseModel

FAST = AnalysisConfig(mps_width=4, sdp=SDPConfig(max_iterations=200, tolerance=1e-4))
MODEL = NoiseModel.uniform_bit_flip(1e-3)


def _payload(name: str = "ghz2", *, num_qubits: int = 2) -> dict:
    """A job payload; ``num_qubits`` varies the fingerprint, ``name`` does not."""
    circuit = Circuit(num_qubits, name=name).h(0).cx(0, 1)
    for q in range(2, num_qubits):
        circuit.cx(q - 1, q)
    return AnalysisJob.from_circuit(circuit, MODEL, config=FAST).to_json_dict()


@pytest.fixture
def service(tmp_path):
    engine = AnalysisEngine(workers=1, store=str(tmp_path / "results.jsonl"))
    service = AnalysisService(engine, batch_window=0.02, max_batch=8)
    service.start()
    yield service
    service.stop()


@pytest.fixture
def server(service):
    server = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_address[1]}", service
    server.shutdown()
    server.server_close()


def _post(base: str, path: str, payload) -> tuple[int, dict]:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(base: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(base + path) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestAnalysisService:
    def test_submit_execute_poll(self, service):
        entry = service.submit_payload(_payload())
        assert entry["status"] == "queued"
        final = service.wait(entry["fingerprint"], timeout=60)
        assert final["status"] == "done"
        assert final["result"]["error_bound"] > 0

    def test_duplicate_submissions_coalesce(self, service):
        first = service.submit_payload(_payload())
        second = service.submit_payload(_payload())
        assert first["fingerprint"] == second["fingerprint"]
        service.wait(first["fingerprint"], timeout=60)
        assert service.engine.store is not None
        # One execution: the store holds exactly one record for the pair.
        assert len(service.engine.store.results()) == 1

    def test_completed_store_answers_resubmission(self, service):
        entry = service.submit_payload(_payload())
        service.wait(entry["fingerprint"], timeout=60)
        service._status.clear()  # fresh service view, warm store
        answered = service.submit_payload(_payload())
        assert answered["status"] == "done"
        assert answered["result"]["error_bound"] > 0

    def test_malformed_payload_raises(self, service):
        from repro.errors import EngineError

        with pytest.raises(EngineError):
            service.submit_payload({"kind": "not_a_job"})

    def test_finished_entries_evicted_but_store_still_answers(self, service):
        service.max_tracked = 1
        first = service.submit_payload(_payload("one", num_qubits=2))
        service.wait(first["fingerprint"], timeout=60)
        second = service.submit_payload(_payload("two", num_qubits=3))
        assert second["fingerprint"] != first["fingerprint"]
        service.wait(second["fingerprint"], timeout=60)
        # The cap evicted the older finished entry from memory…
        assert len(service._status) <= 1
        # …but its status is still answerable via the result store.
        entry = service.status(first["fingerprint"])
        assert entry is not None and entry["status"] == "done"
        assert entry["result"]["error_bound"] > 0


class TestHTTPAPI:
    def test_submit_and_poll_over_http(self, server):
        base, service = server
        status, body = _post(base, "/v1/batches", {"jobs": [_payload(), _payload()]})
        assert status == 202
        assert len(body["jobs"]) == 2
        fingerprint = body["jobs"][0]["fingerprint"]
        assert body["jobs"][1]["fingerprint"] == fingerprint

        service.wait(fingerprint, timeout=60)
        status, entry = _get(base, f"/v1/jobs/{fingerprint}")
        assert status == 200
        assert entry["status"] == "done"
        assert entry["result"]["error_bound"] > 0

    def test_healthz(self, server):
        base, _ = server
        status, body = _get(base, "/v1/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert "workers" in body

    def test_error_paths(self, server):
        base, _ = server
        assert _get(base, "/v1/jobs/deadbeef")[0] == 404
        assert _get(base, "/v1/nope")[0] == 404
        assert _post(base, "/v1/batches", {"kind": "not_a_job"})[0] == 400
        assert _post(base, "/v1/batches", {"jobs": []})[0] == 400
        status, _body = _post(base, "/v1/nope", _payload())
        assert status == 404

    def test_retired_unversioned_surface_is_gone(self, server):
        base, _ = server
        assert _post(base, "/jobs", {"jobs": [_payload()]})[0] == 410
        assert _get(base, "/jobs/deadbeef")[0] == 410
        assert _get(base, "/healthz")[0] == 410

    def test_malformed_matrix_payload_returns_400(self, server):
        base, _ = server
        payload = _payload()
        # Ragged embedded matrix: must be a clean 400, not a handler crash.
        payload["program"]["parts"][0]["gate"] = {
            "name": "broken",
            "params": [],
            "matrix": [[[1, 0], [0, 0]], [[0, 0]]],
        }
        status, body = _post(base, "/v1/batches", {"jobs": [payload]})
        assert status == 400
        assert "error" in body

    def test_rejected_batch_executes_nothing(self, server):
        base, service = server
        status, _body = _post(
            base, "/v1/batches", {"jobs": [_payload("victim"), {"kind": "not_a_job"}]}
        )
        assert status == 400
        # All-or-nothing: the valid leading job must not have been enqueued.
        assert service.stats()["jobs"] == {}
        assert service.stats()["queue_depth"] == 0
