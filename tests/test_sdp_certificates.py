"""Tests for dual-certificate repair and verification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CertificationError
from repro.linalg import min_eigenvalue, pure_density, plus_state, random_hermitian
from repro.noise import bit_flip
from repro.linalg import identity_channel
from repro.sdp import (
    DualCertificate,
    certified_value,
    repair_dual_candidate,
    verify_certificate,
)


def _bit_flip_choi(p=0.1):
    return bit_flip(p).choi() - identity_channel(1).choi()


class TestRepair:
    def test_repair_produces_feasible_point(self):
        choi = _bit_flip_choi()
        candidate = random_hermitian(4, rng=np.random.default_rng(0))
        repaired = repair_dual_candidate(candidate, choi)
        assert min_eigenvalue(repaired) >= -1e-10
        assert min_eigenvalue(repaired - choi) >= -1e-10

    def test_repair_keeps_feasible_points(self):
        choi = _bit_flip_choi()
        from repro.linalg import positive_part

        feasible = positive_part(choi)
        repaired = repair_dual_candidate(feasible, choi)
        assert np.allclose(repaired, feasible, atol=1e-9)

    def test_shape_mismatch(self):
        with pytest.raises(CertificationError):
            repair_dual_candidate(np.eye(2), np.eye(4))


class TestCertifiedValue:
    def test_unconstrained_value_is_lambda_max(self):
        choi = _bit_flip_choi(0.2)
        from repro.linalg import positive_part

        certificate = certified_value(positive_part(choi), choi)
        assert np.isclose(certificate.value, 0.2, atol=1e-9)
        assert certificate.y == 0.0

    def test_constraint_can_only_help(self):
        choi = _bit_flip_choi(0.2)
        from repro.linalg import positive_part

        z = positive_part(choi)
        unconstrained = certified_value(z, choi).value
        constrained = certified_value(
            z,
            choi,
            constraint_operator=pure_density(plus_state(1)),
            constraint_bound=1.0,
        ).value
        assert constrained <= unconstrained + 1e-12

    def test_vacuous_constraint_ignored(self):
        choi = _bit_flip_choi(0.2)
        from repro.linalg import positive_part

        z = positive_part(choi)
        cert = certified_value(
            z, choi, constraint_operator=pure_density(plus_state(1)), constraint_bound=0.0
        )
        assert cert.y == 0.0


class TestVerification:
    def test_valid_certificate_verifies(self):
        choi = _bit_flip_choi()
        repaired = repair_dual_candidate(np.zeros((4, 4)), choi)
        certificate = certified_value(repaired, choi)
        assert verify_certificate(certificate, choi)

    def test_infeasible_certificate_rejected(self):
        choi = _bit_flip_choi()
        bogus = DualCertificate(value=0.0, z=-np.eye(4), y=0.0, constraint_operator=None, constraint_bound=0.0)
        assert not verify_certificate(bogus, choi)

    def test_understated_value_rejected(self):
        choi = _bit_flip_choi(0.3)
        repaired = repair_dual_candidate(np.zeros((4, 4)), choi)
        honest = certified_value(repaired, choi)
        lying = DualCertificate(
            value=honest.value / 10,
            z=honest.z,
            y=honest.y,
            constraint_operator=None,
            constraint_bound=0.0,
        )
        assert not verify_certificate(lying, choi)

    def test_negative_y_rejected(self):
        choi = _bit_flip_choi()
        repaired = repair_dual_candidate(np.zeros((4, 4)), choi)
        certificate = DualCertificate(
            value=1.0, z=repaired, y=-1.0, constraint_operator=None, constraint_bound=0.0
        )
        assert not verify_certificate(certificate, choi)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2000), dim=st.sampled_from([2, 4]))
def test_repair_always_feasible(seed, dim):
    rng = np.random.default_rng(seed)
    candidate = random_hermitian(dim * dim, rng=rng)
    choi = random_hermitian(dim * dim, rng=rng)
    repaired = repair_dual_candidate(candidate, choi)
    scale = max(1.0, np.abs(choi).max())
    assert min_eigenvalue(repaired) >= -1e-9 * scale
    assert min_eigenvalue(repaired - choi) >= -1e-9 * scale


class TestSharedBracket:
    """certified_values_batch(share_bracket=True): the pilot-bracket search."""

    @staticmethod
    def _request_stack(count, candidates, seed=0):
        rng = np.random.default_rng(seed)
        from repro.linalg import random_density_matrix
        from repro.sdp import repair_dual_candidates_batch

        chois = np.stack(
            [random_hermitian(4, rng=rng) * 0.1 for _ in range(count)]
        )
        raw = np.stack(
            [
                [random_hermitian(4, rng=rng) * 0.1 for _ in range(candidates)]
                for _ in range(count)
            ]
        )
        zs = repair_dual_candidates_batch(raw, chois[:, None])
        operators = np.stack(
            [random_density_matrix(1, rng=rng) for _ in range(count)]
        )[:, None]
        # Feasible bounds (c < λ_max(Q)), as every real (ρ̂, δ) instance
        # produces: an infeasible primal makes the dual unbounded below and
        # the search meaningless.
        top = np.linalg.eigvalsh(operators[:, 0]).max(axis=-1)
        bounds = (top * rng.uniform(0.2, 0.8, size=count))[:, None]
        return zs, operators, bounds

    def test_minima_match_independent_search(self):
        """The per-request best bound matches the 80-iteration-per-candidate
        search to high relative accuracy — the pilot phase must not silently
        loosen the reported (min-over-candidates) bound."""
        from repro.sdp.certificates import certified_values_batch

        zs, operators, bounds = self._request_stack(12, 4, seed=5)
        shared, _ = certified_values_batch(
            zs,
            constraint_operators=operators,
            constraint_bounds=bounds,
            share_bracket=True,
        )
        independent, _ = certified_values_batch(
            zs, constraint_operators=operators, constraint_bounds=bounds
        )
        best_shared = shared.min(axis=1)
        best_independent = independent.min(axis=1)
        assert np.all(
            best_shared <= best_independent * (1 + 1e-6) + 1e-12
        ), (best_shared, best_independent)
        np.testing.assert_allclose(best_shared, best_independent, rtol=1e-6)

    def test_every_returned_point_is_sound(self):
        """Every (value, y) is an actually evaluated point of its candidate."""
        from repro.sdp.certificates import _dual_objective, certified_values_batch

        zs, operators, bounds = self._request_stack(6, 3, seed=9)
        values, ys = certified_values_batch(
            zs,
            constraint_operators=operators,
            constraint_bounds=bounds,
            share_bracket=True,
        )
        for request in range(zs.shape[0]):
            for candidate in range(zs.shape[1]):
                recomputed = _dual_objective(
                    zs[request, candidate],
                    float(ys[request, candidate]),
                    operators[request, 0],
                    float(bounds[request, 0]),
                )
                assert recomputed <= values[request, candidate] + 1e-9

    def test_composition_independence(self):
        """A request certifies identically alone or inside a larger batch."""
        from repro.sdp.certificates import certified_values_batch

        zs, operators, bounds = self._request_stack(5, 4, seed=2)
        full_values, full_ys = certified_values_batch(
            zs,
            constraint_operators=operators,
            constraint_bounds=bounds,
            share_bracket=True,
        )
        alone_values, alone_ys = certified_values_batch(
            zs[2:3],
            constraint_operators=operators[2:3],
            constraint_bounds=bounds[2:3],
            share_bracket=True,
        )
        assert np.array_equal(full_values[2], alone_values[0])
        assert np.array_equal(full_ys[2], alone_ys[0])

    def test_share_bracket_requires_candidate_axis(self):
        from repro.sdp.certificates import certified_values_batch

        z = repair_dual_candidate(np.zeros((4, 4)), _bit_flip_choi())
        with pytest.raises(CertificationError):
            certified_values_batch(
                z[None],
                constraint_operators=np.eye(2)[None] / 2,
                constraint_bounds=np.array([0.5]),
                share_bracket=True,
            )
