"""Tests for the JSONL result store: persistence, resume filtering, robustness."""

from repro.engine.spec import JobResult
from repro.engine.store import ResultStore


def _result(fp: str, status: str = "ok", bound: float = 0.1) -> JobResult:
    return JobResult(fingerprint=fp, name=f"job-{fp}", status=status, error_bound=bound)


class TestResultStore:
    def test_put_get_across_instances(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(str(path))
        store.put(_result("aa", bound=0.5))
        store.put(_result("bb", status="error", bound=None))

        reloaded = ResultStore(str(path))
        assert len(reloaded) == 2
        assert reloaded.get("aa").error_bound == 0.5
        assert reloaded.completed("aa")
        assert not reloaded.completed("bb")  # errors re-run under resume
        assert not reloaded.completed("cc")

    def test_later_lines_win(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(str(path))
        store.put(_result("aa", status="timeout", bound=None))
        store.put(_result("aa", status="ok", bound=0.25))
        reloaded = ResultStore(str(path))
        assert reloaded.completed("aa")
        assert reloaded.get("aa").error_bound == 0.25

    def test_missing_filter(self, tmp_path):
        store = ResultStore(str(tmp_path / "results.jsonl"))
        store.put(_result("aa"))
        store.put(_result("bb", status="timeout"))
        assert store.missing(["aa", "bb", "cc"]) == ["bb", "cc"]

    def test_truncated_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(str(path))
        store.put(_result("aa"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"fingerprint": "bb", "name": "half')  # killed mid-append
        reloaded = ResultStore(str(path))
        assert len(reloaded) == 1
        assert reloaded.skipped_lines == 1
        # The store stays appendable after the bad line.
        reloaded.put(_result("cc"))
        assert ResultStore(str(path)).completed("cc")

    def test_nested_directory_created(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "results.jsonl"
        ResultStore(str(path)).put(_result("aa"))
        assert path.exists()


class TestResultStoreConcurrency:
    def test_put_and_completed_hammered_from_two_threads(self, tmp_path):
        """Reads must hold the lock while the service batcher thread writes.

        Regression test for the unlocked read paths: one thread appends
        results while another hammers the read API; without locking this
        races a mutating dict and can raise or return torn state.
        """
        import threading

        store = ResultStore(str(tmp_path / "results.jsonl"))
        total = 200
        errors = []
        done = threading.Event()

        def writer():
            try:
                for index in range(total):
                    store.put(_result(f"fp{index:04d}"))
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)
            finally:
                done.set()

        def reader():
            try:
                while not done.is_set():
                    store.completed("fp0000")
                    store.get("fp0199")
                    "fp0100" in store
                    len(store)
                    store.missing(["fp0000", "missing"])
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [threading.Thread(target=writer), threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(store) == total
        assert store.completed("fp0000") and store.completed(f"fp{total - 1:04d}")

    def test_put_many_single_append(self, tmp_path, monkeypatch):
        """put_many writes one payload with one fsync, and stays loadable."""
        import os as os_module

        import repro.engine.backends.jsonl as jsonl_module

        path = tmp_path / "results.jsonl"
        store = ResultStore(str(path))
        fsyncs = []
        real_fsync = os_module.fsync
        monkeypatch.setattr(
            jsonl_module.os, "fsync", lambda fd: (fsyncs.append(fd), real_fsync(fd))
        )
        store.put_many([_result(f"fp{i}") for i in range(25)])
        assert len(fsyncs) == 1
        reloaded = ResultStore(str(path))
        assert len(reloaded) == 25
        assert all(reloaded.completed(f"fp{i}") for i in range(25))

    def test_put_many_heals_truncated_tail_first(self, tmp_path):
        path = tmp_path / "results.jsonl"
        ResultStore(str(path)).put(_result("aa"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"fingerprint": "bb", "name": "half')  # killed mid-append
        store = ResultStore(str(path))
        store.put_many([_result("cc"), _result("dd")])
        reloaded = ResultStore(str(path))
        assert reloaded.completed("cc") and reloaded.completed("dd")
        assert reloaded.skipped_lines == 1

    def test_put_many_empty_is_noop(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(str(path))
        store.put_many([])
        assert not path.exists() or path.read_text() == ""
