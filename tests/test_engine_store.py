"""Tests for the JSONL result store: persistence, resume filtering, robustness."""

from repro.engine.spec import JobResult
from repro.engine.store import ResultStore


def _result(fp: str, status: str = "ok", bound: float = 0.1) -> JobResult:
    return JobResult(fingerprint=fp, name=f"job-{fp}", status=status, error_bound=bound)


class TestResultStore:
    def test_put_get_across_instances(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(str(path))
        store.put(_result("aa", bound=0.5))
        store.put(_result("bb", status="error", bound=None))

        reloaded = ResultStore(str(path))
        assert len(reloaded) == 2
        assert reloaded.get("aa").error_bound == 0.5
        assert reloaded.completed("aa")
        assert not reloaded.completed("bb")  # errors re-run under resume
        assert not reloaded.completed("cc")

    def test_later_lines_win(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(str(path))
        store.put(_result("aa", status="timeout", bound=None))
        store.put(_result("aa", status="ok", bound=0.25))
        reloaded = ResultStore(str(path))
        assert reloaded.completed("aa")
        assert reloaded.get("aa").error_bound == 0.25

    def test_missing_filter(self, tmp_path):
        store = ResultStore(str(tmp_path / "results.jsonl"))
        store.put(_result("aa"))
        store.put(_result("bb", status="timeout"))
        assert store.missing(["aa", "bb", "cc"]) == ["bb", "cc"]

    def test_truncated_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(str(path))
        store.put(_result("aa"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"fingerprint": "bb", "name": "half')  # killed mid-append
        reloaded = ResultStore(str(path))
        assert len(reloaded) == 1
        assert reloaded.skipped_lines == 1
        # The store stays appendable after the bad line.
        reloaded.put(_result("cc"))
        assert ResultStore(str(path)).completed("cc")

    def test_nested_directory_created(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "results.jsonl"
        ResultStore(str(path)).put(_result("aa"))
        assert path.exists()
