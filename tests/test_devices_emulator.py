"""Tests for the hardware emulator (the Table 3 real-device substitute)."""

import numpy as np
import pytest

from repro.config import ResourceGuard
from repro.devices import (
    CouplingMap,
    HardwareEmulator,
    boeblingen_calibration,
    map_circuit,
    uniform_calibration,
)
from repro.errors import ResourceLimitExceeded
from repro.programs import ghz_circuit


@pytest.fixture
def boeblingen():
    coupling = CouplingMap.ibm_boeblingen()
    calibration = boeblingen_calibration()
    return coupling, calibration


class TestEmulator:
    def test_noiseless_calibration_gives_zero_error(self):
        coupling = CouplingMap.linear(3)
        calibration = uniform_calibration(
            coupling, single_qubit_error=0.0, two_qubit_error=0.0, readout_error=0.0
        )
        emulator = HardwareEmulator(coupling, calibration, seed=1)
        mapped = map_circuit(ghz_circuit(3), (0, 1, 2), coupling)
        result = emulator.run(mapped, shots=None)
        assert result.measured_error < 1e-9
        assert np.allclose(result.probabilities, [0.5, 0, 0, 0, 0, 0, 0, 0.5], atol=1e-9)

    def test_noise_produces_positive_error(self, boeblingen):
        coupling, calibration = boeblingen
        emulator = HardwareEmulator(coupling, calibration, seed=2)
        mapped = map_circuit(ghz_circuit(3), (0, 1, 2), coupling)
        error = emulator.measured_error(mapped, shots=None)
        assert 0.01 < error < 0.6

    def test_shot_sampling_reproducible(self, boeblingen):
        coupling, calibration = boeblingen
        mapped = map_circuit(ghz_circuit(3), (1, 2, 3), coupling)
        first = HardwareEmulator(coupling, calibration, seed=3).run(mapped, shots=2048)
        second = HardwareEmulator(coupling, calibration, seed=3).run(mapped, shots=2048)
        assert first.counts == second.counts
        assert sum(first.counts.values()) == 2048

    def test_readout_error_increases_measured_error(self, boeblingen):
        coupling, calibration = boeblingen
        mapped = map_circuit(ghz_circuit(3), (1, 2, 3), coupling)
        emulator = HardwareEmulator(coupling, calibration, seed=4)
        with_readout = emulator.measured_error(mapped, shots=None, include_readout_error=True)
        without_readout = emulator.measured_error(mapped, shots=None, include_readout_error=False)
        assert with_readout > without_readout

    def test_compaction_keeps_problem_small(self, boeblingen):
        coupling, calibration = boeblingen
        emulator = HardwareEmulator(
            coupling, calibration, guard=ResourceGuard(max_dense_qubits=6), seed=5
        )
        mapped = map_circuit(ghz_circuit(5), (0, 1, 2, 3, 4), coupling)
        # 5 qubits used out of 20: compaction makes this feasible.
        assert emulator.measured_error(mapped, shots=None) > 0

    def test_guard_still_applies_to_large_footprints(self, boeblingen):
        coupling, calibration = boeblingen
        emulator = HardwareEmulator(
            coupling, calibration, guard=ResourceGuard(max_dense_qubits=3), seed=6
        )
        mapped = map_circuit(ghz_circuit(5), (0, 1, 2, 3, 4), coupling)
        with pytest.raises(ResourceLimitExceeded):
            emulator.run(mapped, shots=None)

    def test_compare_mappings_ranks_by_calibration(self, boeblingen):
        coupling, calibration = boeblingen
        emulator = HardwareEmulator(coupling, calibration, seed=7)
        results = emulator.compare_mappings(
            ghz_circuit(3), [(0, 1, 2), (1, 2, 3)], shots=None
        )
        errors = dict(results)
        assert errors[(1, 2, 3)] < errors[(0, 1, 2)]
