"""Tests for the diamond-norm engine: known values, soundness, reductions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SDPConfig
from repro.errors import SDPError
from repro.linalg import (
    CNOT,
    HADAMARD,
    PAULI_X,
    identity_channel,
    maximally_mixed,
    plus_state,
    pure_density,
    random_unitary,
    unitary_channel,
    zero_state,
)
from repro.noise import (
    amplitude_damping,
    bit_flip,
    depolarizing,
    phase_flip,
    two_qubit_depolarizing,
)
from repro.sdp import (
    GateBoundCache,
    constrained_diamond_lower_bound,
    constrained_diamond_norm,
    diamond_distance,
    diamond_lower_bound,
    gate_error_bound,
    q_lambda_diamond_norm,
    rho_delta_constraint_bound,
    rho_delta_diamond_norm,
    verify_certificate,
)


CFG = SDPConfig(max_iterations=600, tolerance=1e-6)


class TestUnconstrainedDiamond:
    @pytest.mark.parametrize("p", [0.05, 0.2, 0.5])
    def test_bit_flip_distance_is_p(self, p):
        bound = diamond_distance(bit_flip(p), identity_channel(1), config=CFG)
        assert np.isclose(bound.value, p, atol=1e-6)

    def test_phase_flip_distance(self):
        bound = diamond_distance(phase_flip(0.3), identity_channel(1), config=CFG)
        assert np.isclose(bound.value, 0.3, atol=1e-6)

    def test_identical_channels(self):
        bound = diamond_distance(bit_flip(0.1), bit_flip(0.1), config=CFG)
        assert bound.value <= 1e-9

    def test_certificate_is_verifiable(self):
        bound = diamond_distance(depolarizing(0.2), identity_channel(1), config=CFG)
        assert verify_certificate(bound.certificate, bound.choi)

    def test_dominates_brute_force(self):
        noisy = amplitude_damping(0.3)
        ideal = identity_channel(1)
        bound = diamond_distance(noisy, ideal, config=CFG)
        lower = diamond_lower_bound(noisy, ideal)
        assert bound.value >= lower - 1e-7
        assert bound.value <= lower + 0.05  # and reasonably tight

    def test_fast_mode(self):
        fast = SDPConfig(mode="fast")
        bound = diamond_distance(bit_flip(0.2), identity_channel(1), config=fast)
        assert bound.method == "fast"
        assert np.isclose(bound.value, 0.2, atol=1e-9)

    def test_unitary_vs_unitary(self):
        rz_small = unitary_channel(np.diag([1, np.exp(1j * 0.1)]))
        bound = diamond_distance(rz_small, identity_channel(1), config=CFG)
        lower = diamond_lower_bound(rz_small, identity_channel(1))
        assert lower - 1e-7 <= bound.value <= 0.3


class TestConstrainedDiamond:
    def test_plus_predicate_suppresses_bit_flip(self):
        choi = bit_flip(0.1).choi() - identity_channel(1).choi()
        bound = rho_delta_diamond_norm(choi, pure_density(plus_state(1)), 0.0, config=CFG)
        assert bound.value < 0.02  # far below the unconstrained 0.1

    def test_zero_predicate_keeps_full_error(self):
        choi = bit_flip(0.1).choi() - identity_channel(1).choi()
        bound = rho_delta_diamond_norm(choi, pure_density(zero_state(1)), 0.0, config=CFG)
        assert np.isclose(bound.value, 0.1, atol=1e-4)

    def test_monotone_in_delta(self):
        choi = bit_flip(0.1).choi() - identity_channel(1).choi()
        rho = pure_density(plus_state(1))
        small = rho_delta_diamond_norm(choi, rho, 0.0, config=CFG).value
        large = rho_delta_diamond_norm(choi, rho, 0.5, config=CFG).value
        assert small <= large + 1e-9

    def test_never_exceeds_unconstrained(self):
        choi = depolarizing(0.2).choi() - identity_channel(1).choi()
        constrained = rho_delta_diamond_norm(choi, maximally_mixed(1), 0.1, config=CFG).value
        unconstrained = constrained_diamond_norm(choi, config=CFG).value
        assert constrained <= unconstrained + 1e-9

    def test_constraint_bound_formula(self):
        rho = pure_density(plus_state(1))
        assert np.isclose(rho_delta_constraint_bound(rho, 0.0), 1.0)
        assert np.isclose(rho_delta_constraint_bound(maximally_mixed(1), 0.0), 0.5)

    def test_negative_delta_rejected(self):
        choi = bit_flip(0.1).choi() - identity_channel(1).choi()
        with pytest.raises(SDPError):
            rho_delta_diamond_norm(choi, maximally_mixed(1), -0.1, config=CFG)

    def test_q_lambda_matches_rho_delta_for_pure_predicate(self):
        choi = bit_flip(0.1).choi() - identity_channel(1).choi()
        rho = pure_density(plus_state(1))
        q_bound = q_lambda_diamond_norm(choi, rho, 1.0, config=CFG).value
        r_bound = rho_delta_diamond_norm(choi, rho, 0.0, config=CFG).value
        assert np.isclose(q_bound, r_bound, atol=1e-6)

    def test_zero_choi(self):
        bound = constrained_diamond_norm(np.zeros((4, 4)), config=CFG)
        assert bound.value == 0.0


class TestGateErrorBound:
    def test_noiseless_gate(self):
        bound = gate_error_bound(HADAMARD, None, maximally_mixed(1), 0.0, config=CFG)
        assert bound.value == 0.0
        assert bound.method == "noiseless"

    def test_hadamard_with_bit_flip_on_zero_input(self):
        bound = gate_error_bound(
            HADAMARD, bit_flip(0.1), pure_density(zero_state(1)), 0.0, config=CFG
        )
        # The output |+> is a fixed point of X, so the error nearly vanishes.
        assert bound.value < 0.02

    def test_noise_before_gate_uses_unrotated_predicate(self):
        bound = gate_error_bound(
            HADAMARD,
            bit_flip(0.1),
            pure_density(plus_state(1)),
            0.0,
            noise_after_gate=False,
            config=CFG,
        )
        assert bound.value < 0.02

    def test_cnot_with_first_qubit_bit_flip_reduces_to_single_qubit(self):
        noise = bit_flip(0.1).tensor(identity_channel(1))
        rho = pure_density(np.kron(zero_state(1), zero_state(1)))
        bound = gate_error_bound(CNOT, noise, rho, 0.0, config=CFG)
        assert np.isclose(bound.value, 0.1, atol=1e-4)
        # The reduced problem has a 1-qubit (4x4) Choi matrix.
        assert bound.choi.shape == (4, 4)

    def test_cnot_with_genuine_two_qubit_noise(self):
        noise = two_qubit_depolarizing(0.05)
        rho = maximally_mixed(2)
        bound = gate_error_bound(CNOT, noise, rho, 0.1, config=CFG)
        assert bound.choi.shape == (16, 16)
        assert bound.value <= 0.05 + 1e-6

    def test_dimension_mismatch(self):
        with pytest.raises(SDPError):
            gate_error_bound(CNOT, bit_flip(0.1), maximally_mixed(2), 0.0, config=CFG)
        with pytest.raises(SDPError):
            gate_error_bound(HADAMARD, bit_flip(0.1), maximally_mixed(2), 0.0, config=CFG)


class TestSoundnessAgainstBruteForce:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 100), delta=st.floats(0.0, 0.3))
    def test_certified_bound_dominates_feasible_points(self, seed, delta):
        rng = np.random.default_rng(seed)
        noisy = unitary_channel(random_unitary(2, rng=rng)).compose(bit_flip(0.15))
        ideal = unitary_channel(noisy.kraus[0] / np.linalg.norm(noisy.kraus[0], 2))
        # Use a clean comparison: noisy = N ∘ U vs U itself.
        u = random_unitary(2, rng=rng)
        noisy = bit_flip(0.15).compose(unitary_channel(u))
        ideal = unitary_channel(u)
        rho = pure_density(plus_state(1)) if seed % 2 == 0 else maximally_mixed(1)
        choi = noisy.choi() - ideal.choi()
        bound = rho_delta_diamond_norm(choi, rho, delta, config=CFG)
        lower = constrained_diamond_lower_bound(noisy, ideal, rho, delta, num_samples=24, rng=rng)
        assert bound.value >= lower - 1e-6


class TestCache:
    def test_cache_hits_for_identical_requests(self):
        cache = GateBoundCache(decimals=6)
        rho = pure_density(zero_state(1))
        args = (("h",), HADAMARD, bit_flip(0.1), rho, 0.0)
        first = cache.lookup_or_compute(*args, config=CFG)
        second = cache.lookup_or_compute(*args, config=CFG)
        assert cache.hits == 1 and cache.misses == 1
        assert first.value == second.value

    def test_cache_quantisation_is_sound(self):
        cache = GateBoundCache(decimals=3)
        rho = pure_density(plus_state(1))
        perturbed = rho + 1e-5 * np.eye(2)
        perturbed /= np.trace(perturbed).real
        bound = cache.lookup_or_compute(("h",), HADAMARD, bit_flip(0.1), perturbed, 0.0, config=CFG)
        # The cached bound is computed for a weaker predicate, so it must be
        # at least the bound for the rounded state at delta=0.
        direct = gate_error_bound(HADAMARD, bit_flip(0.1), perturbed, 0.0, config=CFG)
        assert bound.value >= direct.value - 1e-6

    def test_clear(self):
        cache = GateBoundCache()
        cache.lookup_or_compute(("x",), PAULI_X, bit_flip(0.1), maximally_mixed(1), 0.0, config=CFG)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0


class TestCacheEviction:
    """Size-capped LRU compaction of the in-memory bound cache."""

    @staticmethod
    def _bound():
        from repro.sdp.certificates import DualCertificate
        from repro.sdp.diamond import DiamondNormBound

        certificate = DualCertificate(0.0, np.zeros((2, 2)), 0.0, None, 0.0)
        return DiamondNormBound(0.0, certificate, 0.0, method="test")

    @staticmethod
    def _key(index: int, delta: float = 0.5) -> tuple:
        return ("gate", f"noise{index}", b"rho", delta)

    def test_insert_past_cap_evicts_oldest(self):
        cache = GateBoundCache(max_entries=3)
        for index in range(5):
            cache.insert(self._key(index), self._bound(), count_as_solve=False)
        assert len(cache) == 3
        assert cache.evictions == 2
        # The two oldest inserts are gone; the newest three remain.
        assert cache._store.get(self._key(0)) is None
        assert cache._store.get(self._key(1)) is None
        assert cache._store.get(self._key(4)) is not None

    def test_hit_refreshes_recency(self):
        cache = GateBoundCache(max_entries=2)
        rho = maximally_mixed(1)
        first = cache.lookup_or_compute(
            ("x",), PAULI_X, bit_flip(0.1), rho, 0.0, config=CFG
        )
        cache.lookup_or_compute(("h",), HADAMARD, bit_flip(0.1), rho, 0.0, config=CFG)
        # Touch the first entry, then insert a third: the *untouched* second
        # entry is the LRU victim.
        again = cache.lookup_or_compute(
            ("x",), PAULI_X, bit_flip(0.1), rho, 0.0, config=CFG
        )
        assert again.value == first.value and cache.hits == 1
        cache.lookup_or_compute(("x2",), PAULI_X, bit_flip(0.2), rho, 0.0, config=CFG)
        assert len(cache) == 2 and cache.evictions == 1
        hits_before = cache.hits
        cache.lookup_or_compute(("x",), PAULI_X, bit_flip(0.1), rho, 0.0, config=CFG)
        assert cache.hits == hits_before + 1  # survivor still answers

    def test_eviction_takes_whole_predicate_groups(self):
        cache = GateBoundCache(max_entries=1, dominance=True)
        partial = ("gate", "noise", b"rho")
        cache.insert(partial + (0.75,), self._bound(), count_as_solve=False)
        cache.insert(partial + (0.25,), self._bound(), count_as_solve=False)
        # Compaction evicts the LRU key's whole predicate group: a surviving
        # weaker-delta sibling could otherwise shadow the evicted exact entry
        # through the dominance layer with a looser bound.
        assert len(cache) == 0 and cache.evictions == 2
        assert cache._dominance_lookup(partial + (0.5,)) is None
        assert partial not in cache._by_predicate

    def test_no_dominance_shadowing_after_eviction(self):
        """A capped run never answers an evicted exact key with a looser sibling."""
        rho = maximally_mixed(1)
        capped = GateBoundCache(max_entries=2, dominance=True)
        unbounded = GateBoundCache(dominance=True)
        sequence = [
            (("x",), PAULI_X, bit_flip(0.1), 0.0),   # exact entry, partial P
            (("x",), PAULI_X, bit_flip(0.1), 0.5),   # weaker sibling, partial P
            (("h",), HADAMARD, bit_flip(0.1), 0.0),  # evicts: P would be split
            (("x",), PAULI_X, bit_flip(0.1), 0.0),   # must recompute exactly
        ]
        for key, gate, channel, delta in sequence:
            a = capped.lookup_or_compute(key, gate, channel, rho, delta, config=CFG)
            b = unbounded.lookup_or_compute(key, gate, channel, rho, delta, config=CFG)
            assert a.value == b.value
        assert capped.evictions >= 1

    def test_eviction_never_changes_values(self):
        rho = maximally_mixed(1)
        capped = GateBoundCache(max_entries=1)
        unbounded = GateBoundCache()
        for key, gate, channel in [
            (("x",), PAULI_X, bit_flip(0.1)),
            (("h",), HADAMARD, bit_flip(0.1)),
            (("x",), PAULI_X, bit_flip(0.1)),  # recompute after eviction
        ]:
            a = capped.lookup_or_compute(key, gate, channel, rho, 0.0, config=CFG)
            b = unbounded.lookup_or_compute(key, gate, channel, rho, 0.0, config=CFG)
            assert a.value == b.value
        assert capped.evictions >= 1

    def test_config_knob_validates(self):
        with pytest.raises(ValueError):
            GateBoundCache(max_entries=0)
        cfg = SDPConfig(cache_max_entries=0)
        with pytest.raises(ValueError):
            cfg.validate()
        SDPConfig(cache_max_entries=16).validate()
