"""The observability subsystem (``repro.obs``): tracing + metrics.

Three layers of guarantees:

* **unit** — span nesting / pickling / Chrome-trace shape; metric families,
  label handling, snapshot merging (both in-process and wire shapes), and
  the Prometheus 0.0.4 exposition;
* **read-only by construction** — a property test asserting the certified
  bound of an analysis is bit-identical with tracing + metrics on and off;
* **cross-process** — a 4-worker engine run whose per-job metric snapshots
  and spans merge back into the parent registry/collector, and a live HTTP
  server whose ``/v1/metrics`` histograms move when traffic arrives.
"""

from __future__ import annotations

import json
import pickle
import threading
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import random_circuit

from repro.circuits import Circuit
from repro.config import AnalysisConfig, SDPConfig
from repro.core.analyzer import analyze_program
from repro.engine.pool import AnalysisEngine
from repro.engine.service import AnalysisService, make_server
from repro.engine.spec import AnalysisJob
from repro.noise import NoiseModel
from repro.obs import metrics as obs_metrics
from repro.obs.trace import (
    chrome_trace,
    collecting,
    span,
    tracing_active,
    write_chrome_trace,
)

FAST = AnalysisConfig(mps_width=4, sdp=SDPConfig(max_iterations=200, tolerance=1e-4))
MODEL = NoiseModel.uniform_bit_flip(1e-3)


def _job(name: str, num_qubits: int = 2) -> AnalysisJob:
    circuit = Circuit(num_qubits, name=name).h(0).cx(0, 1)
    for q in range(2, num_qubits):
        circuit.cx(q - 1, q)
    return AnalysisJob.from_circuit(circuit, MODEL, config=FAST)


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------

class TestTrace:
    def test_off_by_default(self):
        assert not tracing_active()
        with span("noop", "test") as handle:  # no collector: must be a no-op
            handle.set(ignored=1)
        assert not tracing_active()

    def test_nesting_records_parent_ids(self):
        with collecting() as collector:
            with span("outer", "test"):
                with span("inner", "test", detail=3):
                    pass
            with span("sibling", "test"):
                pass
        spans = {entry.name: entry for entry in collector.spans()}
        assert set(spans) == {"outer", "inner", "sibling"}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None
        assert spans["sibling"].parent_id is None
        assert spans["inner"].args == {"detail": 3}
        assert spans["outer"].duration >= spans["inner"].duration

    def test_collecting_is_exclusive(self):
        with collecting():
            with pytest.raises(RuntimeError):
                with collecting():
                    pass

    def test_spans_pickle_and_shift(self):
        with collecting() as collector:
            with span("work", "test"):
                pass
        original = collector.spans()[0]
        copied = pickle.loads(pickle.dumps(original))
        assert copied == original
        shifted = original.shift(2.5)
        assert shifted.start == pytest.approx(original.start + 2.5)
        assert shifted.duration == original.duration

    def test_chrome_trace_shape(self, tmp_path):
        with collecting() as collector:
            with span("outer", "test"):
                with span("inner", "test"):
                    pass
        payload = chrome_trace(collector.spans(), label="unit")
        events = payload["traceEvents"]
        complete = [event for event in events if event["ph"] == "X"]
        metadata = [event for event in events if event["ph"] == "M"]
        assert len(complete) == 2
        assert metadata, "process_name metadata events missing"
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0  # microseconds
            assert event["cat"] == "test"
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), collector.spans(), label="unit")
        assert json.loads(path.read_text())["traceEvents"]


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = obs_metrics.MetricsRegistry()
        registry.counter("jobs_total", "jobs", {"status": "done"}).inc()
        registry.counter("jobs_total", "jobs", {"status": "done"}).inc(2)
        registry.gauge("depth", "queue depth").set(7)
        histogram = registry.histogram("latency_seconds", "latency", buckets=[0.1, 1.0])
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        snapshot = registry.snapshot()
        assert snapshot["jobs_total"]["series"][(("status", "done"),)] == 3
        assert snapshot["depth"]["series"][()] == 7
        series = snapshot["latency_seconds"]["series"][()]
        assert series["count"] == 3
        assert series["counts"] == [1, 2]  # cumulative: ≤0.1, ≤1.0
        assert series["sum"] == pytest.approx(5.55)

    def test_kind_mismatch_raises(self):
        registry = obs_metrics.MetricsRegistry()
        registry.counter("x_total", "x")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "x")

    def test_merge_accepts_both_snapshot_shapes(self):
        source = obs_metrics.MetricsRegistry()
        source.counter("a_total", "a", {"k": "v"}).inc(2)
        source.histogram("h_seconds", "h", buckets=[1.0]).observe(0.5)

        into_dict = obs_metrics.MetricsRegistry()
        into_dict.counter("a_total", "a", {"k": "v"}).inc()
        into_dict.merge(source.snapshot())
        assert into_dict.snapshot()["a_total"]["series"][(("k", "v"),)] == 3

        into_wire = obs_metrics.MetricsRegistry()
        wire = source.wire_snapshot()
        json.dumps(wire)  # must survive the pickle/JSON boundary
        into_wire.merge(wire)
        into_wire.merge(wire)
        assert into_wire.snapshot()["a_total"]["series"][(("k", "v"),)] == 4
        histogram = into_wire.snapshot()["h_seconds"]["series"][()]
        assert histogram["count"] == 2

    def test_prometheus_exposition(self):
        registry = obs_metrics.MetricsRegistry()
        registry.counter("a_total", "things", {"cls": 'dim"4"'}).inc(6)
        registry.histogram("h_seconds", "latency", buckets=[0.5, 1.0]).observe(0.7)
        text = registry.render_prometheus()
        assert "# TYPE a_total counter" in text
        assert 'a_total{cls="dim\\"4\\""} 6' in text
        assert 'h_seconds_bucket{le="0.5"} 0' in text
        assert 'h_seconds_bucket{le="1"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_count 1" in text

    def test_scoped_registry_isolates(self):
        obs_metrics.counter("outer_total", "outer").inc()
        with obs_metrics.scoped() as inner:
            obs_metrics.counter("inner_total", "inner").inc()
            assert "outer_total" not in inner.snapshot()
        assert "inner_total" not in obs_metrics.get_registry().snapshot()


# ---------------------------------------------------------------------------
# Read-only by construction
# ---------------------------------------------------------------------------

class TestBitIdentical:
    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        num_gates=st.integers(min_value=3, max_value=8),
    )
    def test_bound_identical_with_observability_on(self, seed, num_gates):
        circuit = random_circuit(2, num_gates, seed=seed)
        plain = analyze_program(circuit, MODEL, config=FAST)
        with obs_metrics.scoped(), collecting() as collector:
            observed = analyze_program(circuit, MODEL, config=FAST)
        assert observed.error_bound == plain.error_bound
        assert observed.final_delta == plain.final_delta
        assert len(collector) > 0
        assert observed.timings["total_seconds"] > 0


# ---------------------------------------------------------------------------
# Cross-process merging
# ---------------------------------------------------------------------------

class TestWorkerMerge:
    def test_pool_workers_ship_metrics_and_spans(self, tmp_path):
        # Distinct widths: jobs are content-addressed, so same-structure
        # circuits would dedupe to fewer than four executions.
        jobs = [_job(f"merge{i}", num_qubits=2 + i) for i in range(4)]
        # adaptive_workers would clamp to the CPU count (1 on small CI
        # runners) and execute inline; the point here is the pool path.
        engine = AnalysisEngine(
            workers=4, store=str(tmp_path / "results.jsonl"), adaptive_workers=False
        )
        with obs_metrics.scoped() as registry, collecting() as collector:
            report = engine.run(jobs)
        assert all(result.status == "ok" for result in report.results)
        snapshot = registry.snapshot()
        analyses = sum(snapshot["repro_analyses_total"]["series"].values())
        assert analyses == 4  # one per worker-executed job, merged back
        job_series = snapshot["repro_engine_jobs_total"]["series"]
        assert sum(job_series.values()) == 4
        names = {entry.name for entry in collector.spans()}
        assert "engine.execute" in names
        # Worker spans crossed the process boundary and were re-based.
        pids = {entry.pid for entry in collector.spans()}
        assert len(pids) > 1
        for entry in collector.spans():
            assert entry.start >= 0

    def test_job_results_carry_timings(self, tmp_path):
        engine = AnalysisEngine(workers=1, store=str(tmp_path / "results.jsonl"))
        report = engine.run([_job("timed")])
        timings = report.results[0].timings
        assert timings["total_seconds"] > 0
        assert "solve_classes" in timings


# ---------------------------------------------------------------------------
# Live HTTP exposition
# ---------------------------------------------------------------------------

@pytest.fixture
def server(tmp_path):
    engine = AnalysisEngine(workers=1, store=str(tmp_path / "results.jsonl"))
    service = AnalysisService(engine, batch_window=0.02, max_batch=8, max_submit=4)
    service.start()
    httpd = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{httpd.server_address[1]}", service
    httpd.shutdown()
    httpd.server_close()
    service.stop()


def _get(url: str):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.headers.get("Content-Type", ""), response.read().decode("utf-8")


def _histogram_count(body: str, prefix: str) -> float:
    return sum(
        float(line.rsplit(" ", 1)[1])
        for line in body.splitlines()
        if line.startswith(prefix)
    )


class TestHTTPObservability:
    def test_healthz(self, server):
        base, _service = server
        _ctype, body = _get(f"{base}/v1/healthz")
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0
        assert health["workers"] >= 1
        assert "queue_depth" in health and "version" in health

    def test_metrics_format_and_movement(self, server):
        base, service = server
        ctype, before = _get(f"{base}/v1/metrics")
        assert ctype.startswith("text/plain")
        assert "# TYPE repro_http_request_seconds histogram" in before
        count_before = _histogram_count(before, "repro_http_request_seconds_count")

        entry = service.submit_job(_job("metrics-job"))
        assert service.wait_for(entry["fingerprint"], timeout=120)["status"] == "done"

        _ctype, after = _get(f"{base}/v1/metrics")
        count_after = _histogram_count(after, "repro_http_request_seconds_count")
        assert count_after > count_before  # the scrapes themselves are counted
        assert "repro_engine_jobs_total" in after
        assert 'repro_sdp_solves_total{solve_class="' in after
        assert "repro_service_queue_depth" in after

    def test_remote_outcomes_carry_both_clocks(self, server):
        from repro.api import AnalysisSession

        base, _service = server
        with AnalysisSession(remote=base, config=FAST) as remote:
            outcome = remote.analyze_batch([_job("clocks")])[0]
        assert outcome.status == "ok"
        # elapsed_seconds is the server-side execution clock; the client
        # round trip includes submission, batching, and the long poll.
        assert outcome.elapsed_seconds > 0
        assert outcome.round_trip_seconds is not None
        assert outcome.round_trip_seconds > 0
        assert outcome.timings["total_seconds"] > 0  # shipped over /v1

        with AnalysisSession(config=FAST) as local:
            local_outcome = local.analyze_batch([_job("clocks")])[0]
        assert local_outcome.round_trip_seconds is None  # remote-only field
        assert local_outcome.bound == outcome.bound
