"""Unit tests for spectral helpers (positive parts, projections, purification)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    hermitian_eig,
    is_density_matrix,
    matrix_sqrt,
    min_eigenvalue,
    nearest_density_matrix,
    negative_part,
    partial_trace,
    positive_negative_split,
    positive_part,
    psd_projection,
    purification,
    random_density_matrix,
    random_hermitian,
    truncated_svd,
)


class TestPositiveParts:
    def test_positive_part_of_psd_matrix(self):
        rho = random_density_matrix(1, rng=np.random.default_rng(0))
        assert np.allclose(positive_part(rho), rho, atol=1e-10)

    def test_split_reconstructs(self):
        a = random_hermitian(4, rng=np.random.default_rng(1))
        pos, neg = positive_negative_split(a)
        assert np.allclose(pos - neg, a, atol=1e-10)
        assert min_eigenvalue(pos) >= -1e-10
        assert min_eigenvalue(neg) >= -1e-10

    def test_negative_part_of_negative_matrix(self):
        assert np.allclose(negative_part(-np.eye(2)), np.eye(2))

    def test_psd_projection_idempotent(self):
        a = random_hermitian(3, rng=np.random.default_rng(2))
        proj = psd_projection(a)
        assert np.allclose(psd_projection(proj), proj, atol=1e-10)


class TestNearestDensityMatrix:
    def test_already_density(self):
        rho = random_density_matrix(2, rng=np.random.default_rng(3))
        assert np.allclose(nearest_density_matrix(rho), rho, atol=1e-9)

    def test_projection_is_density(self):
        a = random_hermitian(4, rng=np.random.default_rng(4))
        projected = nearest_density_matrix(a)
        assert is_density_matrix(projected)


class TestSqrtAndEig:
    def test_matrix_sqrt(self):
        rho = random_density_matrix(2, rng=np.random.default_rng(5))
        root = matrix_sqrt(rho)
        assert np.allclose(root @ root, rho, atol=1e-9)

    def test_hermitian_eig_orders(self):
        vals, vecs = hermitian_eig(np.diag([3.0, 1.0]))
        assert vals[0] <= vals[1]
        assert vecs.shape == (2, 2)


class TestTruncatedSVD:
    def test_no_truncation(self):
        mat = np.diag([3.0, 2.0, 1.0]).astype(complex)
        u, s, vh, discarded, total = truncated_svd(mat, 3)
        assert discarded == 0.0
        assert np.isclose(total, 14.0)
        assert np.allclose((u * s) @ vh, mat)

    def test_truncation_weights(self):
        mat = np.diag([2.0, 1.0]).astype(complex)
        _, s, _, discarded, total = truncated_svd(mat, 1)
        assert np.isclose(discarded, 1.0)
        assert np.isclose(total, 5.0)
        assert s.shape == (1,)


class TestPurification:
    def test_purification_reduces_back(self):
        rho = random_density_matrix(1, rng=np.random.default_rng(6))
        psi = purification(rho)
        joint = np.outer(psi, psi.conj())
        assert np.allclose(partial_trace(joint, [1]), rho, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2000), n=st.integers(2, 5))
def test_positive_part_dominates(seed, n):
    """A_+ >= A and A_+ >= 0: the property the dual certificate repair uses."""
    a = random_hermitian(n, rng=np.random.default_rng(seed))
    pos = positive_part(a)
    assert min_eigenvalue(pos) >= -1e-9
    assert min_eigenvalue(pos - a) >= -1e-9
