"""Tests for the ``repro.api`` session facade (local transport).

The facade is the one front door: these tests pin down that it is
bit-identical to the underlying primitives it fronts (``analyze_program``,
the engine, ``gate_error_bound``), that outcomes are frozen typed values,
and that the legacy experiment kwargs survive as deprecation shims with
identical results.
"""

import dataclasses
import warnings

import numpy as np
import pytest

from helpers import random_circuit

from repro.api import AnalysisOutcome, AnalysisSession
from repro.circuits import Circuit
from repro.config import AnalysisConfig, SDPConfig
from repro.core.analyzer import analyze_program
from repro.errors import EngineError
from repro.noise import NoiseModel
from repro.noise.channels import bit_flip
from repro.sdp import gate_error_bound

FAST = AnalysisConfig(mps_width=4, sdp=SDPConfig(max_iterations=200, tolerance=1e-4))
MODEL = NoiseModel.uniform_bit_flip(1e-3)


def _circuits():
    return [
        Circuit(2, name="ghz2").h(0).cx(0, 1),
        Circuit(3, name="ghz3").h(0).cx(0, 1).cx(1, 2),
        random_circuit(3, 10, seed=3),
    ]


class TestAnalyze:
    def test_analyze_matches_analyze_program(self):
        circuit = _circuits()[0]
        direct = analyze_program(circuit, MODEL, config=FAST)
        with AnalysisSession(config=FAST) as session:
            outcome = session.analyze(circuit, MODEL)
        assert outcome.certified and outcome.status == "ok"
        assert outcome.bound == direct.error_bound
        assert outcome.final_delta == direct.final_delta
        assert outcome.mps_walks == 1
        assert outcome.fingerprint == session.job(circuit, MODEL).fingerprint()

    def test_outcome_is_frozen(self):
        with AnalysisSession(config=FAST) as session:
            outcome = session.analyze(_circuits()[0], MODEL)
        with pytest.raises(dataclasses.FrozenInstanceError):
            outcome.bound = 0.0

    def test_derivation_request_keeps_bound_and_carries_tree(self):
        circuit = _circuits()[1]
        with AnalysisSession(config=FAST) as session:
            plain = session.analyze(circuit, MODEL)
            with_tree = session.analyze(circuit, MODEL, derivation=True)
        assert with_tree.bound == plain.bound
        assert with_tree.derivation is not None
        assert len(with_tree.gate_contributions()) > 0
        with pytest.raises(EngineError):
            plain.gate_contributions()

    def test_closed_session_rejects_work(self):
        session = AnalysisSession(config=FAST)
        session.close()
        with pytest.raises(EngineError):
            session.analyze(_circuits()[0], MODEL)

    def test_to_json_dict_round_trips_wire_shape(self):
        with AnalysisSession(config=FAST) as session:
            outcome = session.analyze(_circuits()[0], MODEL)
        payload = outcome.to_json_dict()
        assert payload["error_bound"] == outcome.bound
        assert "derivation" not in payload
        from repro.engine.spec import JobResult

        assert JobResult.from_json_dict(payload).error_bound == outcome.bound


class TestBatchAndStreaming:
    def test_batch_alignment_and_dedupe(self):
        circuits = _circuits()
        with AnalysisSession(config=FAST) as session:
            jobs = [session.job(c, MODEL) for c in circuits]
            jobs.append(session.job(circuits[0], MODEL))  # duplicate
            outcomes = session.analyze_batch(jobs)
        assert len(outcomes) == 4
        assert outcomes[0].bound == outcomes[3].bound
        assert outcomes[0].fingerprint == outcomes[3].fingerprint
        assert session.engine.stats()["last_batch_shards"]["pending_jobs"] == 3

    def test_batch_matches_single_analyses(self):
        circuits = _circuits()
        with AnalysisSession(config=FAST) as session:
            singles = [session.analyze(c, MODEL) for c in circuits]
            batch = session.analyze_batch([session.job(c, MODEL) for c in circuits])
        assert [o.bound for o in batch] == [o.bound for o in singles]

    def test_as_completed_streams_every_index(self):
        circuits = _circuits()
        with AnalysisSession(config=FAST) as session:
            jobs = [session.job(c, MODEL) for c in circuits]
            batch = session.analyze_batch(jobs)
            streamed = dict(session.as_completed(jobs, timeout=120))
        assert sorted(streamed) == [0, 1, 2]
        assert [streamed[i].bound for i in range(3)] == [o.bound for o in batch]

    def test_empty_batch(self):
        with AnalysisSession(config=FAST) as session:
            assert session.analyze_batch([]) == []
            assert list(session.as_completed([])) == []

    def test_resume_answers_from_store(self, tmp_path):
        circuit = _circuits()[0]
        store = str(tmp_path / "results.jsonl")
        with AnalysisSession(config=FAST, store=store) as session:
            first = session.analyze(circuit, MODEL)
        with AnalysisSession(config=FAST, store=store, resume=True) as session:
            second = session.analyze(circuit, MODEL)
            assert second.bound == first.bound
            # Resumed: the engine had nothing left to execute.
            assert session.engine.stats()["last_batch_shards"]["pending_jobs"] == 0


class TestGateBound:
    def test_matches_sdp_primitive(self):
        rho = np.array([[1.0, 0.0], [0.0, 0.0]], dtype=np.complex128)
        gate = np.array([[0.0, 1.0], [1.0, 0.0]], dtype=np.complex128)
        channel = bit_flip(1e-3)
        direct = gate_error_bound(gate, channel, rho, 0.01, config=FAST.sdp)
        with AnalysisSession(config=FAST) as session:
            via_session = session.gate_bound(gate, channel, rho, 0.01)
        assert via_session.value == direct.value

    def test_capabilities_local(self):
        with AnalysisSession(config=FAST) as session:
            capabilities = session.capabilities()
        assert capabilities["transport"] == "local"
        assert capabilities["api"]["version"] == "v1"
        assert capabilities["engine"]["workers"] == 1


class TestSessionConstruction:
    def test_remote_rejects_local_knobs(self):
        with pytest.raises(EngineError):
            AnalysisSession(remote="http://127.0.0.1:1", workers=4)

    def test_session_from_args(self, tmp_path):
        import argparse

        from repro.api import add_session_arguments, session_from_args

        parser = argparse.ArgumentParser()
        add_session_arguments(parser)
        args = parser.parse_args(
            ["--workers", "2", "--store", str(tmp_path / "s.jsonl"), "--resume"]
        )
        with session_from_args(args, config=FAST) as session:
            assert not session.is_remote
            # The engine may clamp to os.cpu_count(); the request is recorded.
            assert session.engine.requested_workers == 2
            assert session.resume is True


class TestLegacyShims:
    """The deprecated kwargs build the same session — results bit-identical."""

    def test_run_table2_legacy_kwargs_warn_and_match(self, tmp_path):
        from repro.experiments.table2 import run_table2

        with AnalysisSession(config=FAST) as session:
            modern = run_table2(
                scale="reduced",
                benchmarks=["QAOA_line_10"],
                include_lqr=False,
                config=FAST,
                session=session,
            )
        with pytest.warns(DeprecationWarning, match="session="):
            legacy = run_table2(
                scale="reduced",
                benchmarks=["QAOA_line_10"],
                include_lqr=False,
                config=FAST,
                store_path=str(tmp_path / "legacy.jsonl"),
            )
        assert [row.gleipnir_bound for row in legacy.rows] == [
            row.gleipnir_bound for row in modern.rows
        ]

    def test_run_figure14_legacy_kwargs_warn_and_match(self, tmp_path):
        from repro.experiments.figure14 import run_figure14

        with AnalysisSession(config=FAST) as session:
            modern = run_figure14(
                scale="reduced", widths=[1, 2], config=FAST, session=session
            )
        with pytest.warns(DeprecationWarning, match="session="):
            legacy = run_figure14(
                scale="reduced",
                widths=[1, 2],
                config=FAST,
                store_path=str(tmp_path / "legacy.jsonl"),
            )
        assert legacy.bounds() == modern.bounds()

    def test_session_and_legacy_kwargs_are_exclusive(self):
        from repro.errors import ExperimentError
        from repro.experiments.table2 import run_table2

        with AnalysisSession(config=FAST) as session:
            with pytest.raises(ExperimentError):
                run_table2(
                    scale="reduced",
                    benchmarks=["QAOA_line_10"],
                    include_lqr=False,
                    session=session,
                    workers=2,
                )

    def test_default_path_does_not_warn(self):
        from repro.experiments.table2 import run_table2_row
        from repro.programs import table2_benchmarks

        spec = table2_benchmarks("reduced")[0]
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            row = run_table2_row(spec, mps_width=4, config=FAST, include_lqr=False)
        assert row.gleipnir_bound > 0


def test_outcome_from_wire_entry_failure_path():
    entry = {"fingerprint": "f" * 8, "name": "boom", "status": "failed", "result": None}
    outcome = AnalysisOutcome.from_wire_entry(entry)
    assert outcome.status == "error" and not outcome.certified
    with pytest.raises(EngineError):
        outcome.raise_for_status()


class TestReviewRegressions:
    def test_session_from_args_rejects_remote_plus_local_flags(self):
        import argparse

        from repro.api import add_session_arguments, session_from_args

        parser = argparse.ArgumentParser()
        add_session_arguments(parser)
        args = parser.parse_args(
            ["--remote", "http://127.0.0.1:1", "--workers", "8", "--resume"]
        )
        with pytest.raises(EngineError, match="--workers"):
            session_from_args(args)

    def test_as_completed_honors_resume_flag(self, tmp_path):
        circuit = _circuits()[0]
        store = str(tmp_path / "results.jsonl")
        with AnalysisSession(config=FAST, store=store) as session:
            session.analyze(circuit, MODEL)  # populate the store

        # resume=False must re-execute on BOTH surfaces.
        with AnalysisSession(config=FAST, store=store, resume=False) as session:
            list(session.as_completed([session.job(circuit, MODEL)], timeout=120))
            assert session._service.resume is False
            assert session.engine.stats()["last_batch_shards"]["pending_jobs"] == 1

        # resume=True answers from the store on both surfaces.
        with AnalysisSession(config=FAST, store=store, resume=True) as session:
            streamed = dict(session.as_completed([session.job(circuit, MODEL)], timeout=120))
            assert streamed[0].certified
            assert session.engine.stats()["last_batch_shards"] is None  # nothing ran

    def test_derivation_path_uses_session_cache_dir(self, tmp_path):
        circuit = _circuits()[1]
        cache_dir = str(tmp_path / "bounds")
        with AnalysisSession(config=FAST, cache_dir=cache_dir) as session:
            first = session.analyze(circuit, MODEL, derivation=True)
            assert first.sdp_solves > 0
        # A fresh session over the same cache answers every bound from disk —
        # proof the derivation path wrote through the shared persistent cache.
        with AnalysisSession(config=FAST, cache_dir=cache_dir) as session:
            warm = session.analyze(circuit, MODEL)
        assert warm.sdp_solves == 0
        assert warm.bound == first.bound
