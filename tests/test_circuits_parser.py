"""Unit tests for the circuit text format."""

import numpy as np
import pytest

from repro.circuits import Circuit, dumps, loads, parse_circuit, serialize_circuit
from repro.errors import CircuitError
from repro.semantics import simulate_statevector


class TestParsing:
    def test_simple_circuit(self):
        circuit = parse_circuit(
            """
            qubits 2
            h 0
            cx 0 1
            """
        )
        assert circuit.num_qubits == 2
        assert [op.gate.name for op in circuit.operations()] == ["h", "cx"]

    def test_parameters_and_comments(self):
        circuit = parse_circuit(
            """
            # a comment
            qubits 1
            rz(0.5) 0   # trailing comment
            u3(0.1, 0.2, 0.3) 0
            """
        )
        ops = list(circuit.operations())
        assert ops[0].gate.params == (0.5,)
        assert ops[1].gate.params == (0.1, 0.2, 0.3)

    def test_comma_separated_qubits(self):
        circuit = parse_circuit("qubits 2\ncx 0, 1\n")
        assert next(iter(circuit.operations())).qubits == (0, 1)

    def test_if_blocks(self):
        circuit = parse_circuit(
            """
            qubits 2
            h 0
            if 0 {
                x 1
            } else {
                z 1
            }
            """
        )
        assert circuit.has_branches()
        program = circuit.to_program()
        assert program.branch_count() == 2

    def test_missing_header(self):
        with pytest.raises(CircuitError):
            parse_circuit("h 0\n")

    def test_bad_gate_line(self):
        with pytest.raises(CircuitError):
            parse_circuit("qubits 1\nh\n")

    def test_unterminated_if(self):
        with pytest.raises(CircuitError):
            parse_circuit("qubits 1\nif 0 {\nx 0\n")

    def test_unknown_gate(self):
        with pytest.raises(CircuitError):
            parse_circuit("qubits 1\nwat 0\n")


class TestRoundtrip:
    def test_serialise_parse_roundtrip(self):
        circuit = Circuit(3).h(0).cx(0, 1).rz(0.75, 2).swap(1, 2)
        text = serialize_circuit(circuit)
        rebuilt = parse_circuit(text)
        original = simulate_statevector(circuit)
        recovered = simulate_statevector(rebuilt)
        assert np.allclose(original, recovered)

    def test_roundtrip_with_branches(self):
        circuit = Circuit(2).h(0)
        circuit.if_measure(0, lambda c: c.x(1), lambda c: c.z(1))
        text = dumps(circuit)
        rebuilt = loads(text)
        assert rebuilt.has_branches()
        assert "if 0 {" in text

    def test_aliases(self):
        circuit = Circuit(1).h(0)
        assert loads(dumps(circuit)).gate_count() == 1
