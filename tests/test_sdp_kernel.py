"""Tests for the vectorized packed-real SDP kernel (repro.sdp.kernel)."""

import numpy as np
import pytest

from repro.config import SDPConfig
from repro.linalg import identity_channel, maximally_mixed, pure_density, plus_state
from repro.linalg.decompositions import positive_part
from repro.linalg.hermitian import hunvec, hvec, random_hermitian
from repro.noise import amplitude_damping, bit_flip, depolarizing
from repro.sdp import (
    ADMMSolver,
    BlockVector,
    SDPProblem,
    admm_solve_packed,
    admm_solve_packed_batch,
    constrained_diamond_norm,
    constrained_diamond_norms_batch,
    get_layout,
    verify_certificate,
)
from repro.sdp.diamond import _get_template, build_constrained_diamond_sdp
from repro.sdp.kernel import BlockLayout


DIMS_CASES = [(2,), (1,), (3, 1), (4, 4, 2, 1), (2, 3, 2, 1, 1, 5)]


class TestBlockLayout:
    @pytest.mark.parametrize("dims", DIMS_CASES)
    def test_pack_matches_hvec(self, dims, rng):
        """The packed-real embedding is exactly the concatenated hvec map."""
        blocks = [random_hermitian(d, rng=rng) for d in dims]
        layout = get_layout(dims)
        packed = layout.pack_blocks(blocks)
        reference = np.concatenate([hvec(b) for b in blocks])
        assert np.array_equal(packed, reference) or np.allclose(
            packed, reference, atol=0, rtol=0
        )

    @pytest.mark.parametrize("dims", DIMS_CASES)
    def test_roundtrip_exact(self, dims, rng):
        """pack → unpack reproduces Hermitian input to machine precision.

        Diagonals survive bit-exactly; off-diagonals pass through the sqrt(2)
        isometry scaling, which costs at most a couple of ulps.
        """
        blocks = [random_hermitian(d, rng=rng) for d in dims]
        layout = get_layout(dims)
        rebuilt = layout.unpack_blocks(layout.pack_blocks(blocks))
        for original, back in zip(blocks, rebuilt):
            assert np.allclose(back, original, atol=1e-15, rtol=1e-15)
            assert np.array_equal(np.diagonal(back), np.diagonal(original).real)

    @pytest.mark.parametrize("dims", DIMS_CASES)
    def test_unpack_matches_hunvec(self, dims, rng):
        layout = get_layout(dims)
        vector = rng.normal(size=layout.total_real_dim)
        blocks = layout.unpack_blocks(vector)
        offset = 0
        for d, block in zip(dims, blocks):
            assert np.allclose(block, hunvec(vector[offset : offset + d * d], d))
            offset += d * d

    @pytest.mark.parametrize("dims", DIMS_CASES)
    def test_project_psd_matches_positive_part(self, dims, rng):
        """The fused batched projection equals per-block positive_part."""
        layout = get_layout(dims)
        vector = rng.normal(size=layout.total_real_dim)
        projected = layout.unpack_blocks(layout.project_psd(vector))
        for block, reference_input in zip(projected, layout.unpack_blocks(vector)):
            if reference_input.shape == (1, 1):
                expected = np.array([[max(0.0, reference_input[0, 0].real)]])
            else:
                expected = positive_part(reference_input)
            assert np.allclose(block, expected, atol=1e-12)

    def test_project_psd_batched_leading_dims(self, rng):
        """A stacked (K, n) input projects each row independently."""
        layout = get_layout((3, 2, 1))
        stacked = rng.normal(size=(5, layout.total_real_dim))
        batched = layout.project_psd(stacked)
        for row in range(5):
            assert np.allclose(batched[row], layout.project_psd(stacked[row]))

    def test_inner_product_preserved(self, rng):
        """The packed embedding is an isometry for the trace inner product."""
        dims = (3, 2)
        a = BlockVector([random_hermitian(d, rng=rng) for d in dims])
        b = BlockVector([random_hermitian(d, rng=rng) for d in dims])
        assert np.isclose(a.to_real() @ b.to_real(), a.inner(b), atol=1e-10)

    def test_layout_cache_identity(self):
        assert get_layout((4, 4, 2, 1)) is get_layout([4, 4, 2, 1])

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            BlockLayout((0, 2))


class TestBatchedADMM:
    def _problems(self):
        requests = []
        for p in (1e-3, 3e-3, 7e-3):
            requests.append(
                (
                    bit_flip(p).choi() - identity_channel(1).choi(),
                    pure_density(plus_state(1)),
                    0.9,
                )
            )
            requests.append(
                (
                    depolarizing(p).choi() - identity_channel(1).choi(),
                    maximally_mixed(1),
                    0.4,
                )
            )
            requests.append(
                (amplitude_damping(p).choi() - identity_channel(1).choi(), None, 0.0)
            )
        return requests

    def test_batch_matches_single_solves(self):
        """Lock-step batch results equal one-at-a-time solves."""
        config = SDPConfig(max_iterations=800, tolerance=1e-6)
        requests = self._problems()
        batch = constrained_diamond_norms_batch(requests, config=config)
        for (choi, operator, bound_c), batched in zip(requests, batch):
            single = constrained_diamond_norm(
                choi,
                constraint_operator=operator,
                constraint_bound=bound_c,
                config=config,
            )
            assert batched.value == pytest.approx(single.value, abs=1e-9)
            assert batched.iterations == single.iterations
            assert verify_certificate(batched.certificate, batched.choi)

    def test_batch_mixed_shapes(self):
        """Constrained and unconstrained requests group into separate runs."""
        config = SDPConfig(max_iterations=400, tolerance=1e-5)
        requests = self._problems()
        bounds = constrained_diamond_norms_batch(requests, config=config)
        assert all(b.value >= 0 for b in bounds)
        assert all(b.method == "certified" for b in bounds)

    def test_batch_empty(self):
        assert constrained_diamond_norms_batch([]) == []
        assert admm_solve_packed_batch([]) == []

    def test_batch_rejects_mixed_layouts(self):
        template_1q = _get_template(4, True)
        template_1q_free = _get_template(4, False)
        rho = maximally_mixed(1)
        choi = bit_flip(0.01).choi() - identity_channel(1).choi()
        constrained = template_1q.instantiate(choi, rho, 0.4)
        unconstrained = template_1q_free.instantiate(choi, None, 0.0)
        with pytest.raises(ValueError):
            admm_solve_packed_batch([constrained, unconstrained])

    def test_zero_choi_in_batch(self):
        bounds = constrained_diamond_norms_batch([(np.zeros((4, 4)), None, 0.0)])
        assert bounds[0].value == 0.0
        assert bounds[0].method == "exact-zero"


class TestTemplates:
    @pytest.mark.parametrize("use_constraint", [False, True])
    def test_template_matches_explicit_assembly(self, use_constraint):
        """The template's packed problem equals the explicitly built SDP."""
        choi = bit_flip(0.02).choi() - identity_channel(1).choi()
        choi = (choi + choi.conj().T) / 2
        operator = maximally_mixed(1) if use_constraint else None
        bound_c = 0.45 if use_constraint else 0.0

        problem = build_constrained_diamond_sdp(choi, operator, bound_c)
        template = _get_template(choi.shape[0], use_constraint)
        packed = template.instantiate(choi, operator, bound_c)

        assert np.allclose(packed.a, problem.constraint_matrix(), atol=1e-12)
        assert np.allclose(packed.b, problem.constraint_values(), atol=1e-12)
        assert np.allclose(packed.c, problem.objective_vector(), atol=1e-12)

    def test_mismatched_operator_shape_rejected(self):
        """The template path keeps the explicit builder's shape validation."""
        from repro.errors import SDPError

        choi = bit_flip(0.02).choi() - identity_channel(1).choi()
        with pytest.raises(SDPError):
            constrained_diamond_norm(
                choi,
                constraint_operator=np.eye(3),
                constraint_bound=0.5,
                config=SDPConfig(max_iterations=100, tolerance=1e-4),
            )

    def test_template_factor_solves_normal_system(self):
        """The rank-one-updated Cholesky factor inverts A A* correctly."""
        import scipy.linalg

        choi = depolarizing(0.01).choi() - identity_channel(1).choi()
        operator = pure_density(plus_state(1))
        template = _get_template(4, True)
        packed = template.instantiate((choi + choi.conj().T) / 2, operator, 0.8)
        normal = packed.a @ packed.a.T
        rhs = np.arange(1.0, normal.shape[0] + 1)
        solved = scipy.linalg.cho_solve(packed.factor, rhs)
        assert np.allclose(normal @ solved, rhs, atol=1e-6)

    def test_packed_solver_agrees_with_object_solver(self):
        """admm_solve_packed and ADMMSolver produce the same iterates."""
        c = np.diag([3.0, 1.0, 2.0]).astype(complex)
        problem = SDPProblem([3], BlockVector([c]))
        problem.add_constraint([np.eye(3, dtype=complex)], 1.0, label="trace")
        object_result = ADMMSolver(
            problem, max_iterations=2000, tolerance=1e-8
        ).solve()
        from repro.sdp import PackedSDP

        packed = PackedSDP.assemble(
            problem.constraint_matrix(),
            problem.constraint_values(),
            problem.objective_vector(),
            get_layout(problem.block_dims),
        )
        raw = admm_solve_packed(packed, max_iterations=2000, tolerance=1e-8)
        assert raw.iterations == object_result.iterations
        assert np.isclose(raw.primal_objective, object_result.primal_objective)
        assert np.isclose(raw.dual_objective, object_result.dual_objective)
