"""Unit tests for the noisy semantics and the exact-error oracle."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.errors import SimulationError
from repro.linalg import trace_distance, basis_state
from repro.noise import NoiseModel, bit_flip
from repro.semantics import (
    NoisyDensityMatrixSimulator,
    exact_program_error,
    simulate_density,
    simulate_noisy_density,
)


class TestNoisySemantics:
    def test_noiseless_model_matches_ideal(self, ghz2_circuit):
        noisy = simulate_noisy_density(ghz2_circuit, NoiseModel.noiseless())
        ideal = simulate_density(ghz2_circuit)
        assert np.allclose(noisy, ideal, atol=1e-12)

    def test_full_bit_flip_on_single_gate(self):
        circuit = Circuit(1).x(0)
        model = NoiseModel.uniform_bit_flip(1.0)
        rho = simulate_noisy_density(circuit, model)
        # The gate flips |0> to |1>, then the noise flips it back with p=1.
        assert np.isclose(rho[0, 0].real, 1.0)

    def test_two_qubit_noise_on_first_operand(self):
        circuit = Circuit(2).cx(0, 1)
        model = NoiseModel.uniform_bit_flip(1.0)
        rho = simulate_noisy_density(circuit, model, initial_state=basis_state("00"))
        # CX keeps |00>; noise flips the first (control) qubit.
        assert np.isclose(rho[2, 2].real, 1.0)

    def test_probabilistic_mixture(self):
        circuit = Circuit(1).x(0)
        model = NoiseModel.uniform_bit_flip(0.25)
        rho = simulate_noisy_density(circuit, model)
        assert np.isclose(rho[3 % 2, 3 % 2].real, 0.75)
        assert np.isclose(rho[0, 0].real, 0.25)


class TestExactError:
    def test_zero_for_noiseless(self, ghz3_circuit):
        assert exact_program_error(ghz3_circuit, NoiseModel.noiseless()).__abs__() < 1e-12

    def test_single_gate_error_equals_p(self):
        circuit = Circuit(1).x(0)
        p = 0.01
        error = exact_program_error(circuit, NoiseModel.uniform_bit_flip(p))
        assert np.isclose(error, p, atol=1e-10)

    def test_trace_norm_convention(self):
        circuit = Circuit(1).x(0)
        p = 0.02
        error = exact_program_error(
            circuit, NoiseModel.uniform_bit_flip(p), convention="trace_norm"
        )
        assert np.isclose(error, 2 * p, atol=1e-10)

    def test_unknown_convention(self):
        with pytest.raises(SimulationError):
            exact_program_error(Circuit(1).x(0), NoiseModel.noiseless(), convention="bogus")

    def test_error_grows_with_gate_count(self):
        p = 1e-3
        model = NoiseModel.uniform_bit_flip(p)
        short = Circuit(1).x(0)
        longer = Circuit(1).x(0).x(0).x(0)
        assert exact_program_error(longer, model) > exact_program_error(short, model)

    def test_invisible_noise_on_plus_state(self):
        # Bit flips after RX gates acting on |+> do not change the state.
        circuit = Circuit(1).h(0).rx(0.4, 0)
        model = NoiseModel.noiseless()
        model.add_gate_rule("rx", bit_flip(0.3))
        error = exact_program_error(circuit, model)
        assert error < 1e-10


class TestAgainstDirectConstruction:
    def test_noisy_simulator_matches_manual_channel(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        p = 0.1
        model = NoiseModel.uniform_bit_flip(p)
        rho = NoisyDensityMatrixSimulator(model).run(circuit)
        # Manual: apply H, flip q0 with prob p, apply CX, flip q0 with prob p.
        ideal = simulate_density(circuit)
        assert np.isclose(np.trace(rho).real, 1.0)
        assert trace_distance(rho, ideal) <= 2 * p + 1e-9
