"""Tests for the program-level bound scheduler and the cache's new layers."""

import numpy as np
import pytest

from helpers import random_circuit

from repro.circuits import Circuit
from repro.circuits.program import IfMeasure, Skip, seq
from repro.config import AnalysisConfig, SDPConfig
from repro.core.analyzer import GleipnirAnalyzer
from repro.linalg import HADAMARD, pure_density, zero_state
from repro.noise import bit_flip
from repro.sdp import GateBoundCache, gate_error_bound


FAST_SDP = SDPConfig(max_iterations=400, tolerance=1e-5)


def _config(**kwargs) -> AnalysisConfig:
    base = dict(mps_width=8, sdp=FAST_SDP)
    base.update(kwargs)
    return AnalysisConfig(**base)


class TestSchedulerEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_sequential_analyzer(self, seed, bit_flip_model):
        """Scheduled and sequential analyses certify the same bounds."""
        circuit = random_circuit(4, 24, seed=seed)
        scheduled = GleipnirAnalyzer(bit_flip_model, _config(scheduler=True)).analyze(
            circuit
        )
        sequential = GleipnirAnalyzer(
            bit_flip_model, _config(scheduler=False)
        ).analyze(circuit)
        # Identical solves run in both paths (batch iterates in lock-step),
        # so the certified bounds agree to numerical noise.
        assert scheduled.error_bound == pytest.approx(
            sequential.error_bound, rel=1e-9, abs=1e-12
        )
        assert scheduled.num_gates == sequential.num_gates
        assert scheduled.sdp_solves == sequential.sdp_solves
        assert scheduled.scheduled_solves == scheduled.sdp_solves

    def test_matches_sequential_with_branches(self, bit_flip_model):
        """The pre-pass mirrors measurement branching, including unreachable
        branches analysed under the vacuous predicate."""
        then_branch = Circuit(2).x(1).to_program()
        else_branch = Circuit(2).h(1).to_program()
        program = seq(
            Circuit(2).h(0).to_program(),
            IfMeasure(0, then_branch, else_branch),
        )
        scheduled = GleipnirAnalyzer(bit_flip_model, _config(scheduler=True)).analyze(
            program, num_qubits=2
        )
        sequential = GleipnirAnalyzer(
            bit_flip_model, _config(scheduler=False)
        ).analyze(program, num_qubits=2)
        assert scheduled.error_bound == pytest.approx(
            sequential.error_bound, rel=1e-9, abs=1e-12
        )
        assert scheduled.num_branches == sequential.num_branches

    def test_unreachable_branch_collected(self, bit_flip_model):
        """A branch with approximation probability 0 is still pre-solved."""
        program = IfMeasure(0, Skip(), Circuit(1).x(0).to_program())
        scheduled = GleipnirAnalyzer(bit_flip_model, _config(scheduler=True)).analyze(
            program, num_qubits=1
        )
        sequential = GleipnirAnalyzer(
            bit_flip_model, _config(scheduler=False)
        ).analyze(program, num_qubits=1)
        assert scheduled.error_bound == pytest.approx(
            sequential.error_bound, rel=1e-9, abs=1e-12
        )

    def test_parallel_workers_sound(self, bit_flip_model):
        """Thread-parallel solving yields the same certified bounds."""
        circuit = random_circuit(4, 24, seed=5)
        serial = GleipnirAnalyzer(
            bit_flip_model, _config(scheduler=True, scheduler_workers=1)
        ).analyze(circuit)
        parallel = GleipnirAnalyzer(
            bit_flip_model, _config(scheduler=True, scheduler_workers=4)
        ).analyze(circuit)
        assert parallel.error_bound == pytest.approx(
            serial.error_bound, rel=1e-9, abs=1e-12
        )

    def test_derivation_verifies(self, bit_flip_model):
        """Every certificate in a scheduled derivation re-verifies."""
        circuit = random_circuit(3, 12, seed=9)
        result = GleipnirAnalyzer(bit_flip_model, _config(scheduler=True)).analyze(
            circuit
        )
        assert result.derivation is not None
        result.derivation.check()  # raises on any unsound step

    def test_scheduler_skipped_without_cache(self, bit_flip_model):
        """With the SDP cache off the scheduler must not double-solve."""
        circuit = random_circuit(3, 8, seed=2)
        config = _config(
            scheduler=True,
            sdp=SDPConfig(max_iterations=400, tolerance=1e-5, cache=False),
        )
        result = GleipnirAnalyzer(bit_flip_model, config).analyze(circuit)
        assert result.scheduled_solves == 0
        assert result.error_bound > 0


class TestDominanceCache:
    def test_dominating_entry_answers_stronger_request(self):
        cache = GateBoundCache(decimals=6, dominance=True)
        rho = pure_density(zero_state(1))
        key_parts = ("h", "model", "noise", ())
        weak = cache.lookup_or_compute(
            key_parts, HADAMARD, bit_flip(1e-3), rho, 0.05, config=FAST_SDP
        )
        answered = cache.lookup_or_compute(
            key_parts, HADAMARD, bit_flip(1e-3), rho, 0.01, config=FAST_SDP
        )
        assert cache.misses == 1
        assert cache.dominance_hits == 1
        assert answered.value == weak.value

    def test_dominance_never_looser_than_its_own_certificate(self):
        """A dominance answer is the weaker predicate's *certified* value, so
        it must dominate a fresh solve of the stronger request."""
        cache = GateBoundCache(decimals=6, dominance=True)
        rho = pure_density(zero_state(1))
        key_parts = ("h", "model", "noise", ())
        cache.lookup_or_compute(
            key_parts, HADAMARD, bit_flip(1e-3), rho, 0.05, config=FAST_SDP
        )
        answered = cache.lookup_or_compute(
            key_parts, HADAMARD, bit_flip(1e-3), rho, 0.01, config=FAST_SDP
        )
        fresh = gate_error_bound(
            HADAMARD, bit_flip(1e-3), rho, 0.01, config=FAST_SDP
        )
        assert answered.value + 1e-12 >= fresh.value

    def test_stronger_entry_does_not_answer_weaker_request(self):
        """A bound cached for a *smaller* δ is not sound for a larger one."""
        cache = GateBoundCache(decimals=6, dominance=True)
        rho = pure_density(zero_state(1))
        key_parts = ("h", "model", "noise", ())
        cache.lookup_or_compute(
            key_parts, HADAMARD, bit_flip(1e-3), rho, 0.01, config=FAST_SDP
        )
        cache.lookup_or_compute(
            key_parts, HADAMARD, bit_flip(1e-3), rho, 0.05, config=FAST_SDP
        )
        assert cache.dominance_hits == 0
        assert cache.misses == 2

    def test_peek_does_not_touch_counters(self):
        """The scheduler's peek must leave all hit statistics untouched."""
        cache = GateBoundCache(decimals=6, dominance=True)
        rho = pure_density(zero_state(1))
        key_parts = ("h", "model", "noise", ())
        cache.lookup_or_compute(
            key_parts, HADAMARD, bit_flip(1e-3), rho, 0.05, config=FAST_SDP
        )
        stronger_key, _, _ = cache.quantise_key(key_parts, rho, 0.01)
        assert cache.peek(stronger_key) is not None  # dominance answer
        assert cache.hits == 0
        assert cache.dominance_hits == 0
        assert cache.persistent_hits == 0

    def test_dominance_disabled(self):
        cache = GateBoundCache(decimals=6, dominance=False)
        rho = pure_density(zero_state(1))
        key_parts = ("h", "model", "noise", ())
        cache.lookup_or_compute(
            key_parts, HADAMARD, bit_flip(1e-3), rho, 0.05, config=FAST_SDP
        )
        cache.lookup_or_compute(
            key_parts, HADAMARD, bit_flip(1e-3), rho, 0.01, config=FAST_SDP
        )
        assert cache.misses == 2
        assert cache.dominance_hits == 0


class TestPersistentCache:
    def test_second_run_starts_warm(self, tmp_path, bit_flip_model):
        circuit = random_circuit(4, 16, seed=3)
        config = _config(
            sdp=SDPConfig(
                max_iterations=400,
                tolerance=1e-5,
                persistent_cache_path=str(tmp_path),
            )
        )
        first = GleipnirAnalyzer(bit_flip_model, config).analyze(circuit)
        assert first.sdp_solves > 0
        assert len(list(tmp_path.iterdir())) == first.sdp_solves
        second = GleipnirAnalyzer(bit_flip_model, config).analyze(circuit)
        assert second.sdp_solves == 0
        assert second.error_bound == first.error_bound

    def test_corrupt_entries_are_ignored(self, tmp_path, bit_flip_model):
        circuit = random_circuit(3, 8, seed=4)
        config = _config(
            sdp=SDPConfig(
                max_iterations=400,
                tolerance=1e-5,
                persistent_cache_path=str(tmp_path),
            )
        )
        first = GleipnirAnalyzer(bit_flip_model, config).analyze(circuit)
        for entry in tmp_path.iterdir():
            entry.write_bytes(b"not an npz file")
        second = GleipnirAnalyzer(bit_flip_model, config).analyze(circuit)
        assert second.sdp_solves == first.sdp_solves
        assert second.error_bound == pytest.approx(
            first.error_bound, rel=1e-9, abs=1e-12
        )

    def test_tampered_certificate_rejected(self, tmp_path):
        """A disk entry whose certificate no longer verifies is discarded."""
        cache = GateBoundCache(decimals=6, store_path=str(tmp_path))
        rho = pure_density(zero_state(1))
        key_parts = ("h", "model", "noise", ())
        cache.lookup_or_compute(
            key_parts, HADAMARD, bit_flip(1e-3), rho, 0.01, config=FAST_SDP
        )
        (path,) = list(tmp_path.iterdir())
        with np.load(path, allow_pickle=False) as data:
            payload = dict(data)
        payload["value"] = np.array(payload["value"] / 10.0)  # claim a tighter bound
        np.savez(path.with_suffix(""), **payload)

        fresh_cache = GateBoundCache(decimals=6, store_path=str(tmp_path))
        fresh_cache.lookup_or_compute(
            key_parts, HADAMARD, bit_flip(1e-3), rho, 0.01, config=FAST_SDP
        )
        # The tampered entry must not be trusted: the bound is recomputed.
        assert fresh_cache.persistent_hits == 0
        assert fresh_cache.misses == 1

    def test_internally_consistent_fake_entry_rejected(self, tmp_path):
        """An entry whose certificate verifies against its *own* stored choi
        but not against the request's recomputed problem must be rejected."""
        rho = pure_density(zero_state(1))
        key_parts = ("h", "model", "noise", ())
        cache = GateBoundCache(decimals=6, store_path=str(tmp_path))
        cache.lookup_or_compute(
            key_parts, HADAMARD, bit_flip(1e-3), rho, 0.01, config=FAST_SDP
        )
        (path,) = list(tmp_path.iterdir())
        with np.load(path, allow_pickle=False) as data:
            payload = dict(data)
        # Zero problem + zero certificate + value 0: internally consistent.
        payload["choi"] = np.zeros_like(payload["choi"])
        payload["z"] = np.zeros_like(payload["z"])
        payload["y"] = np.array(0.0)
        payload["constraint_operator"] = np.empty(0)
        payload["value"] = np.array(0.0)
        np.savez(path.with_suffix(""), **payload)

        fresh = GateBoundCache(decimals=6, store_path=str(tmp_path))
        bound = fresh.lookup_or_compute(
            key_parts, HADAMARD, bit_flip(1e-3), rho, 0.01, config=FAST_SDP
        )
        assert fresh.persistent_hits == 0
        assert fresh.misses == 1
        assert bound.value > 0

    def test_store_never_answers_for_a_different_channel(self, tmp_path):
        """Disk entries are keyed by problem content, not channel names: two
        differently parametrised channels sharing a name must not collide."""
        rho = pure_density(zero_state(1))
        key_parts = ("h", "model", "noise", ())  # identical nominal key

        weak_cache = GateBoundCache(decimals=6, store_path=str(tmp_path))
        weak = weak_cache.lookup_or_compute(
            key_parts, HADAMARD, bit_flip(1e-3), rho, 0.0, config=FAST_SDP
        )
        strong_cache = GateBoundCache(decimals=6, store_path=str(tmp_path))
        strong = strong_cache.lookup_or_compute(
            key_parts, HADAMARD, bit_flip(0.2), rho, 0.0, config=FAST_SDP
        )
        assert strong_cache.persistent_hits == 0
        assert strong.value > 100 * weak.value  # p=0.2 vs p=1e-3

    def test_noise_convention_in_store_key(self, tmp_path):
        """noise_after_gate flips the problem; the store must not conflate."""
        rho = pure_density(zero_state(1))
        key_parts = ("h", "model", "noise", ())
        first = GateBoundCache(decimals=6, store_path=str(tmp_path))
        first.lookup_or_compute(
            key_parts,
            HADAMARD,
            bit_flip(1e-3),
            rho,
            0.0,
            noise_after_gate=True,
            config=FAST_SDP,
        )
        second = GateBoundCache(decimals=6, store_path=str(tmp_path))
        second.lookup_or_compute(
            key_parts,
            HADAMARD,
            bit_flip(1e-3),
            rho,
            0.0,
            noise_after_gate=False,
            config=FAST_SDP,
        )
        assert second.persistent_hits == 0
        assert second.misses == 1
