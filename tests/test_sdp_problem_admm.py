"""Tests for the standard-form SDP representation and the ADMM solver."""

import numpy as np
import pytest

from repro.errors import SDPError
from repro.sdp import ADMMSolver, BlockVector, SDPProblem, solve_sdp


def _scalar_lp_problem():
    """min x0 + 2 x1  s.t.  x0 + x1 = 1, x >= 0 (as 1x1 PSD blocks)."""
    objective = BlockVector([np.array([[1.0]]), np.array([[2.0]])])
    problem = SDPProblem([1, 1], objective)
    problem.add_constraint([np.array([[1.0]]), np.array([[1.0]])], 1.0, label="sum")
    return problem


def _eigenvalue_problem():
    """min tr(C X) s.t. tr(X) = 1, X >= 0  ==> smallest eigenvalue of C."""
    c = np.diag([3.0, 1.0, 2.0]).astype(complex)
    problem = SDPProblem([3], BlockVector([c]))
    problem.add_constraint([np.eye(3, dtype=complex)], 1.0, label="trace")
    return problem, 1.0


class TestBlockVector:
    def test_roundtrip(self):
        blocks = BlockVector([np.array([[1.0, 1j], [-1j, 2.0]]), np.array([[3.0]])])
        vector = blocks.to_real()
        rebuilt = BlockVector.from_real(vector, [2, 1])
        assert np.allclose(rebuilt.blocks[0], blocks.blocks[0])
        assert np.allclose(rebuilt.blocks[1], blocks.blocks[1])

    def test_inner_product(self):
        a = BlockVector([np.eye(2)])
        b = BlockVector([np.diag([1.0, 3.0])])
        assert np.isclose(a.inner(b), 4.0)

    def test_zeros(self):
        zeros = BlockVector.zeros([2, 3])
        assert zeros.blocks[0].shape == (2, 2)
        assert zeros.blocks[1].shape == (3, 3)


class TestProblemConstruction:
    def test_validation(self):
        with pytest.raises(SDPError):
            SDPProblem([2], BlockVector([np.eye(3)]))
        with pytest.raises(SDPError):
            SDPProblem([0], BlockVector([np.zeros((0, 0))]))
        problem = _scalar_lp_problem()
        with pytest.raises(SDPError):
            problem.add_constraint([np.eye(1)], 1.0)
        with pytest.raises(SDPError):
            problem.add_constraint([np.eye(2), np.eye(1)], 1.0)

    def test_dense_views(self):
        problem = _scalar_lp_problem()
        assert problem.constraint_matrix().shape == (1, 2)
        assert problem.constraint_values().tolist() == [1.0]
        assert problem.real_dimension == 2
        assert problem.num_constraints == 1

    def test_no_constraints_rejected_by_solver(self):
        problem = SDPProblem([1], BlockVector([np.array([[1.0]])]))
        with pytest.raises(SDPError):
            ADMMSolver(problem)


class TestADMM:
    def test_linear_program(self):
        result = solve_sdp(_scalar_lp_problem(), max_iterations=2000, tolerance=1e-8)
        assert result.converged
        assert np.isclose(result.primal_objective, 1.0, atol=1e-5)
        assert np.isclose(result.dual_objective, 1.0, atol=1e-5)
        assert result.x.blocks[0][0, 0].real == pytest.approx(1.0, abs=1e-4)

    def test_smallest_eigenvalue_sdp(self):
        problem, expected = _eigenvalue_problem()
        result = solve_sdp(problem, max_iterations=3000, tolerance=1e-8)
        assert np.isclose(result.primal_objective, expected, atol=1e-5)
        # Optimal X is the projector onto the smallest-eigenvalue eigenvector.
        assert result.x.blocks[0][1, 1].real == pytest.approx(1.0, abs=1e-3)

    def test_duality_gap_reported(self):
        problem, _ = _eigenvalue_problem()
        result = solve_sdp(problem, max_iterations=2000, tolerance=1e-7)
        assert result.duality_gap < 1e-5

    def test_warm_start(self):
        problem, _ = _eigenvalue_problem()
        cold = solve_sdp(problem, max_iterations=1500, tolerance=1e-9)
        warm = solve_sdp(problem, max_iterations=1500, tolerance=1e-9, warm_start=cold)
        assert warm.iterations <= cold.iterations + 50

    def test_primal_iterate_is_psd(self):
        problem, _ = _eigenvalue_problem()
        result = solve_sdp(problem, max_iterations=500)
        eigenvalues = np.linalg.eigvalsh(result.x.blocks[0])
        assert eigenvalues.min() >= -1e-9
