"""Sharded replica serving: supervisor, router, and shard-aware client.

The deployment contract under test: ``N`` replica processes behind the
fingerprint router must be **bit-identical** to one in-process engine — the
same jobs produce the same ``error_bound`` to the last ulp, whether they ran
locally, through the router, or via a shard-aware :class:`repro.api.Client`
talking to the replicas directly.  Sharding itself is pure content
addressing (``int(fingerprint, 16) % N``), so the test also pins that the
client, the router, and the supervisor all compute the same function.
"""

import json
import threading
import urllib.request

import pytest

from repro.api import AnalysisSession, Client
from repro.circuits import Circuit
from repro.config import AnalysisConfig, SDPConfig
from repro.engine.replicas import ReplicaSet, ShardRouter, shard_index, shard_location
from repro.engine.spec import AnalysisJob
from repro.errors import EngineError
from repro.noise import NoiseModel

FAST = AnalysisConfig(mps_width=4, sdp=SDPConfig(max_iterations=200, tolerance=1e-4))
MODEL = NoiseModel.uniform_bit_flip(1e-3)


def _job(name: str = "ghz2", *, num_qubits: int = 2) -> AnalysisJob:
    circuit = Circuit(num_qubits, name=name).h(0).cx(0, 1)
    for q in range(2, num_qubits):
        circuit.cx(q - 1, q)
    return AnalysisJob.from_circuit(circuit, MODEL, config=FAST)


class TestShardFunctions:
    def test_shard_index_is_content_addressing(self):
        fingerprint = _job().fingerprint()
        assert shard_index(fingerprint, 2) == int(fingerprint, 16) % 2
        assert shard_index(fingerprint, 1) == 0

    @pytest.mark.parametrize(
        "url, index, expected",
        [
            ("results.jsonl", 0, "results.r0.jsonl"),
            ("jsonl://out/results.jsonl", 2, "jsonl://out/results.r2.jsonl"),
            ("sqlite:///state/outcomes.sqlite", 1, "sqlite:///state/outcomes.r1.sqlite"),
            ("sqlite:////abs/outcomes.sqlite", 1, "sqlite:////abs/outcomes.r1.sqlite"),
            ("memory://shared", 3, "memory://shared"),
            ("plain_no_ext", 1, "plain_no_ext.r1"),
        ],
    )
    def test_shard_location(self, url, index, expected):
        assert shard_location(url, index) == expected

    def test_client_shard_matches_router_shard(self):
        client = Client(["http://a:1", "http://b:2"])
        for num_qubits in (2, 3, 4):
            fingerprint = _job(num_qubits=num_qubits).fingerprint()
            assert client.shard_of(fingerprint) == shard_index(fingerprint, 2)


class TestClientRetries:
    def test_retries_off_by_default_fails_fast(self):
        client = Client("http://127.0.0.1:9")  # port 9: nothing listens
        with pytest.raises(EngineError, match="cannot reach"):
            client.capabilities()
        assert client.requests_sent == 1

    def test_bounded_retries_count_attempts(self):
        client = Client("http://127.0.0.1:9", retries=2, retry_base_delay=0.01)
        with pytest.raises(EngineError, match="cannot reach"):
            client.capabilities()
        assert client.requests_sent == 3  # 1 original + 2 retries

    def test_negative_retries_rejected(self):
        with pytest.raises(EngineError):
            Client("http://127.0.0.1:9", retries=-1)


@pytest.fixture(scope="module")
def deployment(tmp_path_factory):
    """Two live replica processes plus a router in this process."""
    tmp_path = tmp_path_factory.mktemp("replicas")
    store = str(tmp_path / "results.jsonl")
    replica_set = ReplicaSet(
        2,
        [
            ["--workers", "1", "--store", shard_location(store, index)]
            for index in range(2)
        ],
    )
    urls = replica_set.start()
    router = ShardRouter(urls, "127.0.0.1", 0)
    thread = threading.Thread(target=router.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{router.server_address[1]}"
    yield base, urls
    router.shutdown()
    thread.join(timeout=10)
    router.server_close()
    replica_set.stop()


class TestShardedDeployment:
    JOBS = staticmethod(
        lambda: [_job("ghz2"), _job("ghz3", num_qubits=3), _job("ghz4", num_qubits=4)]
    )

    def test_router_batch_bit_identical_to_in_process(self, deployment):
        base, _urls = deployment
        jobs = self.JOBS()
        client = Client(base)
        entries = client.submit(jobs)
        assert len(entries) == 3
        routed = {
            entry["fingerprint"]: client.wait(entry["fingerprint"], timeout=300)
            for entry in entries
        }
        with AnalysisSession(config=FAST) as local:
            local_outcomes = local.analyze_batch(jobs)
        for outcome in local_outcomes:
            assert routed[outcome.fingerprint]["status"] == "done"
            # Bit-identical across the process boundary, not approximately equal.
            assert (
                routed[outcome.fingerprint]["result"]["error_bound"] == outcome.bound
            )

    def test_router_tags_entries_with_owning_shard(self, deployment):
        base, _urls = deployment
        client = Client(base)
        entries = client.submit(self.JOBS())
        for entry in entries:
            assert entry["shard"] == shard_index(entry["fingerprint"], 2)

    def test_shard_aware_client_skips_the_router(self, deployment):
        base, urls = deployment
        jobs = self.JOBS()
        routed = Client(base)
        sharded = Client(urls)
        routed_entries = routed.submit(jobs)
        sharded_entries = sharded.submit(jobs)
        for via_router, via_shards in zip(routed_entries, sharded_entries):
            assert via_router["fingerprint"] == via_shards["fingerprint"]
            assert via_router["shard"] == via_shards["shard"]
            done = sharded.wait(via_shards["fingerprint"], timeout=300)
            assert done["status"] == "done"

    def test_each_replica_reports_its_shard_gauge(self, deployment):
        _base, urls = deployment
        for expected_shard, url in enumerate(urls):
            with urllib.request.urlopen(url + "/v1/metrics", timeout=30) as response:
                exposition = response.read().decode()
            values = [
                float(line.split()[1])
                for line in exposition.splitlines()
                if line.startswith("repro_replica_shard ")
            ]
            assert values == [float(expected_shard)]

    def test_router_healthz_aggregates_replicas(self, deployment):
        base, _urls = deployment
        with urllib.request.urlopen(base + "/v1/healthz", timeout=30) as response:
            health = json.loads(response.read())
        assert health["status"] == "ok"
        assert health["replica_count"] == 2
        assert [replica["shard"] for replica in health["replicas"]] == [0, 1]

    def test_router_capabilities_advertise_sharding(self, deployment):
        base, _urls = deployment
        with urllib.request.urlopen(base + "/v1/capabilities", timeout=30) as response:
            capabilities = json.loads(response.read())
        assert capabilities["router"]["replicas"] == 2
        assert "int(fingerprint, 16)" in capabilities["router"]["sharding"]
