"""Gate application on MPS: exactness, truncation accounting, swap routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit
from repro.errors import MPSError
from repro.linalg import CNOT, HADAMARD, PAULI_X, ghz_state, pure_density, trace_norm_distance
from repro.mps import MPS, split_theta, TruncationInfo
from repro.semantics import simulate_statevector

from helpers import random_circuit


class TestSingleQubitGates:
    def test_exact_and_error_free(self):
        mps = MPS.zero_state(2)
        info = mps.apply_single_qubit_gate(PAULI_X, 1)
        assert info.trace_norm_error == 0.0
        assert np.isclose(mps.amplitude("01"), 1.0)

    def test_invalid_shape(self):
        with pytest.raises(MPSError):
            MPS.zero_state(2).apply_single_qubit_gate(CNOT, 0)

    def test_site_bounds(self):
        with pytest.raises(MPSError):
            MPS.zero_state(2).apply_single_qubit_gate(PAULI_X, 5)


class TestTwoQubitGates:
    def test_ghz_with_width_two_is_exact(self):
        """The w=2 walk-through of Section 5.3."""
        mps = MPS.zero_state(2)
        mps.max_bond = 2
        mps.apply_single_qubit_gate(HADAMARD, 0)
        info = mps.apply_two_site_gate(CNOT, 0)
        assert not info.truncated
        assert np.allclose(np.abs(mps.to_statevector()), np.abs(ghz_state(2)), atol=1e-10)

    def test_ghz_with_width_one_truncates_to_sqrt2(self):
        """The w=1 walk-through of Section 5.3: output |00> and delta = sqrt(2)."""
        mps = MPS.zero_state(2)
        mps.max_bond = 1
        mps.apply_single_qubit_gate(HADAMARD, 0)
        info = mps.apply_two_site_gate(CNOT, 0)
        assert np.isclose(info.trace_norm_error, np.sqrt(2.0))
        assert np.isclose(abs(mps.amplitude("00")), 1.0)
        assert np.isclose(mps.norm(), 1.0)

    def test_gate_on_reversed_operands(self):
        mps = MPS.from_product_state("01")
        mps.apply_gate(CNOT, [1, 0])  # control is qubit 1
        assert np.isclose(abs(mps.amplitude("11")), 1.0)

    def test_distant_gate_routes_and_returns(self):
        mps = MPS.zero_state(4)
        mps.apply_single_qubit_gate(HADAMARD, 0)
        records = mps.apply_gate(CNOT, [0, 3])
        assert len(records) > 1  # swaps + gate + swaps
        state = mps.to_statevector()
        expected = simulate_statevector(Circuit(4).h(0).cx(0, 3))
        assert np.allclose(np.abs(state), np.abs(expected), atol=1e-10)

    def test_swap_sites(self):
        mps = MPS.from_product_state("10")
        mps.swap_sites(0)
        assert np.isclose(abs(mps.amplitude("01")), 1.0)

    def test_bad_gate_requests(self):
        mps = MPS.zero_state(3)
        with pytest.raises(MPSError):
            mps.apply_two_site_gate(np.eye(2), 0)
        with pytest.raises(MPSError):
            mps.apply_two_site_gate(CNOT, 2)
        with pytest.raises(MPSError):
            mps.apply_gate(CNOT, [1, 1])
        with pytest.raises(MPSError):
            mps.apply_gate(np.eye(8), [0, 1, 2])


class TestSplitTheta:
    def test_no_truncation_reconstructs(self):
        rng = np.random.default_rng(0)
        theta = rng.normal(size=(2, 2, 2, 2)) + 1j * rng.normal(size=(2, 2, 2, 2))
        left, right, info = split_theta(theta, max_bond=4)
        rebuilt = np.einsum("lsk,ktr->lstr", left, right)
        assert np.allclose(rebuilt, theta, atol=1e-10)
        assert not info.truncated

    def test_truncation_error_matches_discarded_weight(self):
        theta = np.zeros((1, 2, 2, 1), dtype=complex)
        theta[0, 0, 0, 0] = np.sqrt(0.9)
        theta[0, 1, 1, 0] = np.sqrt(0.1)
        _, _, info = split_theta(theta, max_bond=1)
        assert np.isclose(info.discarded_weight, 0.1)
        assert np.isclose(info.trace_norm_error, 2 * np.sqrt(0.1))
        assert np.isclose(info.fidelity, 0.9)

    def test_zero_norm_rejected(self):
        with pytest.raises(ValueError):
            split_theta(np.zeros((1, 2, 2, 1)), 2)

    def test_records_do_not_add(self):
        with pytest.raises(TypeError):
            TruncationInfo.zero() + TruncationInfo.zero()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 200))
def test_wide_mps_matches_statevector(seed):
    """With an ample bond dimension the MPS evolution is exact."""
    circuit = random_circuit(5, 25, seed=seed)
    mps = MPS.zero_state(5)
    mps.max_bond = 32
    total_error = 0.0
    for op in circuit.operations():
        for record in mps.apply_gate(op.gate.matrix, list(op.qubits)):
            total_error += record.trace_norm_error
    assert total_error < 1e-9
    expected = simulate_statevector(circuit)
    overlap = abs(np.vdot(mps.to_statevector(), expected))
    assert np.isclose(overlap, 1.0, atol=1e-9)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 200), width=st.integers(1, 3))
def test_truncation_error_is_sound(seed, width):
    """The accumulated truncation error bounds the true trace-norm distance."""
    circuit = random_circuit(5, 20, seed=seed)
    mps = MPS.zero_state(5)
    mps.max_bond = width
    total_error = 0.0
    for op in circuit.operations():
        for record in mps.apply_gate(op.gate.matrix, list(op.qubits)):
            total_error += record.trace_norm_error
    exact = simulate_statevector(circuit)
    actual = trace_norm_distance(pure_density(mps.to_statevector()), pure_density(exact))
    assert actual <= min(2.0, total_error) + 1e-8
