"""ComparisonJob through the engine stack: content addressing, execution,
warm outcome-store hits with certificate re-verification, and mixed
analysis/comparison batches through the pool and the session facade."""

import json

import pytest

from repro.api import AnalysisSession
from repro.circuits import Circuit
from repro.config import AnalysisConfig, SDPConfig
from repro.engine.comparisons import execute_comparison_record
from repro.engine.outcomes import OutcomeStore
from repro.engine.pool import AnalysisEngine, job_family
from repro.engine.spec import (
    AnalysisJob,
    ComparisonJob,
    job_from_json,
    job_from_json_dict,
)
from repro.errors import EngineError, MetricError
from repro.noise import NoiseModel
from repro.noise.channels import bit_flip, depolarizing

FAST = AnalysisConfig(mps_width=4, sdp=SDPConfig(max_iterations=200, tolerance=1e-4))
MODEL_A = NoiseModel.uniform_bit_flip(1e-3)
MODEL_B = NoiseModel.uniform_bit_flip(2e-3)


def _ghz2() -> Circuit:
    return Circuit(2, name="ghz2").h(0).cx(0, 1)


def _channel_job(metric: str = "diamond_norm") -> ComparisonJob:
    return ComparisonJob.from_channels(bit_flip(1e-3), bit_flip(2e-3), metric=metric)


def _ab_job() -> ComparisonJob:
    return ComparisonJob.from_noise_models(_ghz2(), MODEL_A, MODEL_B, config=FAST)


class TestContentAddressing:
    def test_fingerprint_survives_the_wire(self):
        for job in (_channel_job(), _ab_job()):
            clone = job_from_json_dict(json.loads(json.dumps(job.to_json_dict())))
            assert isinstance(clone, ComparisonJob)
            assert clone.mode == job.mode
            assert clone.fingerprint() == job.fingerprint()

    def test_fingerprint_ignores_name_and_execution_knobs(self):
        base = ComparisonJob.from_noise_models(_ghz2(), MODEL_A, MODEL_B, config=FAST)
        renamed = ComparisonJob.from_noise_models(
            _ghz2(), MODEL_A, MODEL_B, config=FAST, name="relabelled"
        )
        assert renamed.fingerprint() == base.fingerprint()

    def test_fingerprint_tracks_the_metric_and_the_sides(self):
        assert _channel_job().fingerprint() != _channel_job("trace_norm").fingerprint()
        swapped = ComparisonJob.from_channels(bit_flip(2e-3), bit_flip(1e-3))
        assert swapped.fingerprint() != _channel_job().fingerprint()

    def test_comparison_and_analysis_families_never_collide(self):
        analysis = AnalysisJob.from_circuit(_ghz2(), MODEL_A, config=FAST)
        comparison = _ab_job()
        assert analysis.fingerprint() != comparison.fingerprint()
        assert job_family(analysis) != job_family(comparison)

    def test_unknown_kind_is_a_structured_error(self):
        with pytest.raises(EngineError, match="comparison_job"):
            job_from_json_dict({"kind": "tournament_job"})

    def test_mixed_or_empty_modes_are_rejected(self):
        with pytest.raises(MetricError):
            ComparisonJob(channel_a=bit_flip(1e-3))  # partial channel pair
        with pytest.raises(MetricError):
            ComparisonJob()  # no sides at all

    def test_canonical_json_round_trip_via_job_from_json(self):
        job = _channel_job()
        clone = job_from_json(json.dumps(job.to_json_dict()))
        assert isinstance(clone, ComparisonJob)
        assert clone.fingerprint() == job.fingerprint()


class TestExecution:
    def test_channel_mode_result_carries_the_metric(self):
        result, certificates = execute_comparison_record(
            _channel_job(), collect_certificates=True
        )
        assert result.ok
        assert result.metric == "diamond_norm"
        assert result.metric_tier == "certified"
        assert result.error_bound > 0.0
        assert certificates  # the SDP dual certificate was harvested
        for certificate in certificates:
            assert certificate.verify()

    def test_ab_mode_reports_both_sides(self):
        result, _ = execute_comparison_record(_ab_job())
        assert result.ok
        assert result.metric == "bound_drift"
        assert result.metric_tier == "heuristic"
        assert result.value_a is not None and result.value_b is not None
        assert result.error_bound == abs(result.value_a - result.value_b)

    def test_unknown_metric_fails_the_job_not_the_process(self):
        job = ComparisonJob.from_channels(
            bit_flip(1e-3), bit_flip(2e-3), metric="no_such_metric"
        )
        result, _ = execute_comparison_record(job)
        assert not result.ok
        assert result.status == "error"
        assert "no_such_metric" in result.error


class TestWarmOutcomeStore:
    def test_warm_hit_skips_execution_and_reverifies(self, tmp_path):
        path = str(tmp_path / "outcomes.jsonl")
        jobs = [_channel_job(), _ab_job()]
        cold = AnalysisEngine(workers=1, outcomes=path).run(jobs)
        assert cold.ok and cold.executed == 2 and cold.outcome_hits == 0

        warm = AnalysisEngine(workers=1, outcomes=path).run(jobs)
        assert warm.executed == 0 and warm.outcome_hits == 2
        assert warm.results == cold.results  # whole records, bit-identical
        assert [r.metric for r in warm.results] == ["diamond_norm", "bound_drift"]

        # The persisted certificates still re-verify on demand.
        store = OutcomeStore(path)
        for job in jobs:
            assert store.get(job.fingerprint(), verify=True) is not None
            assert store.certificates(job.fingerprint())
        assert store.stats()["verification_failures"] == 0


class TestMixedBatches:
    def test_mixed_batch_routes_both_kinds_across_workers(self):
        analysis = AnalysisJob.from_circuit(_ghz2(), MODEL_A, config=FAST)
        jobs = [analysis, _channel_job(), _ab_job()]
        inline = [execute_comparison_record(j)[0] if isinstance(j, ComparisonJob)
                  else None for j in jobs]
        report = AnalysisEngine(workers=2, adaptive_workers=False).run(jobs)
        assert report.ok
        by_fingerprint = {r.fingerprint: r for r in report.results}
        assert len(by_fingerprint) == 3
        for job, expected in zip(jobs, inline):
            pooled = by_fingerprint[job.fingerprint()]
            if expected is not None:  # comparison: bit-identical to inline
                assert pooled.error_bound == expected.error_bound
                assert pooled.metric == expected.metric
            else:
                assert pooled.metric == ""  # analyses carry no metric

    def test_session_compare_matches_engine_batch(self):
        with AnalysisSession(config=FAST) as session:
            outcome = session.compare(_ghz2(), MODEL_A, MODEL_B)
            batch = session.compare_batch(
                [session.comparison_job(_ghz2(), MODEL_A, MODEL_B)]
            )
        outcome.raise_for_status()
        assert outcome.metric == "bound_drift"
        assert outcome.bound == batch[0].bound
        assert outcome.fingerprint == batch[0].fingerprint

    def test_session_channel_compare_is_certified(self):
        with AnalysisSession(config=FAST) as session:
            outcome = session.compare(depolarizing(1e-3), bit_flip(1e-3))
        outcome.raise_for_status()
        assert outcome.metric == "diamond_norm"
        assert outcome.metric_tier == "certified"
        assert outcome.bound > 0.0
