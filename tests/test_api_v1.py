"""Client ↔ service round trips over a live HTTP server (the /v1 surface).

Covers the versioned wire format end to end: batch submit, long-poll result
push (asserting a completed result costs **one** request — no client-side
polling), capability discovery, structured error envelopes (unknown
fingerprint, malformed payload, oversized batch), the remote
:class:`~repro.api.AnalysisSession` transport, and the retired unversioned
surface answering 410 Gone with a pointer at its /v1 successor.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import AnalysisSession, Client
from repro.circuits import Circuit
from repro.config import AnalysisConfig, SDPConfig
from repro.engine.pool import AnalysisEngine
from repro.engine.service import AnalysisService, make_server
from repro.engine.spec import AnalysisJob
from repro.errors import BatchLimitExceeded, EngineError, JobNotFoundError
from repro.noise import NoiseModel

FAST = AnalysisConfig(mps_width=4, sdp=SDPConfig(max_iterations=200, tolerance=1e-4))
MODEL = NoiseModel.uniform_bit_flip(1e-3)


def _job(name: str = "ghz2", *, num_qubits: int = 2) -> AnalysisJob:
    circuit = Circuit(num_qubits, name=name).h(0).cx(0, 1)
    for q in range(2, num_qubits):
        circuit.cx(q - 1, q)
    return AnalysisJob.from_circuit(circuit, MODEL, config=FAST)


@pytest.fixture
def server(tmp_path):
    engine = AnalysisEngine(workers=1, store=str(tmp_path / "results.jsonl"))
    service = AnalysisService(engine, batch_window=0.02, max_batch=8, max_submit=4)
    service.start()
    httpd = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{httpd.server_address[1]}", service
    httpd.shutdown()
    httpd.server_close()
    service.stop()


@pytest.fixture
def client(server):
    base, _service = server
    return Client(base, timeout=30.0)


class TestCapabilities:
    def test_discovery(self, client):
        capabilities = client.capabilities()
        assert capabilities["api"]["version"] == "v1"
        assert capabilities["job_schema_version"] == 1
        assert capabilities["limits"]["max_batch_jobs"] == 4
        assert capabilities["limits"]["max_wait_seconds"] > 0
        assert "submit" in capabilities["endpoints"]
        assert capabilities["engine"]["workers"] == 1


class TestBatchSubmitAndLongPoll:
    def test_submit_then_long_poll_single_request(self, client):
        entries = client.submit([_job(), _job()])
        assert len(entries) == 2
        fingerprint = entries[0]["fingerprint"]
        assert entries[1]["fingerprint"] == fingerprint  # wire-level dedupe

        before = client.requests_sent
        entry = client.wait(fingerprint, timeout=120)
        # Result push: the long poll parks server-side; no client polling.
        assert client.requests_sent - before == 1
        assert entry["status"] == "done"
        assert entry["result"]["error_bound"] > 0

    def test_plain_status_after_completion(self, client):
        fingerprint = client.submit([_job()])[0]["fingerprint"]
        client.wait(fingerprint, timeout=120)
        entry = client.status(fingerprint)
        assert entry["status"] == "done"

    def test_wait_times_out_cleanly(self, client):
        with pytest.raises(JobNotFoundError):
            client.status("0" * 64, wait=0.05)


class TestRemoteSession:
    def test_remote_bit_identical_to_local(self, server):
        base, _service = server
        jobs = [_job(), _job("ghz3", num_qubits=3), _job()]
        with AnalysisSession(remote=base, config=FAST) as remote:
            remote_outcomes = remote.analyze_batch(jobs)
        with AnalysisSession(config=FAST) as local:
            local_outcomes = local.analyze_batch(jobs)
        assert [o.bound for o in remote_outcomes] == [o.bound for o in local_outcomes]
        assert [o.fingerprint for o in remote_outcomes] == [
            o.fingerprint for o in local_outcomes
        ]

    def test_remote_as_completed_streams(self, server):
        base, _service = server
        jobs = [_job(), _job("ghz3", num_qubits=3)]
        with AnalysisSession(remote=base, config=FAST) as remote:
            streamed = dict(remote.as_completed(jobs, timeout=120))
        assert sorted(streamed) == [0, 1]
        assert all(outcome.certified for outcome in streamed.values())

    def test_remote_capabilities_and_derivation_refusal(self, server):
        base, _service = server
        with AnalysisSession(remote=base, config=FAST) as remote:
            assert remote.capabilities()["transport"] == "http"
            with pytest.raises(EngineError):
                remote.analyze(
                    Circuit(2, name="x").h(0), MODEL, derivation=True
                )


class TestErrorEnvelopes:
    def test_unknown_fingerprint_maps_to_job_not_found(self, client):
        with pytest.raises(JobNotFoundError):
            client.status("deadbeef")

    def test_malformed_payload_maps_to_engine_error(self, client):
        with pytest.raises(EngineError) as excinfo:
            client.submit([{"kind": "not_a_job"}])
        assert not isinstance(excinfo.value, JobNotFoundError)

    def test_oversized_batch_maps_to_batch_limit(self, client):
        with pytest.raises(BatchLimitExceeded):
            client.submit([_job()] * 5)  # max_submit fixture limit is 4

    def test_rejected_batch_executes_nothing(self, server, client):
        _base, service = server
        with pytest.raises(EngineError):
            client.submit([_job("victim"), {"kind": "not_a_job"}])
        assert service.stats()["jobs"] == {}

    def test_envelope_shape_on_the_wire(self, server):
        base, _service = server
        request = urllib.request.Request(
            base + "/v1/batches",
            data=json.dumps({"jobs": "nope"}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        body = json.loads(excinfo.value.read())
        assert body["error"]["type"] == "EngineError"
        assert body["error"]["status"] == 400
        assert body["error"]["repro_error"] is True

    def test_invalid_wait_parameter(self, server):
        base, _service = server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(base + "/v1/jobs/abc?wait=banana")
        assert excinfo.value.code == 400


class TestRetiredSurface:
    """The unversioned endpoints answer 410 Gone, pointing at /v1."""

    @pytest.mark.parametrize(
        "method, path",
        [
            ("POST", "/jobs"),
            ("GET", "/jobs/" + "a" * 64),
            ("GET", "/healthz"),
        ],
    )
    def test_unversioned_endpoints_are_gone(self, server, method, path):
        base, _service = server
        request = urllib.request.Request(
            base + path,
            data=json.dumps(_job().to_json_dict()).encode() if method == "POST" else None,
            headers={"Content-Type": "application/json"},
            method=method,
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        response = excinfo.value
        assert response.code == 410
        envelope = json.loads(response.read())["error"]
        assert envelope["status"] == 410
        assert "/v1" in envelope["message"]  # the envelope names the successor
        assert "/v1" in (response.headers.get("Link") or "")


class TestServiceWait:
    def test_wait_uses_condition_not_polling(self, server):
        """wait_for parks on the condition variable and is woken by results."""
        _base, service = server
        entry = service.submit_payload(_job().to_json_dict())
        woken = service.wait_for(entry["fingerprint"], timeout=120)
        assert woken is not None and woken["status"] == "done"
        # Unknown fingerprints return None instead of spinning.
        assert service.wait_for("f" * 64, timeout=0.05) is None

    def test_wait_any(self, server):
        _base, service = server
        first = service.submit_payload(_job().to_json_dict())
        second = service.submit_payload(_job("ghz3", num_qubits=3).to_json_dict())
        pending = {first["fingerprint"], second["fingerprint"]}
        seen = set()
        while pending:
            fingerprint = service.wait_any(pending, timeout=120)
            assert fingerprint in pending
            pending.discard(fingerprint)
            seen.add(fingerprint)
        assert seen == {first["fingerprint"], second["fingerprint"]}


class TestReviewRegressions:
    def test_non_finite_wait_is_rejected(self, server):
        base, _service = server
        for bad in ("nan", "inf", "-inf"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(base + f"/v1/jobs/abc?wait={bad}")
            assert excinfo.value.code == 400

    def test_stop_releases_long_poll_waiters(self, tmp_path):
        import threading as _threading
        import time as _time

        engine = AnalysisEngine(workers=1)
        service = AnalysisService(engine, batch_window=0.02)
        # Deliberately NOT started: the job can never finish, so a waiter
        # parks until stop() releases it.
        entry = service.submit_payload(
            AnalysisJob.from_circuit(
                Circuit(2, name="parked").h(0).cx(0, 1), MODEL, config=FAST
            ).to_json_dict()
        )
        released = []
        waiter = _threading.Thread(
            target=lambda: released.append(
                service.wait_for(entry["fingerprint"], timeout=30.0)
            )
        )
        start = _time.monotonic()
        waiter.start()
        _time.sleep(0.1)
        service.stop()
        waiter.join(timeout=5.0)
        assert not waiter.is_alive()
        assert _time.monotonic() - start < 10.0  # released well before timeout
        assert released and released[0]["status"] == "queued"
