"""Tests for the TN(rho0, P) approximator: exactness, soundness, branching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit
from repro.errors import MPSError
from repro.linalg import ghz_state, pure_density, trace_norm_distance
from repro.mps import MPSApproximator, approximate_program
from repro.semantics import simulate_density, simulate_statevector

from helpers import random_circuit


class TestBasics:
    def test_ghz_exact_with_width_two(self, ghz2_circuit):
        result = approximate_program(ghz2_circuit, width=2)
        assert result.delta == 0.0
        assert np.allclose(np.abs(result.mps.to_statevector()), np.abs(ghz_state(2)), atol=1e-10)

    def test_ghz_width_one_matches_paper_example(self, ghz2_circuit):
        """Section 5.3: w=1 yields |00> with approximation error sqrt(2)."""
        result = approximate_program(ghz2_circuit, width=1)
        assert np.isclose(result.delta, np.sqrt(2.0))
        assert np.isclose(abs(result.mps.amplitude("00")), 1.0)

    def test_initial_bits(self):
        circuit = Circuit(2).cx(0, 1)
        result = approximate_program(circuit, initial_bits="10", width=4)
        assert np.isclose(abs(result.mps.amplitude("11")), 1.0)

    def test_bad_initial_bits(self):
        with pytest.raises(MPSError):
            approximate_program(Circuit(2).h(0), initial_bits="0", width=2)

    def test_local_predicate(self, ghz3_circuit):
        approx = MPSApproximator.zero_state(3, width=8)
        approx.apply_circuit(ghz3_circuit)
        predicate = approx.local_predicate([0, 2])
        assert predicate.rho_local.shape == (4, 4)
        assert predicate.delta == approx.delta
        assert predicate.qubits == (0, 2)

    def test_weaken_to(self):
        approx = MPSApproximator.zero_state(2, width=2)
        approx.weaken_to(1.5)
        assert approx.delta == 1.5
        with pytest.raises(MPSError):
            approx.weaken_to(0.5)

    def test_truncation_history(self):
        approx = MPSApproximator.zero_state(3, width=1)
        approx.apply_circuit(Circuit(3).h(0).cx(0, 1).cx(1, 2))
        assert len(approx.truncation_history) >= 2
        assert approx.delta > 0

    def test_from_statevector_carries_initial_error(self):
        approx = MPSApproximator.from_statevector(ghz_state(4), width=1)
        assert approx.delta > 0


class TestBranching:
    def test_branch_on_measurement(self, ghz2_circuit):
        approx = MPSApproximator.zero_state(2, width=4)
        approx.apply_circuit(ghz2_circuit)
        branches = approx.branch_on_measurement(0)
        assert len(branches) == 2
        outcomes = {outcome for outcome, _, _ in branches}
        assert outcomes == {0, 1}
        for outcome, probability, child in branches:
            assert np.isclose(probability, 0.5)
            assert np.isclose(abs(child.mps.amplitude(f"{outcome}{outcome}")), 1.0)

    def test_unreachable_branch_not_returned(self):
        approx = MPSApproximator.zero_state(1, width=2)
        branches = approx.branch_on_measurement(0)
        assert len(branches) == 1
        assert branches[0][0] == 0

    def test_program_with_if(self):
        circuit = Circuit(2).h(0)
        circuit.if_measure(0, lambda c: c.x(1), lambda c: c.z(1))
        result = approximate_program(circuit, width=4)
        assert result.num_branches() == 2
        assert np.isclose(sum(b.probability for b in result.branches), 1.0)

    def test_single_branch_accessor_requires_branch_free(self):
        circuit = Circuit(2).h(0)
        circuit.if_measure(0, lambda c: c.x(1))
        result = approximate_program(circuit, width=4)
        with pytest.raises(MPSError):
            _ = result.approximator


class TestSoundness:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 100), width=st.integers(1, 4))
    def test_delta_bounds_true_distance(self, seed, width):
        """Theorem 5.1: ||TN output - ideal output||_1 <= delta."""
        circuit = random_circuit(5, 18, seed=seed)
        result = approximate_program(circuit, width=width)
        ideal = pure_density(simulate_statevector(circuit))
        approx = pure_density(result.mps.to_statevector())
        actual = trace_norm_distance(approx, ideal)
        assert actual <= result.delta + 1e-8

    def test_branchy_program_delta_bounds_distance(self):
        # Program: H; if q0 then X(1) else skip; then H(1) afterwards.
        circuit = Circuit(2).h(0)
        circuit.if_measure(0, lambda c: c.x(1))
        circuit.h(1)
        result = approximate_program(circuit, width=4)
        # Combine the branch outputs into the classical mixture of Figure 3.
        mixture = np.zeros((4, 4), dtype=complex)
        for branch in result.branches:
            mixture += branch.probability * pure_density(branch.approximator.mps.to_statevector())
        exact = simulate_density(circuit)
        assert trace_norm_distance(mixture, exact) <= result.delta + 1e-8
