"""Property tests: batched structural reductions are bit-identical to per-gate.

The batched front door of `gate_error_bounds_batch`
(`_reduced_gate_problems_batch`) replaces the per-instance Python of
`_reduced_gate_problem` — Choi construction, unitary conjugation of the
predicate, and the 2-qubit trivial-spectator reduction — with whole-stack
numpy work.  Its contract mirrors the batch-certification contract
(tests/test_sdp_batch_certification.py): every per-element output is
*exactly* what the per-instance entry point produces, bit for bit, because
the per-instance path is a batch of one through the same code and every
batched primitive is independent of the batch composition.

The property is exercised across the whole reduced Table 2 program library
(the real solve classes each benchmark generates) and on random circuits.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import random_circuit

from repro.linalg.partial_trace import partial_trace_keep
from repro.noise import channels as noise_channels
from repro.programs.library import table2_benchmarks
from repro.sdp.diamond import (
    _reduced_gate_problem,
    _reduced_gate_problems_batch,
    reduced_problem_dim,
)
from test_sdp_batch_certification import solve_classes


def reduction_problems(circuit_or_program, **kwargs):
    """The (gate, channel, predicate) triples the scheduler pre-pass collects."""
    return [
        (gate, channel, rho)
        for gate, channel, rho, _delta in solve_classes(circuit_or_program, **kwargs)
    ]


def assert_reductions_bit_identical(batch, singles):
    assert len(batch) == len(singles)
    for (batch_choi, batch_sigma), (single_choi, single_sigma) in zip(batch, singles):
        assert np.array_equal(batch_choi, single_choi)
        assert np.array_equal(batch_sigma, single_sigma)


@pytest.mark.parametrize(
    "spec", table2_benchmarks("reduced"), ids=lambda spec: spec.name
)
def test_batched_reductions_match_per_instance_across_library(spec):
    """Batched structural reductions == per-instance reductions, bit for bit."""
    problems = reduction_problems(spec.build())
    assert problems, f"benchmark {spec.name} produced no noisy gate instances"
    batch = _reduced_gate_problems_batch(problems)
    singles = [_reduced_gate_problem(*problem) for problem in problems]
    assert_reductions_bit_identical(batch, singles)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 1000))
def test_batched_reductions_match_per_instance_random_circuits(seed):
    problems = reduction_problems(random_circuit(4, 12, seed=seed))
    batch = _reduced_gate_problems_batch(problems)
    singles = [_reduced_gate_problem(*problem) for problem in problems]
    assert_reductions_bit_identical(batch, singles)


def test_batched_reductions_composition_independence():
    """A reduction is identical alone, in a pair, or in the full set."""
    problems = reduction_problems(random_circuit(4, 16, seed=11))
    assert len(problems) >= 3
    full = _reduced_gate_problems_batch(problems)
    alone = _reduced_gate_problems_batch([problems[0]])
    pair = _reduced_gate_problems_batch([problems[0], problems[2]])
    assert np.array_equal(full[0][0], alone[0][0])
    assert np.array_equal(full[0][1], alone[0][1])
    assert np.array_equal(full[2][0], pair[1][0])
    assert np.array_equal(full[2][1], pair[1][1])


def test_batched_reductions_noise_before_gate():
    """With noise before the gate the predicate is not conjugated."""
    problems = reduction_problems(random_circuit(3, 8, seed=3))
    batch = _reduced_gate_problems_batch(problems, noise_after_gate=False)
    singles = [
        _reduced_gate_problem(*problem, noise_after_gate=False)
        for problem in problems
    ]
    assert_reductions_bit_identical(batch, singles)


def test_spectator_reduction_fires_for_factoring_two_qubit_noise():
    """N ⊗ id noise on a 2-qubit gate reduces to the 1-qubit problem."""
    channel = noise_channels.bit_flip(1e-3).tensor(
        noise_channels.identity_noise(1)
    )
    assert reduced_problem_dim(channel) == 2
    gate = np.eye(4, dtype=np.complex128)
    rho = np.diag([0.4, 0.3, 0.2, 0.1]).astype(np.complex128)
    ((diff_choi, sigma),) = _reduced_gate_problems_batch([(gate, channel, rho)])
    assert diff_choi.shape == (4, 4)  # 1-qubit difference map
    assert sigma.shape == (2, 2)
    assert np.array_equal(sigma, partial_trace_keep(rho, [0]))


def test_non_factoring_noise_keeps_full_dimension():
    channel = noise_channels.two_qubit_depolarizing(1e-2)
    assert reduced_problem_dim(channel) == 4
    assert reduced_problem_dim(None) == 0
    gate = np.eye(4, dtype=np.complex128)
    rho = np.eye(4, dtype=np.complex128) / 4
    ((diff_choi, sigma),) = _reduced_gate_problems_batch([(gate, channel, rho)])
    assert diff_choi.shape == (16, 16)
    assert sigma.shape == (4, 4)
