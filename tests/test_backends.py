"""Backend conformance: JSONL, SQLite, and memory must be interchangeable.

Every behavior the facades promise — roundtrip, reload, supersede-on-rewrite,
LRU eviction, pinning, compaction, corruption handling, thread-safety under
the facade lock — is exercised against **all three** storage backends through
the same public surface (:class:`ResultStore` / :class:`OutcomeStore` with a
URL), so swapping ``--store results.jsonl`` for ``--store sqlite:///...`` is
provably behavior-preserving.  The hypothesis property at the end pins the
headline invariant: a warm analysis served from any backend is bit-identical
to the cold run that populated it, and its stored certificates still verify.
"""

import itertools
import threading
import uuid

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit
from repro.config import AnalysisConfig, SDPConfig
from repro.engine.backends import (
    open_outcome_backend,
    open_result_backend,
    parse_storage_url,
    reset_shared_memory,
)
from repro.engine.outcomes import OutcomeStore
from repro.engine.pool import AnalysisEngine, execute_job_record
from repro.engine.spec import AnalysisJob, JobResult
from repro.engine.store import ResultStore
from repro.errors import EngineError, StorageBackendError
from repro.noise import NoiseModel

FAST = AnalysisConfig(mps_width=4, sdp=SDPConfig(max_iterations=200, tolerance=1e-4))
MODEL = NoiseModel.uniform_bit_flip(1e-3)

BACKENDS = ("jsonl", "sqlite", "memory")


def _result(fingerprint: str, *, ok: bool = True, name: str = "job") -> JobResult:
    return JobResult(
        fingerprint=fingerprint,
        name=name,
        status="ok" if ok else "timeout",
        error_bound=0.25 if ok else None,
        elapsed_seconds=0.1,
    )


def _job(name: str = "ghz2", *, num_qubits: int = 2, model=MODEL) -> AnalysisJob:
    circuit = Circuit(num_qubits, name=name).h(0).cx(0, 1)
    for q in range(2, num_qubits):
        circuit.cx(q - 1, q)
    return AnalysisJob.from_circuit(circuit, model, config=FAST)


@pytest.fixture(params=BACKENDS)
def backend(request):
    yield request.param
    reset_shared_memory()  # named memory:// stores must not leak across tests


@pytest.fixture
def make_url(backend, tmp_path):
    """A fresh storage URL per call; the same URL reopens the same state."""
    counter = itertools.count()

    def _make() -> str:
        index = next(counter)
        if backend == "jsonl":
            return str(tmp_path / f"store{index}.jsonl")
        if backend == "sqlite":
            return f"sqlite:///{tmp_path}/store{index}.sqlite"
        return f"memory://conformance-{uuid.uuid4().hex}-{index}"

    return _make


class TestUrlParsing:
    @pytest.mark.parametrize(
        "url, expected",
        [
            ("results.jsonl", ("jsonl", "results.jsonl")),
            ("jsonl://a/b.jsonl", ("jsonl", "a/b.jsonl")),
            ("sqlite:///rel/o.sqlite", ("sqlite", "rel/o.sqlite")),
            ("sqlite:////abs/o.sqlite", ("sqlite", "/abs/o.sqlite")),
            ("memory://", ("memory", "")),
            ("memory://shared", ("memory", "shared")),
        ],
    )
    def test_schemes(self, url, expected):
        assert parse_storage_url(url) == expected

    def test_unknown_scheme_rejected(self):
        with pytest.raises(EngineError, match="postgres"):
            parse_storage_url("postgres://nope")
        with pytest.raises(EngineError):
            open_result_backend("postgres://nope")
        with pytest.raises(EngineError):
            open_outcome_backend("postgres://nope")


class TestResultConformance:
    def test_put_get_reload_roundtrip(self, make_url):
        url = make_url()
        store = ResultStore(url)
        assert len(store) == 0
        results = [_result(f"fp{i:02d}") for i in range(8)]
        store.put_many(results)
        assert len(store) == 8
        assert "fp03" in store
        assert store.get("fp03") == results[3]
        assert store.completed("fp03")
        assert store.missing(["fp00", "fpXX"]) == ["fpXX"]
        store.close()

        reloaded = ResultStore(url)  # a "new process" over the same URL
        assert len(reloaded) == 8
        assert reloaded.results() == {r.fingerprint: r for r in results}
        reloaded.close()

    def test_later_writes_supersede(self, make_url):
        url = make_url()
        store = ResultStore(url)
        store.put(_result("fp", ok=False))
        assert not store.completed("fp")
        store.put(_result("fp", ok=True))  # bigger budget succeeded later
        assert store.completed("fp")
        store.close()
        reloaded = ResultStore(url)
        assert reloaded.completed("fp") and len(reloaded) == 1
        reloaded.close()

    def test_concurrent_facade_access(self, make_url):
        store = ResultStore(make_url())
        errors = []

        def worker(base: int) -> None:
            try:
                for i in range(25):
                    store.put(_result(f"fp{base:02d}{i:02d}"))
                    assert store.get(f"fp{base:02d}{i:02d}") is not None
                    len(store)
                    store.results()
            except Exception as exc:  # pragma: no cover - only on regression
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(store) == 8 * 25
        store.close()


class TestOutcomeConformance:
    def test_roundtrip_reload_and_verified_get(self, make_url):
        url = make_url()
        job = _job()
        result, certificates = execute_job_record(job, collect_certificates=True)
        assert result.ok and certificates
        store = OutcomeStore(url)
        assert store.get(result.fingerprint) is None
        store.put(result, certificates)
        assert store.get(result.fingerprint) == result
        store.close()

        reloaded = OutcomeStore(url)
        assert reloaded.get(result.fingerprint, verify=True) == result
        assert reloaded.stats()["verification_failures"] == 0
        assert len(reloaded.certificates(result.fingerprint)) == len(certificates)
        assert all(cert.verify() for cert in reloaded.certificates(result.fingerprint))
        reloaded.close()

    def test_failed_results_never_stored(self, make_url):
        store = OutcomeStore(make_url())
        store.put(_result("fp", ok=False))
        assert len(store) == 0
        store.close()

    def test_lru_eviction_order_and_touch(self, make_url):
        store = OutcomeStore(make_url(), max_entries=2)
        for i in range(2):
            store.put(_result(f"fp{i}"))
        assert store.get("fp0") is not None  # touch: fp1 is now the LRU
        store.put(_result("fp2"))
        assert len(store) == 2
        assert "fp1" not in store  # the untouched entry was evicted
        assert "fp0" in store and "fp2" in store
        assert store.stats()["evictions"] == 1
        store.close()

    def test_pinning_overrides_recency(self, make_url):
        store = OutcomeStore(make_url(), max_entries=2)
        store.put(_result("fp0"))
        store.put(_result("fp1"))
        with store.pinned(["fp0"]):  # fp0 is the LRU, but pinned
            store.put(_result("fp2"))
            assert "fp0" in store  # the pin overrides recency order
            assert "fp1" not in store  # the unpinned entry paid the eviction
            assert "fp2" in store
        assert len(store) == 2
        store.close()

    def test_pins_allow_transient_overshoot(self, make_url):
        store = OutcomeStore(make_url(), max_entries=1)
        store.put(_result("fp0"))
        with store.pinned(["fp0"]):
            # A concurrent batch keeps inserting past the cap; the pinned
            # entry survives even though everything else is reclaimable.
            for i in range(1, 4):
                store.put(_result(f"fp{i}"))
            assert "fp0" in store
        # Pins released: deferred eviction restores the cap.
        assert len(store) == 1
        store.close()

    def test_compaction_preserves_live_entries(self, make_url, backend):
        url = make_url()
        store = OutcomeStore(url)
        # Rewrite the same fingerprints many times: dead records pile up in
        # an append-only log and must be reclaimed without losing state.
        for round_ in range(40):
            for i in range(3):
                store.put(_result(f"fp{i}", name=f"round{round_}"))
        assert len(store) == 3
        if backend == "jsonl":
            with open(store.path, encoding="utf-8") as handle:
                file_lines = sum(1 for _ in handle)
            # The 2:1 amortized rule: the log stays within a constant factor
            # of the live set instead of growing with write volume.
            assert file_lines <= max(2 * 3, 3 + 64)
        store.close()
        reloaded = OutcomeStore(url)
        assert len(reloaded) == 3
        for i in range(3):
            entry = reloaded.get(f"fp{i}")
            assert entry is not None and entry.name == "round39"
        reloaded.close()

    def test_corruption_handling(self, make_url, backend):
        url = make_url()
        job = _job()
        result, certificates = execute_job_record(job, collect_certificates=True)
        store = OutcomeStore(url)
        store.put(result, certificates)
        store.close()
        if backend == "jsonl":
            # A kill mid-append leaves a torn trailing line: healed on load.
            with open(url if "://" not in url else url.split("://", 1)[1], "a") as fh:
                fh.write('{"version": 1, "kind": "analysis_outc')
            reloaded = OutcomeStore(url)
            assert reloaded.skipped_lines == 1
        else:
            # WAL/memory backends are structurally immune to torn appends.
            reloaded = OutcomeStore(url)
            assert reloaded.skipped_lines == 0
        assert reloaded.get(result.fingerprint) == result
        reloaded.close()

    def test_concurrent_facade_access(self, make_url):
        store = OutcomeStore(make_url(), max_entries=64)
        errors = []

        def worker(base: int) -> None:
            try:
                for i in range(20):
                    fingerprint = f"fp{base:02d}{i:02d}"
                    store.put(_result(fingerprint))
                    store.get(fingerprint)
                    with store.pinned([fingerprint]):
                        len(store)
            except Exception as exc:  # pragma: no cover - only on regression
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(store) == 64  # capped by LRU, never above
        store.close()


class TestWarmColdProperty:
    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        p=st.floats(min_value=1e-5, max_value=5e-3, allow_nan=False),
        num_qubits=st.sampled_from([2, 3]),
    )
    def test_warm_analysis_bit_identical_to_cold(self, make_url, p, num_qubits):
        """Any backend's warm answer equals the cold run, certificates intact."""
        url = make_url()
        job = _job(f"ghz{num_qubits}", num_qubits=num_qubits,
                   model=NoiseModel.uniform_bit_flip(p))
        cold_report = AnalysisEngine(workers=1, outcomes=url).run([job])
        assert cold_report.ok and cold_report.outcome_hits == 0
        cold = cold_report.results[0]

        # A fresh facade over the persisted state answers verified and
        # bit-identical — and the engine's warm path never re-executes.
        warm_store = OutcomeStore(url)
        verified = warm_store.get(job.fingerprint(), verify=True)
        assert verified is not None
        assert verified.error_bound == cold.error_bound
        assert warm_store.stats()["verification_failures"] == 0

        warm_report = AnalysisEngine(workers=1, outcomes=warm_store).run([job])
        assert warm_report.executed == 0 and warm_report.outcome_hits == 1
        assert warm_report.results[0].error_bound == cold.error_bound
        assert warm_report.results[0] == cold


class TestStorageBackendError:
    """Unknown URL schemes (satellite: redis:// is a popular guess)."""

    def test_attributes_carry_scheme_and_supported_list(self):
        from repro.engine.backends.base import SUPPORTED_SCHEMES

        with pytest.raises(StorageBackendError) as excinfo:
            parse_storage_url("redis://localhost:6379/0")
        error = excinfo.value
        assert error.scheme == "redis"
        assert error.supported == SUPPORTED_SCHEMES
        for scheme in SUPPORTED_SCHEMES:
            assert scheme in str(error)

    def test_envelope_roundtrip_preserves_the_class(self):
        """The /v1 400 envelope reconstructs as StorageBackendError."""
        from repro.errors import error_envelope, error_from_envelope

        try:
            parse_storage_url("redis://localhost:6379/0")
        except StorageBackendError as exc:
            envelope = error_envelope(exc, status=400)
        entry = envelope["error"]
        assert entry["type"] == "StorageBackendError"
        assert entry["status"] == 400
        assert entry["repro_error"] is True
        assert "redis" in entry["message"]
        rebuilt = error_from_envelope(envelope, status=400)
        assert isinstance(rebuilt, StorageBackendError)
        assert "redis" in str(rebuilt)

    def test_facades_reject_unknown_schemes(self, tmp_path):
        with pytest.raises(StorageBackendError):
            ResultStore("redis://localhost/0")
        with pytest.raises(StorageBackendError):
            OutcomeStore("redis://localhost/0")

    def test_gleipnir_serve_exits_2_with_one_line(self, capsys):
        """A typo'd --store scheme is an operator error, not a traceback."""
        from repro.engine.service import main

        assert main(["--store", "redis://localhost/0", "--port", "0"]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("gleipnir-serve: ")
        assert "redis" in captured.err
        assert len(captured.err.strip().splitlines()) == 1
