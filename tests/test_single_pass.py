"""Tests for the single-pass pipeline: the ReplayTape and its consumption.

The scheduler's pre-pass records every approximator fact into a
:class:`~repro.core.derivation.ReplayTape`; the analyzer rebuilds the
derivation from the tape without a second MPS walk.  These tests verify

* the instrumentation contract: the MPS evolves through each gate exactly
  once per analysed input, scheduled or sequential (the counter test of the
  acceptance criteria);
* that replayed analyses are *bit-identical* to live sequential ones;
* the tape's defensive alignment checks.
"""

import pytest

from helpers import random_circuit

from repro.circuits import Circuit
from repro.circuits.program import IfMeasure, Skip, seq
from repro.config import AnalysisConfig, SDPConfig
from repro.core.analyzer import GleipnirAnalyzer
from repro.core.derivation import ReplayTape, TapeGate, TapeMeasure, TapeSkip
from repro.engine.pool import execute_job
from repro.engine.spec import AnalysisJob
from repro.errors import LogicError
from repro.mps.approximator import MPSApproximator

FAST_SDP = SDPConfig(max_iterations=400, tolerance=1e-5)


def _config(**kwargs) -> AnalysisConfig:
    base = dict(mps_width=8, sdp=FAST_SDP)
    base.update(kwargs)
    return AnalysisConfig(**base)


@pytest.fixture
def count_mps_gate_applications(monkeypatch):
    """Counts every gate the MPS machinery actually evolves through."""
    calls = {"count": 0}
    original = MPSApproximator.apply_gate

    def counting(self, matrix, qubits):
        calls["count"] += 1
        return original(self, matrix, qubits)

    monkeypatch.setattr(MPSApproximator, "apply_gate", counting)
    return calls


class TestSinglePassCounter:
    def test_mps_walk_runs_once_with_scheduler(
        self, bit_flip_model, count_mps_gate_applications
    ):
        """The scheduled path applies each gate to an MPS exactly once."""
        circuit = random_circuit(4, 20, seed=3)
        result = GleipnirAnalyzer(bit_flip_model, _config(scheduler=True)).analyze(
            circuit
        )
        assert result.num_gates == 20
        assert count_mps_gate_applications["count"] == 20
        assert result.mps_walks == 1

    def test_sequential_path_also_walks_once(
        self, bit_flip_model, count_mps_gate_applications
    ):
        circuit = random_circuit(4, 20, seed=3)
        result = GleipnirAnalyzer(bit_flip_model, _config(scheduler=False)).analyze(
            circuit
        )
        assert count_mps_gate_applications["count"] == 20
        assert result.mps_walks == 1

    def test_counter_with_measurement_branches(
        self, bit_flip_model, count_mps_gate_applications
    ):
        """Branches (including the unreachable one) are walked exactly once."""
        program = seq(
            Circuit(2).h(0).to_program(),
            IfMeasure(0, Circuit(2).x(1).to_program(), Circuit(2).h(1).to_program()),
        )
        GleipnirAnalyzer(bit_flip_model, _config(scheduler=True)).analyze(
            program, num_qubits=2
        )
        scheduled_count = count_mps_gate_applications["count"]
        count_mps_gate_applications["count"] = 0
        GleipnirAnalyzer(bit_flip_model, _config(scheduler=False)).analyze(
            program, num_qubits=2
        )
        assert scheduled_count == count_mps_gate_applications["count"]


class TestReplayBitIdentity:
    @pytest.mark.parametrize("seed", [0, 4, 8])
    def test_replayed_bounds_equal_sequential_exactly(self, seed, bit_flip_model):
        """Tape replay + batched solves reproduce the sequential bounds bit
        for bit (the per-gate path runs the same batched primitives)."""
        circuit = random_circuit(4, 24, seed=seed)
        scheduled = GleipnirAnalyzer(bit_flip_model, _config(scheduler=True)).analyze(
            circuit
        )
        sequential = GleipnirAnalyzer(
            bit_flip_model, _config(scheduler=False)
        ).analyze(circuit)
        assert scheduled.error_bound == sequential.error_bound
        assert scheduled.final_delta == sequential.final_delta

    def test_replayed_derivation_verifies(self, bit_flip_model):
        result = GleipnirAnalyzer(bit_flip_model, _config(scheduler=True)).analyze(
            random_circuit(3, 10, seed=6)
        )
        assert result.derivation is not None
        result.derivation.check()

    def test_branchy_program_replay(self, bit_flip_model):
        program = IfMeasure(0, Skip(), Circuit(1).x(0).to_program())
        scheduled = GleipnirAnalyzer(bit_flip_model, _config(scheduler=True)).analyze(
            program, num_qubits=1
        )
        sequential = GleipnirAnalyzer(
            bit_flip_model, _config(scheduler=False)
        ).analyze(program, num_qubits=1)
        assert scheduled.error_bound == sequential.error_bound


class TestReplayTapeAlignment:
    def test_take_wrong_kind_raises(self):
        tape = ReplayTape()
        tape.record(TapeSkip(delta=0.0))
        with pytest.raises(LogicError, match="out of step"):
            tape.take(TapeGate)

    def test_take_past_end_raises(self):
        tape = ReplayTape()
        with pytest.raises(LogicError, match="exhausted"):
            tape.take(TapeMeasure)

    def test_verify_exhausted(self):
        tape = ReplayTape()
        tape.record(TapeSkip(delta=0.1))
        with pytest.raises(LogicError, match="consumed 0 of 1"):
            tape.verify_exhausted()
        assert tape.take(TapeSkip).delta == 0.1
        tape.verify_exhausted()  # no raise

    def test_rewind_and_counts(self):
        tape = ReplayTape()
        tape.record(TapeGate(0.0, None, 0.0, 0.0))
        tape.record(TapeSkip(delta=0.0))
        assert len(tape) == 2
        assert tape.num_gates == 1
        tape.take(TapeGate)
        tape.rewind()
        assert tape.take(TapeGate).truncation_added == 0.0


class TestEngineThreading:
    def test_job_result_reports_single_pass(self, bit_flip_model):
        """Engine jobs surface the MPS-walk instrumentation."""
        job = AnalysisJob.from_circuit(
            random_circuit(3, 8, seed=1), bit_flip_model, config=_config()
        )
        result = execute_job(job)
        assert result.ok
        assert result.mps_walks == 1
