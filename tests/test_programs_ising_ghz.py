"""Tests for the Ising and GHZ benchmark generators."""

import numpy as np
import pytest

from repro.circuits import Circuit, count_gates_by_name
from repro.errors import CircuitError
from repro.linalg import ghz_state
from repro.programs import (
    IsingParameters,
    ghz_circuit,
    ghz_star_circuit,
    ideal_ghz_distribution,
    ising_circuit,
    ising_gate_count,
    ising_trotter_step,
)
from repro.semantics import simulate_statevector


class TestIsing:
    def test_gate_count_formula(self):
        params = IsingParameters(steps=3)
        circuit = ising_circuit(6, params)
        assert circuit.gate_count() == ising_gate_count(6, params)

    def test_periodic_chain_has_extra_edge(self):
        open_chain = ising_circuit(4, IsingParameters(steps=1))
        ring = ising_circuit(4, IsingParameters(steps=1, periodic=True))
        assert ring.gate_count() == open_chain.gate_count() + 3

    def test_initial_superposition_layer(self):
        circuit = ising_circuit(4, IsingParameters(steps=1), initial_superposition=True)
        assert count_gates_by_name(circuit)["h"] == 4

    def test_trotter_step_appends_in_place(self):
        circuit = Circuit(3)
        ising_trotter_step(circuit, IsingParameters(steps=1))
        assert circuit.gate_count() == 3 * 2 + 3

    def test_parameter_validation(self):
        with pytest.raises(CircuitError):
            IsingParameters(steps=0)
        with pytest.raises(CircuitError):
            IsingParameters(time_step=0.0)
        with pytest.raises(CircuitError):
            ising_circuit(1)

    def test_zero_field_conserves_z_basis(self):
        """With no transverse field the |0...0> state only picks up phases."""
        params = IsingParameters(field=0.0, steps=2)
        circuit = ising_circuit(3, params)
        state = simulate_statevector(circuit)
        assert np.isclose(abs(state[0]), 1.0)


class TestGHZ:
    def test_ladder_prepares_ghz(self):
        for n in (2, 3, 5):
            state = simulate_statevector(ghz_circuit(n))
            assert np.allclose(np.abs(state), np.abs(ghz_state(n)), atol=1e-10)

    def test_star_prepares_ghz(self):
        state = simulate_statevector(ghz_star_circuit(4, root=1))
        probabilities = np.abs(state) ** 2
        assert np.isclose(probabilities[0], 0.5)
        assert np.isclose(probabilities[-1], 0.5)

    def test_gate_counts(self):
        assert ghz_circuit(5).gate_count() == 5
        assert ghz_star_circuit(5).gate_count() == 5

    def test_ideal_distribution(self):
        distribution = ideal_ghz_distribution(3)
        assert np.isclose(distribution[0], 0.5)
        assert np.isclose(distribution[7], 0.5)
        assert np.isclose(distribution.sum(), 1.0)

    def test_validation(self):
        with pytest.raises(CircuitError):
            ghz_circuit(1)
        with pytest.raises(CircuitError):
            ghz_star_circuit(3, root=5)
