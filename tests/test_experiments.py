"""Tests for the experiment harnesses (small configurations only).

The full regeneration of the paper's tables lives in ``benchmarks/``; these
tests exercise the harness logic and the expected *shapes* on tiny instances
so the suite stays fast.
"""

import numpy as np
import pytest

from repro.config import AnalysisConfig, SDPConfig
from repro.errors import ExperimentError
from repro.experiments import (
    default_mapping_experiments,
    format_table,
    render_figure14,
    render_table2,
    render_table3,
    run_figure14,
    run_table2,
    run_table3,
)
from repro.experiments.runner import build_parser, main
from repro.programs import ghz_circuit


FAST = AnalysisConfig(mps_width=4, sdp=SDPConfig(max_iterations=200, tolerance=1e-4))


@pytest.fixture(scope="module")
def small_table2():
    return run_table2(
        scale="reduced",
        mps_width=4,
        benchmarks=["QAOA_line_10", "QAOARandom20"],
        config=FAST,
        include_lqr=False,
    )


@pytest.fixture(scope="module")
def small_table3():
    # shots=None compares against the exact emulated distribution, for which
    # the bound-dominates-measured-error property holds unconditionally
    # (finite shots add sampling noise on top, as on a real device).
    experiments = [("GHZ-3", ghz_circuit(3), [(0, 1, 2), (1, 2, 3)])]
    return run_table3(shots=None, experiments=experiments, config=FAST, seed=3)


class TestTable2:
    def test_rows_and_shape(self, small_table2):
        assert len(small_table2.rows) == 2
        for row in small_table2.rows:
            assert row.gleipnir_bound <= row.worst_case_bound + 1e-9
            assert row.gate_count > 0
            assert row.gleipnir_seconds > 0

    def test_worst_case_equals_gate_count_times_p(self, small_table2):
        for row in small_table2.rows:
            assert np.isclose(
                row.worst_case_bound, row.gate_count * small_table2.bit_flip_probability, rtol=1e-6
            )

    def test_line_benchmark_is_dramatically_tighter(self, small_table2):
        row = small_table2.row("QAOA_line_10")
        assert row.improvement_over_worst_case > 0.5

    def test_row_lookup_and_serialisation(self, small_table2):
        assert small_table2.row("QAOARandom20").benchmark == "QAOARandom20"
        with pytest.raises(ExperimentError):
            small_table2.row("missing")
        assert isinstance(small_table2.as_dicts()[0], dict)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ExperimentError):
            run_table2(scale="reduced", benchmarks=["nope"], include_lqr=False)

    def test_lqr_included_when_requested(self):
        result = run_table2(
            scale="reduced",
            mps_width=4,
            benchmarks=["QAOA_line_10"],
            config=FAST,
            include_lqr=True,
        )
        row = result.rows[0]
        assert row.lqr_timed_out or row.lqr_bound is not None

    def test_render(self, small_table2):
        text = render_table2(small_table2)
        assert "QAOA_line_10" in text and "Worst case" in text
        markdown = render_table2(small_table2, markdown=True)
        assert markdown.count("|") > 10


class TestFigure14:
    def test_sweep_shape(self):
        result = run_figure14(
            scale="reduced", benchmark="Isingmodel45", widths=[1, 2, 4], config=FAST
        )
        assert result.widths() == [1, 2, 4]
        bounds = result.bounds()
        # Larger widths can only improve (weakly) the bound.
        assert bounds[2] <= bounds[0] + 1e-9
        assert all(runtime > 0 for runtime in result.runtimes())
        text = render_figure14(result)
        assert "MPS size" in text

    def test_delta_shrinks_with_width(self):
        result = run_figure14(
            scale="reduced", benchmark="Isingmodel45", widths=[1, 8], config=FAST
        )
        assert result.points[1].final_delta <= result.points[0].final_delta + 1e-12


class TestTable3:
    def test_bounds_dominate_and_rank_consistently(self, small_table3):
        assert small_table3.all_bounds_dominate()
        assert small_table3.ranking_consistent("GHZ-3")

    def test_calibration_ordering_reflected(self, small_table3):
        rows = {row.mapping_label: row for row in small_table3.rows_for("GHZ-3")}
        assert rows["1-2-3"].measured_error < rows["0-1-2"].measured_error
        assert rows["1-2-3"].gleipnir_bound < rows["0-1-2"].gleipnir_bound

    def test_default_experiments_shape(self):
        experiments = default_mapping_experiments()
        names = [name for name, _, _ in experiments]
        assert names == ["GHZ-3", "GHZ-5"]
        ghz5_mappings = experiments[1][2]
        assert (2, 1, 0, 3, 4) in ghz5_mappings

    def test_render(self, small_table3):
        text = render_table3(small_table3)
        assert "Measured error" in text
        assert "consistent" in text


class TestReportAndRunner:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        assert "333" in text and "-+-" in text

    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["table2", "--scale", "reduced", "--no-lqr"])
        assert args.command == "table2"
        args = parser.parse_args(["figure14", "--widths", "1", "2"])
        assert args.widths == [1, 2]

    def test_main_table3_smoke(self, tmp_path, monkeypatch):
        output = tmp_path / "report.txt"
        # Shrink the default experiments so the CLI smoke test stays fast.
        import repro.experiments.runner as runner_module

        def tiny_table3(**kwargs):
            return run_table3(
                shots=256,
                experiments=[("GHZ-3", ghz_circuit(3), [(1, 2, 3)])],
                config=FAST,
                seed=1,
            )

        monkeypatch.setattr(runner_module, "run_table3", tiny_table3)
        exit_code = main(["table3", "--output", str(output)])
        assert exit_code == 0
        assert "GHZ-3" in output.read_text()
