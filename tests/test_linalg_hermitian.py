"""Unit and property tests for the Hermitian vectorisation used by the SDP engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    hermitian_basis,
    hermitian_dim,
    hunvec,
    hvec,
    is_hvec_consistent,
    random_hermitian,
)


class TestHvec:
    def test_dimensions(self):
        assert hermitian_dim(4) == 16
        assert hvec(np.eye(3)).shape == (9,)

    def test_roundtrip_identity(self):
        assert np.allclose(hunvec(hvec(np.eye(2)), 2), np.eye(2))

    def test_isometry_on_known_matrices(self):
        a = np.array([[1, 1j], [-1j, 2]], dtype=complex)
        b = np.array([[0, 2], [2, -1]], dtype=complex)
        assert np.isclose(hvec(a) @ hvec(b), np.trace(a @ b).real)

    def test_hunvec_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            hunvec(np.zeros(5), 2)

    def test_consistency_helper(self):
        assert is_hvec_consistent(random_hermitian(3, rng=np.random.default_rng(0)))


class TestHermitianBasis:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_basis_is_orthonormal(self, n):
        basis = hermitian_basis(n)
        assert len(basis) == n * n
        gram = np.array(
            [[np.trace(a @ b).real for b in basis] for a in basis]
        )
        assert np.allclose(gram, np.eye(n * n), atol=1e-12)

    def test_basis_elements_are_hermitian(self):
        for element in hermitian_basis(3):
            assert np.allclose(element, element.conj().T)

    def test_basis_matches_hvec_ordering(self):
        """hvec coefficients against the basis reproduce the matrix."""
        rng = np.random.default_rng(5)
        matrix = random_hermitian(3, rng=rng)
        coefficients = hvec(matrix)
        rebuilt = sum(c * e for c, e in zip(coefficients, hermitian_basis(3)))
        assert np.allclose(rebuilt, matrix, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 5000), n=st.integers(1, 5))
def test_hvec_roundtrip_and_isometry(seed, n):
    rng = np.random.default_rng(seed)
    a = random_hermitian(n, rng=rng)
    b = random_hermitian(n, rng=rng)
    assert np.allclose(hunvec(hvec(a), n), a, atol=1e-10)
    assert np.isclose(hvec(a) @ hvec(b), np.trace(a @ b).real, atol=1e-9)
    assert np.isclose(np.linalg.norm(hvec(a)), np.linalg.norm(a, "fro"), atol=1e-9)
