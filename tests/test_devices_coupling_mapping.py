"""Tests for coupling maps and qubit-mapping protocols."""

import pytest

from repro.devices import (
    CouplingMap,
    best_path_mapping,
    boeblingen_calibration,
    estimate_mapping_cost,
    map_circuit,
    noise_adaptive_mapping,
    trivial_mapping,
    uniform_calibration,
)
from repro.errors import DeviceError
from repro.programs import ghz_circuit


class TestCouplingMap:
    def test_linear(self):
        coupling = CouplingMap.linear(4)
        assert coupling.has_edge(1, 2)
        assert not coupling.has_edge(0, 2)
        assert coupling.distance(0, 3) == 3
        assert coupling.shortest_path(0, 3) == [0, 1, 2, 3]

    def test_ring_and_grid(self):
        assert CouplingMap.ring(5).distance(0, 4) == 1
        grid = CouplingMap.grid(2, 3)
        assert grid.num_qubits == 6
        assert grid.has_edge(0, 3)

    def test_boeblingen_shape(self):
        """Figure 15: 20 qubits, row edges plus alternating vertical links."""
        coupling = CouplingMap.ibm_boeblingen()
        assert coupling.num_qubits == 20
        assert coupling.has_edge(0, 1)
        assert coupling.has_edge(1, 6)
        assert coupling.has_edge(13, 18)
        assert not coupling.has_edge(0, 5)
        assert coupling.is_connected_path([0, 1, 2, 3, 4])

    def test_lima_shape(self):
        coupling = CouplingMap.ibm_lima()
        assert coupling.num_qubits == 5
        assert coupling.degree(1) == 3
        assert coupling.has_edge(3, 4)

    def test_simple_paths(self):
        coupling = CouplingMap.linear(4)
        paths = coupling.simple_paths(3)
        assert [0, 1, 2] in paths and [3, 2, 1] in paths
        assert coupling.simple_paths(1) == [[0], [1], [2], [3]]

    def test_validation(self):
        with pytest.raises(DeviceError):
            CouplingMap(2, [(0, 5)])
        with pytest.raises(DeviceError):
            CouplingMap(2, [(0, 0)])
        with pytest.raises(DeviceError):
            CouplingMap(0, [])
        disconnected = CouplingMap(3, [(0, 1)])
        with pytest.raises(DeviceError):
            disconnected.distance(0, 2)


class TestMapping:
    def test_map_circuit_adjacent(self):
        coupling = CouplingMap.ibm_boeblingen()
        mapped = map_circuit(ghz_circuit(3), (1, 2, 3), coupling)
        assert mapped.num_added_gates == 0
        assert mapped.label() == "1-2-3"
        for op in mapped.physical_circuit.operations():
            if op.gate.num_qubits == 2:
                assert coupling.has_edge(*op.qubits)

    def test_map_circuit_with_routing(self):
        coupling = CouplingMap.linear(5)
        circuit = ghz_circuit(3).copy()
        mapped = map_circuit(circuit, (0, 2, 4), coupling)
        assert mapped.num_added_gates > 0
        for op in mapped.physical_circuit.operations():
            if op.gate.num_qubits == 2:
                assert coupling.has_edge(*op.qubits)

    def test_mapping_validation(self):
        coupling = CouplingMap.linear(3)
        with pytest.raises(DeviceError):
            map_circuit(ghz_circuit(3), (0, 1), coupling)
        with pytest.raises(DeviceError):
            map_circuit(ghz_circuit(3), (0, 0, 1), coupling)
        with pytest.raises(DeviceError):
            map_circuit(ghz_circuit(3), (0, 1, 7), coupling)

    def test_trivial_mapping(self):
        assert trivial_mapping(ghz_circuit(3), CouplingMap.linear(5)) == (0, 1, 2)
        with pytest.raises(DeviceError):
            trivial_mapping(ghz_circuit(5), CouplingMap.linear(3))


class TestMappingProtocols:
    def test_estimate_cost_prefers_quiet_edges(self):
        coupling = CouplingMap.ibm_boeblingen()
        calibration = boeblingen_calibration()
        circuit = ghz_circuit(3)
        noisy_cost = estimate_mapping_cost(circuit, (0, 1, 2), coupling, calibration)
        quiet_cost = estimate_mapping_cost(circuit, (1, 2, 3), coupling, calibration)
        assert quiet_cost < noisy_cost

    def test_best_path_mapping_picks_minimum(self):
        coupling = CouplingMap.ibm_boeblingen()
        calibration = boeblingen_calibration()
        circuit = ghz_circuit(3)
        best = best_path_mapping(circuit, coupling, calibration)
        best_cost = estimate_mapping_cost(circuit, best, coupling, calibration)
        for candidate in [(0, 1, 2), (1, 2, 3), (2, 3, 4)]:
            assert best_cost <= estimate_mapping_cost(circuit, candidate, coupling, calibration) + 1e-12

    def test_noise_adaptive_mapping_is_valid(self):
        coupling = CouplingMap.ibm_lima()
        calibration = uniform_calibration(coupling)
        circuit = ghz_circuit(3)
        mapping = noise_adaptive_mapping(circuit, coupling, calibration)
        assert len(set(mapping)) == 3
        assert all(0 <= q < coupling.num_qubits for q in mapping)

    def test_noise_adaptive_on_uniform_calibration_matches_connectivity(self):
        coupling = CouplingMap.linear(4)
        calibration = uniform_calibration(coupling)
        mapping = noise_adaptive_mapping(ghz_circuit(3), coupling, calibration)
        mapped = map_circuit(ghz_circuit(3), mapping, coupling)
        # A linear circuit on a linear device should need no extra routing.
        assert mapped.num_added_gates == 0
