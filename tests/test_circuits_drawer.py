"""Tests for the ASCII circuit renderer."""

import pytest

from repro.circuits import Circuit
from repro.circuits.drawer import draw_circuit
from repro.errors import CircuitError


class TestDrawCircuit:
    def test_ghz_layout(self, ghz2_circuit):
        art = draw_circuit(ghz2_circuit)
        lines = art.splitlines()
        assert lines[0].startswith("q0:")
        assert "[h]" in lines[0]
        assert "●" in lines[0]
        assert "[X]" in lines[-1]
        # Vertical connector between the control and target rows.
        assert any("│" in line for line in lines)

    def test_single_qubit_parametric_gate(self):
        art = draw_circuit(Circuit(1).rz(0.5, 0))
        assert "rz(0.5)" in art

    def test_swap_and_cz(self):
        art = draw_circuit(Circuit(2).swap(0, 1).cz(0, 1))
        assert art.count("x") >= 2
        assert "[Z]" in art

    def test_custom_two_qubit_gate_prints_name_on_both_wires(self):
        art = draw_circuit(Circuit(2).rzz(0.3, 0, 1))
        assert art.count("rzz") == 2

    def test_every_qubit_has_a_wire(self):
        art = draw_circuit(Circuit(3).h(0))
        lines = [line for line in art.splitlines() if line.startswith("q")]
        assert len(lines) == 3
        assert lines[2].startswith("q2:")

    def test_parallel_gates_share_a_column(self):
        art = draw_circuit(Circuit(2).h(0).h(1))
        lines = [line for line in art.splitlines() if line.startswith("q")]
        assert lines[0].index("[h]") == lines[1].index("[h]")

    def test_branches_rejected(self):
        circuit = Circuit(2).h(0)
        circuit.if_measure(0, lambda c: c.x(1))
        with pytest.raises(CircuitError):
            draw_circuit(circuit)

    def test_empty_circuit(self):
        art = draw_circuit(Circuit(2))
        assert art.splitlines()[0].startswith("q0:")
