"""Property tests: batched certification is bit-identical to per-gate.

The single-pass pipeline solves and certifies all SDP instances of a solve
class in one fused batch (`gate_error_bounds_batch`).  Its contract is that
every per-element result is *exactly* what the per-gate entry point
(`gate_error_bound`) produces — same certified value, same dual certificate,
bit for bit — because both run the identical batched primitives and those
primitives are independent of the batch composition.

The property is exercised across the whole reduced Table 2 program library
(the real solve classes each benchmark generates) and on random circuits.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import random_circuit

from repro.config import AnalysisConfig, SDPConfig
from repro.core.analyzer import GleipnirAnalyzer
from repro.core.derivation import ReplayTape
from repro.core.rules import absorb_continuations
from repro.core.scheduler import BoundScheduler
from repro.mps.approximator import MPSApproximator
from repro.noise import NoiseModel
from repro.programs.library import table2_benchmarks
from repro.sdp import gate_error_bound, gate_error_bounds_batch

#: Identity between the batch and per-gate paths does not depend on solver
#: convergence, so a reduced iteration cap keeps the sweep fast.
FAST_SDP = SDPConfig(max_iterations=200, tolerance=1e-5)

#: Instances checked per benchmark (the classes are deduped, so the head of
#: the list already spans the program's distinct gate/predicate shapes).
MAX_CLASSES_PER_PROGRAM = 10


def solve_classes(circuit_or_program, *, num_qubits=None, mps_width=8):
    """The unique solve classes the scheduler pre-pass collects."""
    model = NoiseModel.uniform_bit_flip(1e-3)
    config = AnalysisConfig(mps_width=mps_width, sdp=FAST_SDP)
    analyzer = GleipnirAnalyzer(model, config)
    scheduler = BoundScheduler(
        model, analyzer.cache, config, gate_key=analyzer._gate_key
    )
    program = (
        circuit_or_program.to_program()
        if hasattr(circuit_or_program, "to_program")
        else circuit_or_program
    )
    if num_qubits is None:
        num_qubits = program.num_qubits
    approximator = MPSApproximator.from_product_state(
        [0] * num_qubits, width=mps_width
    )
    scheduler._collect(absorb_continuations(program), approximator, ReplayTape())
    return [
        (c.gate_matrix, c.noise_channel, c.rho_rounded, c.delta_effective)
        for c in scheduler._classes.values()
    ]


def assert_bit_identical(batch, singles):
    assert len(batch) == len(singles)
    for batched, single in zip(batch, singles):
        assert batched.value == single.value
        assert batched.method == single.method
        assert batched.certificate.y == single.certificate.y
        assert batched.certificate.value == single.certificate.value
        assert np.array_equal(batched.certificate.z, single.certificate.z)


@pytest.mark.parametrize(
    "spec", table2_benchmarks("reduced"), ids=lambda spec: spec.name
)
def test_batch_certification_matches_per_gate_across_library(spec):
    """Batch-certified bounds == per-gate certification, bit for bit."""
    instances = solve_classes(spec.build())[:MAX_CLASSES_PER_PROGRAM]
    assert instances, f"benchmark {spec.name} produced no noisy gate instances"
    batch = gate_error_bounds_batch(instances, config=FAST_SDP)
    singles = [gate_error_bound(*instance, config=FAST_SDP) for instance in instances]
    assert_bit_identical(batch, singles)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 1000))
def test_batch_certification_matches_per_gate_random_circuits(seed):
    circuit = random_circuit(4, 12, seed=seed)
    instances = solve_classes(circuit)[:MAX_CLASSES_PER_PROGRAM]
    batch = gate_error_bounds_batch(instances, config=FAST_SDP)
    singles = [gate_error_bound(*instance, config=FAST_SDP) for instance in instances]
    assert_bit_identical(batch, singles)


def test_batch_composition_independence():
    """An instance certifies identically alone, in a pair, or in the full set."""
    instances = solve_classes(random_circuit(4, 16, seed=11))[:6]
    assert len(instances) >= 3
    full = gate_error_bounds_batch(instances, config=FAST_SDP)
    alone = gate_error_bounds_batch([instances[0]], config=FAST_SDP)
    pair = gate_error_bounds_batch([instances[0], instances[2]], config=FAST_SDP)
    assert full[0].value == alone[0].value == pair[0].value
    assert np.array_equal(full[0].certificate.z, alone[0].certificate.z)
    assert full[2].value == pair[1].value
