"""Unit tests for the Circuit builder."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.errors import CircuitError
from repro.linalg import CNOT
from repro.semantics import simulate_statevector


class TestConstruction:
    def test_fluent_chaining(self):
        circuit = Circuit(2).h(0).cx(0, 1).rz(0.3, 1)
        assert circuit.gate_count() == 3
        assert len(circuit) == 3

    def test_qubit_bounds_checked(self):
        with pytest.raises(CircuitError):
            Circuit(2).h(2)
        with pytest.raises(CircuitError):
            Circuit(0)

    def test_all_single_qubit_helpers(self):
        circuit = Circuit(1)
        circuit.i(0).x(0).y(0).z(0).h(0).s(0).sdg(0).t(0).tdg(0)
        circuit.rx(0.1, 0).ry(0.2, 0).rz(0.3, 0).p(0.4, 0).u3(0.1, 0.2, 0.3, 0)
        assert circuit.gate_count() == 14

    def test_two_qubit_helpers(self):
        circuit = Circuit(3)
        circuit.cx(0, 1).cnot(1, 2).cz(0, 2).swap(1, 2).rzz(0.5, 0, 1).crz(0.3, 0, 2)
        assert circuit.two_qubit_gate_count() == 6

    def test_custom_unitary(self):
        circuit = Circuit(2).unitary(CNOT, 0, 1, name="mygate")
        assert next(iter(circuit.operations())).gate.name == "mygate"
        with pytest.raises(CircuitError):
            Circuit(2).unitary(CNOT, 0)

    def test_layers(self):
        circuit = Circuit(3).h_layer().rx_layer(0.5)
        assert circuit.gate_count() == 6
        partial = Circuit(3).h_layer([0, 2])
        assert partial.gate_count() == 2


class TestStructure:
    def test_depth(self):
        circuit = Circuit(3).h(0).h(1).cx(0, 1).h(2)
        assert circuit.depth() == 2

    def test_operations_order(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        names = [op.gate.name for op in circuit.operations()]
        assert names == ["h", "cx"]

    def test_extend_and_copy(self):
        first = Circuit(2).h(0)
        second = Circuit(2).cx(0, 1)
        first.extend(second)
        assert first.gate_count() == 2
        clone = first.copy()
        clone.h(1)
        assert first.gate_count() == 2
        assert clone.gate_count() == 3

    def test_extend_register_check(self):
        with pytest.raises(CircuitError):
            Circuit(2).extend(Circuit(3).h(2))

    def test_inverse_cancels(self):
        circuit = Circuit(2).h(0).rz(0.4, 0).cx(0, 1)
        combined = circuit.copy().extend(circuit.inverse())
        state = simulate_statevector(combined)
        assert np.isclose(abs(state[0]), 1.0)

    def test_remap(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        remapped = circuit.remap([3, 1], num_qubits=4)
        ops = list(remapped.operations())
        assert ops[0].qubits == (3,)
        assert ops[1].qubits == (3, 1)

    def test_remap_missing_qubit(self):
        with pytest.raises(CircuitError):
            Circuit(2).cx(0, 1).remap({0: 1})


class TestBranches:
    def test_if_measure(self):
        circuit = Circuit(2).h(0)
        circuit.if_measure(0, lambda c: c.x(1), lambda c: c.z(1))
        assert circuit.has_branches()
        program = circuit.to_program()
        assert program.branch_count() == 2

    def test_if_measure_default_else(self):
        circuit = Circuit(2).h(0)
        circuit.if_measure(0, lambda c: c.x(1))
        assert circuit.to_program().branch_count() == 2

    def test_operations_rejected_with_branches(self):
        circuit = Circuit(2).h(0)
        circuit.if_measure(0, lambda c: c.x(1))
        with pytest.raises(CircuitError):
            list(circuit.operations())


class TestConversions:
    def test_roundtrip_program(self):
        circuit = Circuit(3).h(0).cx(0, 1).rz(0.2, 2)
        rebuilt = Circuit.from_program(circuit.to_program(), 3)
        assert [op.gate.name for op in rebuilt.operations()] == ["h", "cx", "rz"]

    def test_empty_circuit_program_is_skip(self):
        from repro.circuits import Skip

        assert isinstance(Circuit(1).to_program(), Skip)
