"""Unit tests for calibration data and calibration-driven noise models."""

import pytest

from repro.circuits import gates as gate_lib
from repro.devices import CouplingMap, boeblingen_calibration, lima_calibration, uniform_calibration
from repro.errors import NoiseModelError
from repro.noise import CalibrationData, noise_model_from_calibration


class TestCalibrationData:
    def test_basic_queries(self):
        calibration = CalibrationData(
            single_qubit_error={0: 1e-3, 1: 2e-3},
            two_qubit_error={(0, 1): 1e-2},
            readout_error={0: 0.02, 1: 0.03},
        )
        assert calibration.qubits() == [0, 1]
        assert calibration.edge_error(1, 0) == 1e-2
        assert calibration.has_edge(0, 1)
        assert not calibration.has_edge(1, 2)
        assert calibration.average_single_qubit_error() == pytest.approx(1.5e-3)
        assert calibration.average_two_qubit_error() == pytest.approx(1e-2)

    def test_validation(self):
        with pytest.raises(NoiseModelError):
            CalibrationData({0: 2.0}, {})
        with pytest.raises(NoiseModelError):
            CalibrationData({0: 0.1}, {(0, 1): -0.5})
        with pytest.raises(NoiseModelError):
            CalibrationData({0: 0.1}, {}, readout_error={0: 1.2})

    def test_missing_edge_raises(self):
        calibration = CalibrationData({0: 1e-3}, {})
        with pytest.raises(NoiseModelError):
            calibration.edge_error(0, 1)


class TestNoiseModelFromCalibration:
    def _calibration(self):
        return CalibrationData(
            single_qubit_error={0: 1e-3, 1: 5e-3},
            two_qubit_error={(0, 1): 2e-2},
            readout_error={0: 0.01, 1: 0.02},
            name="test",
        )

    def test_per_qubit_rules(self):
        model = noise_model_from_calibration(self._calibration())
        loud = model.channel_for(gate_lib.h(), (1,))
        quiet = model.channel_for(gate_lib.h(), (0,))
        assert loud.name != quiet.name
        assert model.is_position_dependent()

    def test_edge_rules_symmetric(self):
        model = noise_model_from_calibration(self._calibration())
        assert model.channel_for(gate_lib.cx(), (0, 1)) is not None
        assert model.channel_for(gate_lib.cx(), (1, 0)) is not None

    def test_bit_flip_kind(self):
        model = noise_model_from_calibration(self._calibration(), kind="bit_flip")
        assert model.channel_for(gate_lib.h(), (0,)).name.startswith("bit_flip")

    def test_unknown_kind(self):
        with pytest.raises(NoiseModelError):
            noise_model_from_calibration(self._calibration(), kind="bogus")

    def test_uncalibrated_qubit_falls_back_to_average(self):
        model = noise_model_from_calibration(self._calibration())
        assert model.channel_for(gate_lib.h(), (7,)) is not None


class TestSyntheticDeviceCalibrations:
    def test_boeblingen_covers_every_edge(self):
        calibration = boeblingen_calibration()
        coupling = CouplingMap.ibm_boeblingen()
        for a, b in coupling.edges():
            assert calibration.edge_error(a, b) > 0
        assert len(calibration.single_qubit_error) == 20
        assert len(calibration.readout_error) == 20

    def test_boeblingen_first_row_profile(self):
        calibration = boeblingen_calibration()
        # The intended ordering behind Table 3's ranking.
        assert calibration.edge_error(0, 1) > calibration.edge_error(3, 4)
        assert calibration.edge_error(3, 4) > calibration.edge_error(1, 2)

    def test_boeblingen_deterministic(self):
        a = boeblingen_calibration()
        b = boeblingen_calibration()
        assert a.single_qubit_error == b.single_qubit_error

    def test_lima_calibration(self):
        calibration = lima_calibration()
        assert sorted(calibration.single_qubit_error) == [0, 1, 2, 3, 4]

    def test_uniform_calibration(self):
        coupling = CouplingMap.linear(4)
        calibration = uniform_calibration(coupling, two_qubit_error=0.05)
        assert calibration.edge_error(1, 2) == 0.05
