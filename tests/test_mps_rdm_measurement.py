"""Reduced density matrices and measurement collapse on MPS states."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MPSError
from repro.linalg import (
    PAULI_Z,
    ghz_state,
    maximally_mixed,
    pure_density,
    random_statevector,
    reduced_density_matrix,
)
from repro.mps import MPS
from repro.semantics import simulate_statevector

from helpers import random_circuit


class TestReducedDensityMatrices:
    def test_single_site_of_ghz(self):
        mps = MPS.from_statevector(ghz_state(3))
        assert np.allclose(mps.reduced_density_matrix([1]), maximally_mixed(1), atol=1e-10)

    def test_pair_of_ghz(self):
        mps = MPS.from_statevector(ghz_state(3))
        rho = mps.reduced_density_matrix([0, 2])
        expected = 0.5 * (pure_density(np.array([1, 0, 0, 0.0])) + pure_density(np.array([0, 0, 0, 1.0])))
        assert np.allclose(rho, expected, atol=1e-10)

    def test_order_sensitivity(self):
        mps = MPS.from_product_state("01")
        rho_01 = mps.reduced_density_matrix([0, 1])
        rho_10 = mps.reduced_density_matrix([1, 0])
        assert np.isclose(rho_01[1, 1].real, 1.0)
        assert np.isclose(rho_10[2, 2].real, 1.0)

    def test_matches_dense_reduction(self):
        psi = random_statevector(5, rng=np.random.default_rng(7))
        mps = MPS.from_statevector(psi)
        dense = pure_density(psi)
        for qubits in ([2], [0, 3], [4, 1]):
            assert np.allclose(
                mps.reduced_density_matrix(qubits),
                reduced_density_matrix(dense, qubits),
                atol=1e-9,
            )

    def test_validation(self):
        mps = MPS.zero_state(3)
        with pytest.raises(MPSError):
            mps.reduced_density_matrix([0, 0])
        with pytest.raises(MPSError):
            mps.reduced_density_matrix([0, 1, 2])
        with pytest.raises(MPSError):
            mps.reduced_density_matrix([7])

    def test_expectation_single(self):
        mps = MPS.from_product_state("1")
        assert np.isclose(mps.expectation_single(PAULI_Z, 0).real, -1.0)


class TestMeasurement:
    def test_outcome_probabilities_of_ghz(self):
        mps = MPS.from_statevector(ghz_state(2))
        assert np.isclose(mps.outcome_probability(0, 0), 0.5)
        assert np.isclose(mps.outcome_probability(1, 1), 0.5)

    def test_projection_collapses(self):
        mps = MPS.from_statevector(ghz_state(2))
        probability = mps.project(0, 0)
        assert np.isclose(probability, 0.5)
        assert np.isclose(abs(mps.amplitude("00")), 1.0)
        assert np.isclose(mps.norm(), 1.0)

    def test_projection_onto_impossible_outcome(self):
        mps = MPS.from_product_state("0")
        with pytest.raises(MPSError):
            mps.project(0, 1)

    def test_invalid_outcome(self):
        with pytest.raises(MPSError):
            MPS.zero_state(1).outcome_probability(0, 2)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 100))
def test_rdm_matches_dense_simulation_through_circuits(seed):
    """MPS local density matrices agree with dense reductions after evolution."""
    circuit = random_circuit(4, 15, seed=seed)
    mps = MPS.zero_state(4)
    mps.max_bond = 16
    for op in circuit.operations():
        mps.apply_gate(op.gate.matrix, list(op.qubits))
    dense = pure_density(simulate_statevector(circuit))
    rng = np.random.default_rng(seed)
    a, b = rng.choice(4, size=2, replace=False)
    assert np.allclose(
        mps.reduced_density_matrix([int(a), int(b)]),
        reduced_density_matrix(dense, [int(a), int(b)]),
        atol=1e-8,
    )
