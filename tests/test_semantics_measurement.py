"""Unit tests for measurement utilities (distributions, sampling, readout error)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.linalg import ghz_state, pure_density
from repro.semantics import (
    apply_readout_error,
    expectation_of_diagonal,
    marginal_distribution,
    outcome_probabilities,
    probabilities_to_dict,
    sample_counts,
)


class TestProbabilities:
    def test_from_statevector(self):
        probs = outcome_probabilities(ghz_state(2))
        assert np.allclose(probs, [0.5, 0, 0, 0.5])

    def test_from_density_matrix(self):
        probs = outcome_probabilities(pure_density(ghz_state(2)))
        assert np.allclose(probs, [0.5, 0, 0, 0.5])

    def test_zero_state_rejected(self):
        with pytest.raises(SimulationError):
            outcome_probabilities(np.zeros(4))

    def test_probabilities_to_dict(self):
        d = probabilities_to_dict(np.array([0.5, 0.0, 0.0, 0.5]))
        assert d == {"00": 0.5, "11": 0.5}


class TestSampling:
    def test_counts_sum_to_shots(self):
        counts = sample_counts(np.array([0.5, 0.5]), 100, rng=np.random.default_rng(0))
        assert sum(counts.values()) == 100

    def test_deterministic_distribution(self):
        counts = sample_counts(np.array([1.0, 0.0]), 10, rng=np.random.default_rng(0))
        assert counts == {"0": 10}

    def test_dict_input(self):
        counts = sample_counts({"00": 0.25, "11": 0.75}, 64, rng=np.random.default_rng(1))
        assert set(counts) <= {"00", "11"}

    def test_rejects_zero_shots(self):
        with pytest.raises(SimulationError):
            sample_counts(np.array([1.0]), 0)


class TestReadoutError:
    def test_no_error_is_identity(self):
        probs = np.array([0.5, 0, 0, 0.5])
        assert np.allclose(apply_readout_error(probs, [0.0, 0.0]), probs)

    def test_full_flip(self):
        probs = np.array([1.0, 0.0])
        flipped = apply_readout_error(probs, [1.0])
        assert np.allclose(flipped, [0.0, 1.0])

    def test_preserves_normalisation(self):
        probs = np.array([0.25, 0.25, 0.25, 0.25])
        noisy = apply_readout_error(probs, {0: 0.1, 1: 0.05})
        assert np.isclose(noisy.sum(), 1.0)

    def test_length_mismatch(self):
        with pytest.raises(SimulationError):
            apply_readout_error(np.array([0.5, 0.5]), [0.1, 0.1])


class TestMarginalsAndExpectations:
    def test_marginal_distribution(self):
        probs = outcome_probabilities(ghz_state(3))
        marginal = marginal_distribution(probs, [0])
        assert np.allclose(marginal, [0.5, 0.5])

    def test_marginal_order(self):
        probs = np.zeros(4)
        probs[1] = 1.0  # |01>
        assert np.allclose(marginal_distribution(probs, [1, 0]), [0, 0, 1, 0])

    def test_expectation_of_diagonal(self):
        probs = np.array([0.25, 0.75])
        values = np.array([1.0, -1.0])
        assert np.isclose(expectation_of_diagonal(probs, values), -0.5)

    def test_expectation_shape_mismatch(self):
        with pytest.raises(SimulationError):
            expectation_of_diagonal(np.array([1.0]), np.array([1.0, 2.0]))
