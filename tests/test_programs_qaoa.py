"""Tests for the QAOA benchmark generators."""

import networkx as nx
import numpy as np
import pytest

from repro.circuits import count_gates_by_name
from repro.errors import CircuitError
from repro.programs import (
    QAOAParameters,
    line_graph,
    maxcut_cost_value,
    qaoa_maxcut_circuit,
    random_graph,
    random_regular_graph,
    ring_graph,
)
from repro.semantics import StatevectorSimulator, outcome_probabilities, expectation_of_diagonal
from repro.linalg import operator_from_function


class TestParameters:
    def test_single_round(self):
        params = QAOAParameters.single_round(0.3, 0.4)
        assert params.rounds == 1

    def test_linear_ramp(self):
        params = QAOAParameters.linear_ramp(4)
        assert params.rounds == 4
        assert params.gammas[0] < params.gammas[-1]
        assert params.betas[0] > params.betas[-1]

    def test_validation(self):
        with pytest.raises(CircuitError):
            QAOAParameters((0.1,), (0.2, 0.3))
        with pytest.raises(CircuitError):
            QAOAParameters((), ())
        with pytest.raises(CircuitError):
            QAOAParameters.linear_ramp(0)


class TestGraphs:
    def test_line_graph(self):
        graph = line_graph(5)
        assert graph.number_of_edges() == 4

    def test_ring_graph(self):
        assert ring_graph(6).number_of_edges() == 6

    def test_random_graph_deterministic(self):
        a = random_graph(10, 0.3, seed=4)
        b = random_graph(10, 0.3, seed=4)
        assert set(a.edges) == set(b.edges)

    def test_regular_graph_degree(self):
        graph = random_regular_graph(10, 4, seed=1)
        assert all(degree == 4 for _, degree in graph.degree)


class TestCircuitConstruction:
    def test_gate_counts(self):
        graph = line_graph(4)
        circuit = qaoa_maxcut_circuit(graph, QAOAParameters.single_round(0.3, 0.2))
        counts = count_gates_by_name(circuit)
        assert counts["h"] == 4
        assert counts["cx"] == 2 * graph.number_of_edges()
        assert counts["rz"] == graph.number_of_edges()
        assert counts["rx"] == 4

    def test_no_initial_layer(self):
        circuit = qaoa_maxcut_circuit(
            line_graph(3), QAOAParameters.single_round(0.3, 0.2), include_initial_layer=False
        )
        assert "h" not in count_gates_by_name(circuit)

    def test_multi_round(self):
        circuit = qaoa_maxcut_circuit(line_graph(3), QAOAParameters.linear_ramp(3))
        assert count_gates_by_name(circuit)["rx"] == 9

    def test_vertex_labels_validated(self):
        graph = nx.Graph()
        graph.add_edge(1, 5)
        with pytest.raises(CircuitError):
            qaoa_maxcut_circuit(graph, QAOAParameters.single_round(0.1, 0.1))

    def test_empty_graph_rejected(self):
        with pytest.raises(CircuitError):
            qaoa_maxcut_circuit(nx.Graph(), QAOAParameters.single_round(0.1, 0.1))


class TestSemantics:
    def test_maxcut_cost_value(self):
        graph = line_graph(3)
        assert maxcut_cost_value(graph, [0, 1, 0]) == 2
        assert maxcut_cost_value(graph, [0, 0, 0]) == 0

    def test_qaoa_improves_over_random_guessing(self):
        """QAOA at sensible angles beats the uniform-random expected cut."""
        graph = ring_graph(4)
        params = QAOAParameters.single_round(gamma=-0.4, beta=0.35)
        circuit = qaoa_maxcut_circuit(graph, params)
        probs = outcome_probabilities(StatevectorSimulator().run(circuit))
        cost_operator = operator_from_function(4, lambda bits: maxcut_cost_value(graph, bits))
        expected_cut = expectation_of_diagonal(probs, np.real(np.diag(cost_operator)))
        random_cut = graph.number_of_edges() / 2
        assert expected_cut > random_cut + 0.1
