"""Unit tests for circuit transformation passes."""

import numpy as np
import pytest

from repro.circuits import (
    Circuit,
    count_gates_by_name,
    decompose_rzz,
    decompose_swaps,
    fuse_single_qubit_gates,
    merge_adjacent_inverses,
    route_to_coupling,
)
from repro.errors import CircuitError
from repro.semantics import simulate_statevector


def states_equal_up_to_phase(a, b):
    overlap = abs(np.vdot(a, b))
    return np.isclose(overlap, 1.0, atol=1e-9)


class TestDecompositions:
    def test_decompose_rzz_preserves_semantics(self):
        circuit = Circuit(2).h(0).h(1).rzz(0.7, 0, 1)
        decomposed = decompose_rzz(circuit)
        assert "rzz" not in count_gates_by_name(decomposed)
        assert states_equal_up_to_phase(
            simulate_statevector(circuit), simulate_statevector(decomposed)
        )

    def test_decompose_swaps_preserves_semantics(self):
        circuit = Circuit(3).h(0).swap(0, 2).cx(2, 1)
        decomposed = decompose_swaps(circuit)
        assert "swap" not in count_gates_by_name(decomposed)
        assert states_equal_up_to_phase(
            simulate_statevector(circuit), simulate_statevector(decomposed)
        )

    def test_gate_counts(self):
        circuit = Circuit(2).rzz(0.3, 0, 1)
        assert decompose_rzz(circuit).gate_count() == 3
        circuit = Circuit(2).swap(0, 1)
        assert decompose_swaps(circuit).gate_count() == 3


class TestSimplifications:
    def test_fuse_single_qubit_gates(self):
        circuit = Circuit(2).h(0).t(0).h(1).cx(0, 1).s(1)
        fused = fuse_single_qubit_gates(circuit)
        assert fused.gate_count() == 4  # fused(q0), fused(q1), cx, fused(q1)
        assert states_equal_up_to_phase(
            simulate_statevector(circuit), simulate_statevector(fused)
        )

    def test_fuse_drops_identities(self):
        circuit = Circuit(1).h(0).h(0)
        fused = fuse_single_qubit_gates(circuit)
        assert fused.gate_count() == 0

    def test_merge_adjacent_inverses(self):
        circuit = Circuit(2).h(0).h(0).cx(0, 1).cx(0, 1).rz(0.3, 1)
        merged = merge_adjacent_inverses(circuit)
        assert merged.gate_count() == 1

    def test_merge_keeps_non_inverse_pairs(self):
        circuit = Circuit(1).h(0).t(0)
        assert merge_adjacent_inverses(circuit).gate_count() == 2


class TestRouting:
    def test_routing_respects_coupling(self):
        circuit = Circuit(3).h(0).cx(0, 2)
        routed = route_to_coupling(circuit, [(0, 1), (1, 2)])
        for op in routed.operations():
            if op.gate.num_qubits == 2 and op.gate.name != "swap":
                assert tuple(sorted(op.qubits)) in {(0, 1), (1, 2)}
        # A swap must have been inserted.
        assert count_gates_by_name(routed).get("swap", 0) >= 1

    def test_routing_preserves_adjacent_gates(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        routed = route_to_coupling(circuit, [(0, 1)])
        assert routed.gate_count() == 2

    def test_routing_with_layout(self):
        circuit = Circuit(2).cx(0, 1)
        routed = route_to_coupling(circuit, [(3, 4)], num_physical_qubits=5, initial_layout=[3, 4])
        op = next(iter(routed.operations()))
        assert op.qubits == (3, 4)

    def test_routing_disconnected_fails(self):
        circuit = Circuit(2).cx(0, 1)
        with pytest.raises(CircuitError):
            route_to_coupling(circuit, [], num_physical_qubits=2)

    def test_routing_bad_layout(self):
        circuit = Circuit(2).cx(0, 1)
        with pytest.raises(CircuitError):
            route_to_coupling(circuit, [(0, 1)], initial_layout=[0, 0])

    def test_count_gates_by_name(self):
        circuit = Circuit(2).h(0).h(1).cx(0, 1)
        assert count_gates_by_name(circuit) == {"h": 2, "cx": 1}
