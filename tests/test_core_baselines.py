"""Tests for the baseline analyses (worst case, LQR full simulation, exact error)."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.config import AnalysisConfig, ResourceGuard, SDPConfig
from repro.core import (
    GleipnirAnalyzer,
    exact_error,
    lqr_full_simulation_bound,
    worst_case_bound,
)
from repro.noise import NoiseModel

from helpers import random_circuit


FAST = AnalysisConfig(
    mps_width=8,
    sdp=SDPConfig(max_iterations=300, tolerance=1e-5),
    guard=ResourceGuard(max_dense_qubits=8),
)


class TestWorstCase:
    def test_equals_gate_count_times_p(self):
        p = 1e-3
        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2).rz(0.2, 2)
        outcome = worst_case_bound(circuit, NoiseModel.uniform_bit_flip(p), config=FAST)
        assert np.isclose(outcome.value, 4 * p, atol=1e-7)

    def test_noiseless_gates_do_not_count(self):
        p = 1e-3
        model = NoiseModel()
        from repro.noise import bit_flip

        model.add_gate_rule("cx", bit_flip(p).tensor(bit_flip(0.0)))
        circuit = Circuit(2).h(0).cx(0, 1)
        outcome = worst_case_bound(circuit, model, config=FAST)
        assert np.isclose(outcome.value, p, atol=1e-7)

    def test_independent_of_input_state(self):
        circuit = Circuit(2).h(0).h(1).cx(0, 1)
        model = NoiseModel.uniform_bit_flip(1e-2)
        assert worst_case_bound(circuit, model, config=FAST).value == pytest.approx(3e-2, abs=1e-6)


class TestLQRBaseline:
    def test_matches_gleipnir_on_small_programs(self, ghz3_circuit):
        """Table 2's 10-qubit rows: exact predicates = MPS predicates when exact."""
        model = NoiseModel.uniform_bit_flip(1e-3)
        lqr = lqr_full_simulation_bound(ghz3_circuit, model, config=FAST)
        gleipnir = GleipnirAnalyzer(model, FAST.replace(mps_width=8)).analyze(ghz3_circuit)
        assert lqr.value == pytest.approx(gleipnir.error_bound, rel=1e-3, abs=1e-7)

    def test_times_out_beyond_guard(self):
        model = NoiseModel.uniform_bit_flip(1e-3)
        big = Circuit(12).h_layer()
        outcome = lqr_full_simulation_bound(big, model, config=FAST)
        assert outcome.timed_out
        assert outcome.value is None
        assert not outcome.available

    def test_bound_dominates_exact(self):
        circuit = random_circuit(4, 10, seed=5)
        model = NoiseModel.uniform_bit_flip(5e-3)
        lqr = lqr_full_simulation_bound(circuit, model, config=FAST)
        exact = exact_error(circuit, model, guard=FAST.guard)
        assert lqr.value >= exact.value - 1e-9


class TestExactError:
    def test_exact_error_small_circuit(self, ghz2_circuit):
        model = NoiseModel.uniform_bit_flip(1e-2)
        outcome = exact_error(ghz2_circuit, model)
        assert outcome.available
        assert 0 < outcome.value < 3e-2

    def test_exact_error_times_out(self):
        model = NoiseModel.uniform_bit_flip(1e-2)
        outcome = exact_error(Circuit(12).h_layer(), model, guard=ResourceGuard(max_dense_qubits=6))
        assert outcome.timed_out

    def test_initial_bits(self):
        model = NoiseModel.uniform_bit_flip(1.0)
        circuit = Circuit(1).x(0)
        outcome = exact_error(circuit, model, initial_bits="1")
        assert np.isclose(outcome.value, 1.0)
