"""Tests for job specs: canonical serialization and content addressing."""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.circuits.serialize import (
    gate_from_json_dict,
    gate_to_json_dict,
    program_from_json_dict,
    program_to_json_dict,
)
from repro.config import AnalysisConfig, ResourceGuard, SDPConfig
from repro.engine.spec import (
    AnalysisJob,
    JobResult,
    config_from_json_dict,
    config_to_json_dict,
)
from repro.errors import CircuitError, EngineError, NoiseModelError
from repro.linalg.channels import QuantumChannel
from repro.noise import NoiseModel, bit_flip, depolarizing


def _branchy_circuit() -> Circuit:
    circuit = Circuit(3, name="branchy").h(0).cx(0, 1).rz(0.37, 2)
    circuit.if_measure(1, lambda c: c.x(0), lambda c: c.z(2))
    return circuit


class TestProgramSerialization:
    def test_branchy_round_trip(self):
        program = _branchy_circuit().to_program()
        payload = program_to_json_dict(program)
        rebuilt = program_from_json_dict(json.loads(json.dumps(payload)))
        assert rebuilt == program

    def test_custom_gate_embeds_matrix(self):
        matrix = np.diag([1, 1j]).astype(np.complex128)
        circuit = Circuit(1).unitary(matrix, 0, name="mygate")
        payload = program_to_json_dict(circuit)
        gate_payload = payload["gate"] if payload["kind"] == "gate" else payload["parts"][0]["gate"]
        assert "matrix" in gate_payload
        rebuilt = program_from_json_dict(payload)
        op = next(rebuilt.operations())
        assert np.allclose(op.gate.matrix, matrix)

    def test_standard_gates_omit_matrix(self):
        payload = gate_to_json_dict(Circuit(2).rzz(0.5, 0, 1).to_program().gate)
        assert "matrix" not in payload
        assert gate_from_json_dict(payload).key() == ("rzz", 2, (0.5,))

    def test_dagger_gate_round_trips_via_matrix(self):
        gate = Circuit(1).t(0).to_program().gate.dagger()
        payload = gate_to_json_dict(gate)
        assert "matrix" in payload  # "t_dg" is not a library name
        rebuilt = gate_from_json_dict(payload)
        assert np.allclose(rebuilt.matrix, gate.matrix)

    def test_malformed_payload_rejected(self):
        with pytest.raises(CircuitError):
            program_from_json_dict({"kind": "wat"})
        with pytest.raises(CircuitError):
            program_from_json_dict(["not", "a", "dict"])


class TestChannelAndModelSerialization:
    def test_channel_round_trip(self):
        channel = depolarizing(0.01)
        rebuilt = QuantumChannel.from_json_dict(channel.to_json_dict())
        assert rebuilt.name == channel.name
        assert np.allclose(rebuilt.choi(), channel.choi())

    def test_model_round_trip_preserves_resolution(self):
        model = NoiseModel(name="mixed")
        model.set_default(1, bit_flip(0.01))
        model.add_gate_rule("h", depolarizing(0.02))
        model.add_qubit_rule([1], bit_flip(0.03))
        model.add_rule("cx", [0, 1], bit_flip(0.04).tensor(bit_flip(0.0)))
        rebuilt = NoiseModel.from_json_dict(model.to_json_dict())
        circuit = Circuit(2)
        for gate, qubits in [
            (Circuit(1).h(0).to_program().gate, (0,)),
            (Circuit(1).x(0).to_program().gate, (1,)),
            (Circuit(2).cx(0, 1).to_program().gate, (0, 1)),
        ]:
            original = model.channel_for(gate, qubits)
            copied = rebuilt.channel_for(gate, qubits)
            assert np.allclose(original.choi(), copied.choi())
        assert rebuilt.is_position_dependent() == model.is_position_dependent()

    def test_rule_registration_order_is_canonicalised(self):
        a = NoiseModel(name="m").add_gate_rule("h", bit_flip(0.01)).add_gate_rule("x", bit_flip(0.02))
        b = NoiseModel(name="m").add_gate_rule("x", bit_flip(0.02)).add_gate_rule("h", bit_flip(0.01))
        assert a.to_json_dict() == b.to_json_dict()

    def test_factory_model_rejected(self):
        model = NoiseModel.from_factory(lambda gate, qubits: None)
        with pytest.raises(NoiseModelError):
            model.to_json_dict()


class TestConfigSerialization:
    def test_round_trip(self):
        config = AnalysisConfig(
            mps_width=7,
            sdp=SDPConfig(mode="fast", cache_decimals=4),
            guard=ResourceGuard(max_dense_qubits=9, max_seconds=1.5),
            scheduler=False,
        )
        rebuilt = config_from_json_dict(config_to_json_dict(config))
        assert rebuilt == config

    def test_malformed_rejected(self):
        with pytest.raises(EngineError):
            config_from_json_dict({"mps_width": 4, "nonsense": True})


def _fast_job(name="job") -> AnalysisJob:
    return AnalysisJob.from_circuit(
        _branchy_circuit(),
        NoiseModel.uniform_bit_flip(1e-3),
        config=AnalysisConfig(mps_width=4, sdp=SDPConfig(max_iterations=100, tolerance=1e-3)),
        name=name,
    )


def _shuffle_keys(payload):
    """Recursively reverse dict key order (JSON object order is irrelevant)."""
    if isinstance(payload, dict):
        return {key: _shuffle_keys(payload[key]) for key in reversed(list(payload))}
    if isinstance(payload, list):
        return [_shuffle_keys(item) for item in payload]
    return payload


class TestAnalysisJob:
    def test_json_round_trip_preserves_fingerprint(self):
        job = _fast_job()
        rebuilt = AnalysisJob.from_json(job.to_json())
        assert rebuilt.fingerprint() == job.fingerprint()
        assert rebuilt.program == job.program
        assert rebuilt.num_qubits == job.num_qubits

    def test_fingerprint_insensitive_to_dict_ordering(self):
        job = _fast_job()
        shuffled = _shuffle_keys(job.to_json_dict())
        assert list(shuffled) != list(job.to_json_dict())
        assert AnalysisJob.from_json_dict(shuffled).fingerprint() == job.fingerprint()

    def test_fingerprint_ignores_execution_knobs(self):
        job = _fast_job()
        tweaked = AnalysisJob(
            program=job.program,
            noise_model=job.noise_model,
            config=job.config.replace(
                scheduler=False,
                scheduler_workers=3,
                collect_derivation=False,
                guard=ResourceGuard(max_seconds=0.5),
            ),
            num_qubits=job.num_qubits,
            name="other-name",
        )
        tweaked.config.sdp.persistent_cache_path = "/tmp/somewhere"
        assert tweaked.fingerprint() == job.fingerprint()

    def test_fingerprint_tracks_semantic_fields(self):
        job = _fast_job()
        for change in (
            {"mps_width": 8},
            {"noise_after_gate": False},
            {"sdp": SDPConfig(mode="fast")},
        ):
            other = AnalysisJob(
                program=job.program,
                noise_model=job.noise_model,
                config=job.config.replace(**change),
                num_qubits=job.num_qubits,
                name=job.name,
            )
            assert other.fingerprint() != job.fingerprint(), change

    def test_fingerprint_stable_across_processes(self):
        job = _fast_job()
        script = (
            "import sys; from repro.engine.spec import AnalysisJob; "
            "print(AnalysisJob.from_json(sys.stdin.read()).fingerprint())"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", script],
            input=job.to_json(),
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert out.stdout.strip() == job.fingerprint()

    def test_bad_payloads_rejected(self):
        with pytest.raises(EngineError):
            AnalysisJob.from_json("not json")
        with pytest.raises(EngineError):
            AnalysisJob.from_json_dict({"kind": "something_else"})
        payload = _fast_job().to_json_dict()
        payload["version"] = 999
        with pytest.raises(EngineError):
            AnalysisJob.from_json_dict(payload)


class TestJobResult:
    def test_round_trip(self):
        result = JobResult(fingerprint="abc", name="j", error_bound=0.25, num_gates=3)
        rebuilt = JobResult.from_json_dict(json.loads(json.dumps(result.to_json_dict())))
        assert rebuilt == result
        assert rebuilt.ok

    def test_unknown_fields_ignored_missing_required_rejected(self):
        rebuilt = JobResult.from_json_dict(
            {"fingerprint": "abc", "name": "j", "future_field": 1}
        )
        assert rebuilt.fingerprint == "abc"
        with pytest.raises(EngineError):
            JobResult.from_json_dict({"name": "missing fingerprint"})
