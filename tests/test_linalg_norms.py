"""Unit and property tests for repro.linalg.norms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    distribution_from_counts,
    frobenius_norm,
    hilbert_schmidt_distance,
    operator_norm,
    pure_density,
    plus_state,
    random_density_matrix,
    schatten_norm,
    statistical_distance,
    trace_distance,
    trace_norm,
    trace_norm_distance,
    zero_state,
)


class TestSchattenNorms:
    def test_trace_norm_of_projector(self):
        assert np.isclose(trace_norm(pure_density(zero_state(1))), 1.0)

    def test_operator_norm(self):
        assert np.isclose(operator_norm(np.diag([3.0, -5.0])), 5.0)

    def test_frobenius_matches_numpy(self):
        mat = np.arange(9).reshape(3, 3).astype(complex)
        assert np.isclose(frobenius_norm(mat), np.linalg.norm(mat))

    def test_schatten_interpolation_ordering(self):
        mat = np.diag([1.0, 2.0, 3.0])
        assert schatten_norm(mat, 1) >= schatten_norm(mat, 2) >= schatten_norm(mat, np.inf)

    def test_schatten_rejects_nonpositive_p(self):
        with pytest.raises(ValueError):
            schatten_norm(np.eye(2), 0)

    def test_non_hermitian_matrix(self):
        mat = np.array([[0, 1], [0, 0]], dtype=complex)
        assert np.isclose(trace_norm(mat), 1.0)


class TestDistances:
    def test_trace_distance_orthogonal_states(self):
        assert np.isclose(
            trace_distance(pure_density(zero_state(1)), pure_density(np.array([0, 1.0]))), 1.0
        )

    def test_trace_distance_identical(self):
        rho = random_density_matrix(2, rng=np.random.default_rng(0))
        assert np.isclose(trace_distance(rho, rho), 0.0, atol=1e-12)

    def test_trace_norm_distance_is_twice_trace_distance(self):
        a = pure_density(zero_state(1))
        b = pure_density(plus_state(1))
        assert np.isclose(trace_norm_distance(a, b), 2 * trace_distance(a, b))

    def test_trace_distance_accepts_vectors(self):
        assert np.isclose(trace_distance(zero_state(1), plus_state(1)), 1 / np.sqrt(2))

    def test_hilbert_schmidt_distance(self):
        a = pure_density(zero_state(1))
        assert np.isclose(hilbert_schmidt_distance(a, a), 0.0)


class TestStatisticalDistance:
    def test_vectors(self):
        assert np.isclose(statistical_distance([0.5, 0.5], [1.0, 0.0]), 0.5)

    def test_dicts_with_missing_keys(self):
        assert np.isclose(statistical_distance({"00": 1.0}, {"11": 1.0}), 1.0)

    def test_distribution_from_counts(self):
        dist = distribution_from_counts({"0": 3, "1": 1})
        assert np.isclose(dist["0"], 0.75)

    def test_distribution_from_counts_rejects_empty(self):
        with pytest.raises(ValueError):
            distribution_from_counts({})

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            statistical_distance(np.array([1.0]), np.array([0.5, 0.5]))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2000), num_qubits=st.integers(1, 2))
def test_trace_distance_properties(seed, num_qubits):
    """Trace distance is a metric bounded by 1 on density matrices."""
    rng = np.random.default_rng(seed)
    a = random_density_matrix(num_qubits, rng=rng)
    b = random_density_matrix(num_qubits, rng=rng)
    c = random_density_matrix(num_qubits, rng=rng)
    dab = trace_distance(a, b)
    dba = trace_distance(b, a)
    assert 0.0 <= dab <= 1.0 + 1e-9
    assert np.isclose(dab, dba, atol=1e-9)
    # Triangle inequality.
    assert trace_distance(a, c) <= dab + trace_distance(b, c) + 1e-9


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2000))
def test_frobenius_lower_bounds_trace_norm(seed):
    """||A||_F <= ||A||_1, the inequality Theorem 6.1 relies on."""
    rng = np.random.default_rng(seed)
    a = random_density_matrix(2, rng=rng)
    b = random_density_matrix(2, rng=rng)
    diff = a - b
    assert frobenius_norm(diff) <= trace_norm(diff) + 1e-9
