"""Unit and property tests for the state-vector simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit
from repro.config import ResourceGuard
from repro.errors import ResourceLimitExceeded, SimulationError
from repro.linalg import basis_state, embed_operator, ghz_state
from repro.semantics import (
    StatevectorSimulator,
    apply_gate_to_statevector,
    simulate_statevector,
)

from helpers import random_circuit


class TestApplyGate:
    def test_single_qubit_gate(self):
        from repro.linalg import PAULI_X

        out = apply_gate_to_statevector(basis_state("00"), PAULI_X, [1])
        assert np.allclose(out, basis_state("01"))

    def test_two_qubit_gate_reversed_operands(self):
        from repro.linalg import CNOT

        out = apply_gate_to_statevector(basis_state("01"), CNOT, [1, 0])
        assert np.allclose(out, basis_state("11"))

    def test_shape_mismatch(self):
        from repro.linalg import CNOT

        with pytest.raises(SimulationError):
            apply_gate_to_statevector(basis_state("0"), CNOT, [0])


class TestSimulator:
    def test_ghz(self, ghz3_circuit):
        state = simulate_statevector(ghz3_circuit)
        assert np.allclose(state, ghz_state(3))

    def test_initial_state(self):
        circuit = Circuit(2).cx(0, 1)
        state = simulate_statevector(circuit, initial_state=basis_state("10"))
        assert np.allclose(state, basis_state("11"))

    def test_probabilities(self, ghz2_circuit):
        probs = StatevectorSimulator().probabilities(ghz2_circuit)
        assert np.allclose(probs, [0.5, 0, 0, 0.5])

    def test_resource_guard(self):
        simulator = StatevectorSimulator(ResourceGuard(max_statevector_qubits=3))
        with pytest.raises(ResourceLimitExceeded):
            simulator.run(Circuit(5).h(4))

    def test_wrong_initial_dimension(self):
        with pytest.raises(SimulationError):
            simulate_statevector(Circuit(2).h(0), initial_state=basis_state("0"), num_qubits=3)

    def test_num_qubits_extension(self):
        state = simulate_statevector(Circuit(1).h(0), num_qubits=2)
        assert state.shape == (4,)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 300))
def test_matches_dense_matrix_product(seed):
    """The tensor-contraction simulator agrees with explicit matrix embedding."""
    circuit = random_circuit(4, 12, seed=seed)
    state = simulate_statevector(circuit)
    dense = basis_state("0000")
    for op in circuit.operations():
        dense = embed_operator(op.gate.matrix, op.qubits, 4) @ dense
    assert np.allclose(state, dense, atol=1e-10)
    assert np.isclose(np.linalg.norm(state), 1.0)
