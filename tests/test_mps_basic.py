"""Unit tests for the MPS data structure (construction, contraction, canonical form)."""

import numpy as np
import pytest

from repro.errors import MPSError
from repro.linalg import ghz_state, random_statevector
from repro.mps import MPS


class TestConstruction:
    def test_product_state(self):
        mps = MPS.from_product_state("010")
        assert mps.num_qubits == 3
        assert np.isclose(mps.amplitude("010"), 1.0)
        assert np.isclose(mps.norm(), 1.0)
        assert mps.bond_dimensions() == [1, 1]

    def test_zero_state(self):
        assert np.isclose(MPS.zero_state(4).amplitude("0000"), 1.0)

    def test_invalid_bits(self):
        with pytest.raises(MPSError):
            MPS.from_product_state("012")
        with pytest.raises(MPSError):
            MPS.from_product_state("")

    def test_from_statevector_exact(self):
        psi = random_statevector(4, rng=np.random.default_rng(0))
        mps = MPS.from_statevector(psi)
        assert np.allclose(mps.to_statevector(), psi, atol=1e-10)

    def test_from_statevector_truncated(self):
        psi = ghz_state(4)
        mps = MPS.from_statevector(psi, max_bond=1)
        assert mps.max_bond_dimension() == 1

    def test_from_statevector_rejects_bad_length(self):
        with pytest.raises(MPSError):
            MPS.from_statevector(np.ones(3))

    def test_shape_validation(self):
        with pytest.raises(MPSError):
            MPS([np.zeros((1, 3, 1))])
        with pytest.raises(MPSError):
            MPS([np.zeros((2, 2, 1))])
        with pytest.raises(MPSError):
            MPS([np.zeros((1, 2, 2)), np.zeros((3, 2, 1))])


class TestContraction:
    def test_norm_and_inner(self):
        psi = random_statevector(3, rng=np.random.default_rng(1))
        phi = random_statevector(3, rng=np.random.default_rng(2))
        mps_psi = MPS.from_statevector(psi)
        mps_phi = MPS.from_statevector(phi)
        assert np.isclose(mps_psi.norm(), 1.0)
        assert np.isclose(mps_psi.inner(mps_phi), np.vdot(psi, phi), atol=1e-10)

    def test_inner_requires_same_length(self):
        with pytest.raises(MPSError):
            MPS.zero_state(2).inner(MPS.zero_state(3))

    def test_overlap_error_formula(self):
        a = MPS.from_statevector(ghz_state(2))
        b = MPS.zero_state(2)
        expected = 2 * np.sqrt(1 - 0.5)
        assert np.isclose(a.overlap_error(b), expected)

    def test_amplitudes(self):
        mps = MPS.from_statevector(ghz_state(3))
        assert np.isclose(abs(mps.amplitude("000")) ** 2, 0.5)
        assert np.isclose(abs(mps.amplitude("010")) ** 2, 0.0, atol=1e-12)
        with pytest.raises(MPSError):
            mps.amplitude("00")

    def test_normalize(self):
        mps = MPS.from_statevector(ghz_state(2))
        mps._tensors[0] *= 2.0  # de-normalise deliberately
        mps.normalize()
        assert np.isclose(mps.norm(), 1.0)


class TestCanonicalForm:
    def test_canonicalize_preserves_state(self):
        psi = random_statevector(4, rng=np.random.default_rng(3))
        mps = MPS.from_statevector(psi)
        before = mps.to_statevector()
        mps.canonicalize(2)
        assert mps.center == 2
        assert np.allclose(mps.to_statevector(), before, atol=1e-10)

    def test_move_center_preserves_state(self):
        psi = random_statevector(4, rng=np.random.default_rng(4))
        mps = MPS.from_statevector(psi)
        mps.canonicalize(0)
        before = mps.to_statevector()
        mps.move_center(3)
        mps.move_center(1)
        assert np.allclose(mps.to_statevector(), before, atol=1e-10)

    def test_left_tensors_are_isometric_after_canonicalize(self):
        psi = random_statevector(4, rng=np.random.default_rng(5))
        mps = MPS.from_statevector(psi)
        mps.canonicalize(3)
        for site in range(3):
            tensor = mps.tensors[site]
            chi_l, _, chi_r = tensor.shape
            matrix = tensor.reshape(chi_l * 2, chi_r)
            assert np.allclose(matrix.conj().T @ matrix, np.eye(chi_r), atol=1e-10)

    def test_center_bounds_checked(self):
        with pytest.raises(MPSError):
            MPS.zero_state(2).canonicalize(5)
        with pytest.raises(MPSError):
            MPS.zero_state(2).move_center(-1)

    def test_copy_is_independent(self):
        mps = MPS.zero_state(2)
        clone = mps.copy()
        clone.apply_single_qubit_gate(np.array([[0, 1], [1, 0]]), 0)
        assert np.isclose(mps.amplitude("00"), 1.0)
        assert np.isclose(clone.amplitude("10"), 1.0)
