"""Unit tests for the circuit DAG / moment view."""

import pytest

from repro.circuits import Circuit, CircuitDAG, circuit_depth, circuit_moments
from repro.errors import CircuitError


class TestDAG:
    def test_dependencies(self):
        circuit = Circuit(3).h(0).cx(0, 1).h(2).cx(1, 2)
        dag = CircuitDAG(circuit)
        assert len(dag) == 4
        ops = dag.operations()
        assert [op.gate.name for op in ops][0] == "h"

    def test_moments_pack_parallel_gates(self):
        circuit = Circuit(4).h(0).h(1).h(2).h(3).cx(0, 1).cx(2, 3)
        moments = circuit_moments(circuit)
        assert len(moments) == 2
        assert len(moments[0]) == 4
        assert len(moments[1]) == 2

    def test_depth_matches_circuit_depth(self):
        circuit = Circuit(3).h(0).cx(0, 1).cx(1, 2).h(0)
        assert circuit_depth(circuit) == circuit.depth()

    def test_two_qubit_depth(self):
        circuit = Circuit(3).h(0).cx(0, 1).h(1).cx(1, 2)
        dag = CircuitDAG(circuit)
        assert dag.two_qubit_depth() == 2

    def test_rejects_branches(self):
        circuit = Circuit(2).h(0)
        circuit.if_measure(0, lambda c: c.x(1))
        with pytest.raises(CircuitError):
            CircuitDAG(circuit)

    def test_empty_circuit(self):
        assert circuit_moments(Circuit(2)) == []
        assert circuit_depth(Circuit(2)) == 0
