"""Property tests: serialized jobs reproduce direct analysis exactly.

For every benchmark program in :mod:`repro.programs.library` (reduced scale),
the bound computed by ``serialize(job) → deserialize → analyze`` must equal
the bound of a direct :func:`analyze_program` call bit for bit, and the job
fingerprint must be a stable content address (insensitive to JSON object
ordering, reproducible in a fresh process).

The analyses run in the cheap ``fast`` SDP mode at a tiny MPS width — the
property under test is *determinism of the serialization boundary*, not
tightness, and certified bounds stay sound at any accuracy.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.config import AnalysisConfig, SDPConfig
from repro.core.analyzer import analyze_program
from repro.engine.pool import execute_job
from repro.engine.spec import AnalysisJob
from repro.noise import NoiseModel
from repro.programs.library import table2_benchmarks

CONFIG = AnalysisConfig(mps_width=2, sdp=SDPConfig(mode="fast"))
MODEL = NoiseModel.uniform_bit_flip(1e-4)

_SPECS = table2_benchmarks("reduced")


def _reordered(payload):
    if isinstance(payload, dict):
        return {key: _reordered(payload[key]) for key in reversed(list(payload))}
    if isinstance(payload, list):
        return [_reordered(item) for item in payload]
    return payload


@pytest.mark.parametrize("spec", _SPECS, ids=[spec.name for spec in _SPECS])
def test_serialized_job_reproduces_direct_bound(spec):
    circuit = spec.build()
    direct = analyze_program(
        circuit, MODEL, config=CONFIG.replace(collect_derivation=False), program_name=spec.name
    )

    job = AnalysisJob.from_circuit(circuit, MODEL, config=CONFIG, name=spec.name)
    rebuilt = AnalysisJob.from_json(job.to_json())
    result = execute_job(rebuilt)

    assert result.ok
    assert result.error_bound == direct.error_bound  # bit-identical, not approx
    assert result.final_delta == direct.final_delta
    assert result.num_gates == direct.num_gates


@pytest.mark.parametrize("spec", _SPECS, ids=[spec.name for spec in _SPECS])
def test_fingerprint_stable_under_reserialization_and_reordering(spec):
    circuit = spec.build()
    job = AnalysisJob.from_circuit(circuit, MODEL, config=CONFIG, name=spec.name)
    fingerprint = job.fingerprint()

    # Round trip through text (fresh floats, fresh dicts).
    assert AnalysisJob.from_json(job.to_json()).fingerprint() == fingerprint
    # JSON object order must not matter.
    shuffled = _reordered(json.loads(json.dumps(job.to_json_dict())))
    assert AnalysisJob.from_json_dict(shuffled).fingerprint() == fingerprint
    # A rebuild of the same deterministic benchmark is the same job.
    assert (
        AnalysisJob.from_circuit(spec.build(), MODEL, config=CONFIG, name=spec.name).fingerprint()
        == fingerprint
    )


def test_library_fingerprint_stable_across_processes():
    spec = _SPECS[0]
    job = AnalysisJob.from_circuit(spec.build(), MODEL, config=CONFIG, name=spec.name)
    script = (
        "import sys; from repro.engine.spec import AnalysisJob; "
        "print(AnalysisJob.from_json(sys.stdin.read()).fingerprint())"
    )
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", script],
        input=job.to_json(),
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    assert out.stdout.strip() == job.fingerprint()


def test_fingerprints_distinguish_all_benchmarks():
    fingerprints = {
        AnalysisJob.from_circuit(spec.build(), MODEL, config=CONFIG).fingerprint()
        for spec in _SPECS
    }
    assert len(fingerprints) == len(_SPECS)
