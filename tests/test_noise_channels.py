"""Unit tests for the standard noise channels."""

import numpy as np
import pytest

from repro.errors import NoiseModelError
from repro.linalg import pure_density, zero_state, plus_state
from repro.noise import (
    amplitude_damping,
    bit_flip,
    bit_phase_flip,
    coherent_overrotation,
    depolarizing,
    identity_noise,
    pauli_channel,
    phase_damping,
    phase_flip,
    thermal_relaxation,
    two_qubit_depolarizing,
)


class TestPauliChannels:
    def test_bit_flip_action(self):
        rho = pure_density(zero_state(1))
        out = bit_flip(0.3)(rho)
        assert np.isclose(out[0, 0].real, 0.7)
        assert np.isclose(out[1, 1].real, 0.3)

    def test_bit_flip_fixed_point(self):
        rho = pure_density(plus_state(1))
        assert np.allclose(bit_flip(0.4)(rho), rho, atol=1e-12)

    def test_phase_flip_action(self):
        rho = pure_density(plus_state(1))
        out = phase_flip(0.5)(rho)
        assert np.isclose(out[0, 1].real, 0.0, atol=1e-12)

    def test_bit_phase_flip_cptp(self):
        assert bit_phase_flip(0.2).is_cptp()

    def test_probability_range_checked(self):
        with pytest.raises(NoiseModelError):
            bit_flip(1.5)
        with pytest.raises(NoiseModelError):
            depolarizing(-0.1)

    def test_pauli_channel_general(self):
        channel = pauli_channel({"X": 0.1, "Z": 0.2})
        assert channel.is_cptp()
        rho = pure_density(zero_state(1))
        assert np.isclose(channel(rho)[1, 1].real, 0.1)

    def test_pauli_channel_two_qubits(self):
        channel = pauli_channel({"XX": 0.05, "ZI": 0.05})
        assert channel.num_qubits == 2
        assert channel.is_cptp()

    def test_pauli_channel_validation(self):
        with pytest.raises(NoiseModelError):
            pauli_channel({})
        with pytest.raises(NoiseModelError):
            pauli_channel({"X": 0.7, "Z": 0.6})
        with pytest.raises(NoiseModelError):
            pauli_channel({"X": 0.1, "ZZ": 0.1})


class TestDepolarizingAndDamping:
    def test_depolarizing_cptp(self):
        assert depolarizing(0.3).is_cptp()
        assert two_qubit_depolarizing(0.3).is_cptp()

    def test_two_qubit_depolarizing_dimension(self):
        assert two_qubit_depolarizing(0.1).num_qubits == 2

    def test_amplitude_damping_decays_excited_state(self):
        rho = pure_density(np.array([0, 1.0]))
        out = amplitude_damping(0.25)(rho)
        assert np.isclose(out[0, 0].real, 0.25)

    def test_phase_damping_kills_coherence(self):
        rho = pure_density(plus_state(1))
        out = phase_damping(1.0)(rho)
        assert np.isclose(abs(out[0, 1]), 0.0, atol=1e-12)
        assert np.isclose(out[0, 0].real, 0.5)

    def test_identity_noise(self):
        rho = pure_density(plus_state(1))
        assert np.allclose(identity_noise(1)(rho), rho)


class TestCoherentAndThermal:
    def test_overrotation_is_unitary(self):
        channel = coherent_overrotation("X", 0.05)
        assert channel.is_unitary_channel()
        assert coherent_overrotation("Z", 0.1, num_qubits=2).num_qubits == 2

    def test_overrotation_axis_validation(self):
        with pytest.raises(NoiseModelError):
            coherent_overrotation("W", 0.1)

    def test_thermal_relaxation_cptp(self):
        channel = thermal_relaxation(50e-6, 70e-6, 100e-9)
        assert channel.is_cptp()

    def test_thermal_relaxation_validation(self):
        with pytest.raises(NoiseModelError):
            thermal_relaxation(10e-6, 30e-6, 1e-7)
        with pytest.raises(NoiseModelError):
            thermal_relaxation(-1, 1, 1)

    def test_thermal_relaxation_limits(self):
        # Long gate time relative to T1 means strong damping of |1>.
        channel = thermal_relaxation(1.0, 1.0, 10.0)
        rho = pure_density(np.array([0, 1.0]))
        assert channel(rho)[0, 0].real > 0.9
