"""Shared fixtures for the test suite.

The SDP-heavy tests use ``fast_config`` (low iteration caps) whenever the
asserted property is soundness rather than tightness — certified bounds stay
valid at any solver accuracy, which keeps the suite quick.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from helpers import random_circuit  # noqa: E402

from repro.circuits import Circuit  # noqa: E402
from repro.config import AnalysisConfig, ResourceGuard, SDPConfig  # noqa: E402
from repro.noise import NoiseModel  # noqa: E402


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def fast_sdp_config() -> SDPConfig:
    """A cheap SDP configuration: still certified, just potentially looser."""
    return SDPConfig(max_iterations=400, tolerance=1e-5)


@pytest.fixture
def fast_analysis_config(fast_sdp_config: SDPConfig) -> AnalysisConfig:
    return AnalysisConfig(mps_width=8, sdp=fast_sdp_config, guard=ResourceGuard(max_dense_qubits=10))


@pytest.fixture
def bit_flip_model() -> NoiseModel:
    """The paper's sample noise model with a visible error rate."""
    return NoiseModel.uniform_bit_flip(1e-3)


@pytest.fixture
def ghz2_circuit() -> Circuit:
    return Circuit(2, name="ghz2").h(0).cx(0, 1)


@pytest.fixture
def ghz3_circuit() -> Circuit:
    return Circuit(3, name="ghz3").h(0).cx(0, 1).cx(1, 2)


@pytest.fixture
def random_circuit_factory():
    return random_circuit
