"""Shared fixtures for the test suite.

The SDP-heavy tests use ``fast_config`` (low iteration caps) whenever the
asserted property is soundness rather than tightness — certified bounds stay
valid at any solver accuracy, which keeps the suite quick.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.config import AnalysisConfig, ResourceGuard, SDPConfig
from repro.noise import NoiseModel


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def fast_sdp_config() -> SDPConfig:
    """A cheap SDP configuration: still certified, just potentially looser."""
    return SDPConfig(max_iterations=400, tolerance=1e-5)


@pytest.fixture
def fast_analysis_config(fast_sdp_config: SDPConfig) -> AnalysisConfig:
    return AnalysisConfig(mps_width=8, sdp=fast_sdp_config, guard=ResourceGuard(max_dense_qubits=10))


@pytest.fixture
def bit_flip_model() -> NoiseModel:
    """The paper's sample noise model with a visible error rate."""
    return NoiseModel.uniform_bit_flip(1e-3)


@pytest.fixture
def ghz2_circuit() -> Circuit:
    return Circuit(2, name="ghz2").h(0).cx(0, 1)


@pytest.fixture
def ghz3_circuit() -> Circuit:
    return Circuit(3, name="ghz3").h(0).cx(0, 1).cx(1, 2)


def random_circuit(num_qubits: int, num_gates: int, seed: int = 0) -> Circuit:
    """A random 1q/2q circuit used by several property tests."""
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits, name=f"random_{num_qubits}_{num_gates}")
    for _ in range(num_gates):
        kind = rng.integers(0, 4)
        if kind == 0:
            circuit.rx(float(rng.uniform(0, 2 * np.pi)), int(rng.integers(0, num_qubits)))
        elif kind == 1:
            circuit.rz(float(rng.uniform(0, 2 * np.pi)), int(rng.integers(0, num_qubits)))
        elif kind == 2:
            circuit.h(int(rng.integers(0, num_qubits)))
        else:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.cx(int(a), int(b))
    return circuit


@pytest.fixture
def random_circuit_factory():
    return random_circuit
