"""Tests for configuration objects, resource guards, and the error hierarchy."""

import pytest

import repro
from repro.config import (
    AnalysisConfig,
    DEFAULT_BIT_FLIP_PROBABILITY,
    DEFAULT_MPS_WIDTH,
    ResourceGuard,
    SDPConfig,
    full_scale_requested,
)
from repro.errors import (
    CertificationError,
    CircuitError,
    DerivationCheckError,
    GateError,
    LogicError,
    MPSError,
    ReproError,
    ResourceLimitExceeded,
    SDPError,
    SimulationError,
)


class TestConfig:
    def test_defaults_match_paper(self):
        assert DEFAULT_MPS_WIDTH == 128
        assert DEFAULT_BIT_FLIP_PROBABILITY == 1e-4
        config = AnalysisConfig()
        assert config.mps_width == 128
        config.validate()

    def test_sdp_config_validation(self):
        with pytest.raises(ValueError):
            SDPConfig(mode="wat").validate()
        with pytest.raises(ValueError):
            SDPConfig(max_iterations=0).validate()
        with pytest.raises(ValueError):
            SDPConfig(tolerance=2.0).validate()

    def test_analysis_config_validation(self):
        with pytest.raises(ValueError):
            AnalysisConfig(mps_width=0).validate()

    def test_replace(self):
        config = AnalysisConfig()
        other = config.replace(mps_width=4)
        assert other.mps_width == 4
        assert config.mps_width == 128

    def test_replace_deep_copies_nested_state(self):
        """Mutating a replaced copy must not leak into the original (or back).

        ``dataclasses.replace`` alone keeps the same ``SDPConfig`` and
        ``ResourceGuard`` instances in the copy; the engine mutates per-worker
        copies (cache paths, budgets), so sharing would corrupt sibling jobs.
        """
        config = AnalysisConfig()
        copy = config.replace(mps_width=4)
        assert copy.sdp is not config.sdp
        assert copy.guard is not config.guard

        copy.sdp.persistent_cache_path = "/tmp/engine-cache"
        copy.guard.max_seconds = 0.5
        assert config.sdp.persistent_cache_path is None
        assert config.guard.max_seconds is None

        # Explicit nested replacements are used as-is.
        sdp = SDPConfig(mode="fast")
        assert config.replace(sdp=sdp).sdp is sdp

    def test_resource_guard(self):
        guard = ResourceGuard(max_dense_qubits=5, max_statevector_qubits=8)
        guard.check_dense_qubits(5)
        with pytest.raises(ResourceLimitExceeded):
            guard.check_dense_qubits(6)
        with pytest.raises(ResourceLimitExceeded):
            guard.check_statevector_qubits(9)

    def test_full_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not full_scale_requested()
        monkeypatch.setenv("REPRO_FULL", "1")
        assert full_scale_requested()
        monkeypatch.setenv("REPRO_FULL", "no")
        assert not full_scale_requested()


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            CircuitError,
            GateError,
            SimulationError,
            ResourceLimitExceeded,
            MPSError,
            SDPError,
            CertificationError,
            LogicError,
            DerivationCheckError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_gate_error_is_circuit_error(self):
        assert issubclass(GateError, CircuitError)

    def test_resource_limit_is_simulation_error(self):
        assert issubclass(ResourceLimitExceeded, SimulationError)


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_top_level_exports(self):
        for name in (
            "Circuit",
            "NoiseModel",
            "GleipnirAnalyzer",
            "analyze_program",
            "MPS",
            "approximate_program",
            "diamond_distance",
            "rho_delta_diamond_norm",
            "worst_case_bound",
        ):
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        """The README quickstart in one breath."""
        circuit = repro.Circuit(2, name="ghz").h(0).cx(0, 1)
        noise = repro.NoiseModel.uniform_bit_flip(1e-3)
        config = repro.AnalysisConfig(mps_width=4, sdp=repro.SDPConfig(max_iterations=200, tolerance=1e-4))
        result = repro.analyze_program(circuit, noise, config=config)
        assert 0 < result.error_bound < 2 * 1e-3 + 1e-5
