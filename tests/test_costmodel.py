"""Tests for the per-solve-class SDP cost model and LPT chunk packing."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.costmodel import (
    COLD_PRIOR_SECONDS_PER_DIM3,
    SolveCostModel,
    global_model,
    lpt_pack,
    parse_label_big,
    reset_global_model,
)


class TestLabelParsing:
    def test_parses_solve_class_labels(self):
        assert parse_label_big("dim16_constrained") == 16
        assert parse_label_big("dim4_unconstrained") == 4

    def test_foreign_labels_fall_back_to_small_positive_dim(self):
        for label in ("", "dim_constrained", "garbage", "dim-3_constrained", None):
            assert parse_label_big(label) >= 1


class TestColdStartPrior:
    """Never-observed classes predict by the dim³ prior."""

    def test_prior_scales_as_big_cubed(self):
        model = SolveCostModel()
        coefficients = model.coefficients_for("dim16_constrained")
        assert coefficients.source == "prior"
        assert coefficients.observations == 0
        assert coefficients.per_instance_seconds == COLD_PRIOR_SECONDS_PER_DIM3 * 16**3

    @given(
        small=st.integers(min_value=1, max_value=30),
        larger=st.integers(min_value=1, max_value=30),
    )
    def test_prior_orders_classes_by_dimension(self, small, larger):
        if small > larger:
            small, larger = larger, small
        model = SolveCostModel()
        low = model.predict(f"dim{small}_constrained", 3)
        high = model.predict(f"dim{larger}_constrained", 3)
        assert low <= high
        if small < larger:
            assert low < high

    def test_constraint_flag_does_not_break_the_prior(self):
        model = SolveCostModel()
        assert model.predict("dim8_constrained") == model.predict("dim8_unconstrained")


class TestFitting:
    def test_varied_counts_recover_exact_linear_coefficients(self):
        model = SolveCostModel()
        setup, per_instance = 0.1, 0.04
        for count in (1, 2, 5, 8):
            model.observe("dim4_constrained", count, setup + per_instance * count)
        fit = model.coefficients_for("dim4_constrained")
        assert fit.source == "fitted"
        assert abs(fit.setup_seconds - setup) < 1e-9
        assert abs(fit.per_instance_seconds - per_instance) < 1e-9
        assert abs(model.predict("dim4_constrained", 10) - (setup + per_instance * 10)) < 1e-8

    def test_constant_counts_fall_back_to_ratio(self):
        model = SolveCostModel()
        for _ in range(4):
            model.observe("dim4_constrained", 2, 0.5)
        fit = model.coefficients_for("dim4_constrained")
        assert fit.source == "ratio"
        assert abs(fit.per_instance_seconds - 0.25) < 1e-12
        assert fit.setup_seconds == 0.0

    def test_single_event_uses_ratio(self):
        model = SolveCostModel()
        model.observe("dim4_constrained", 4, 1.0)
        assert model.coefficients_for("dim4_constrained").source == "ratio"

    def test_nonsensical_observations_train_nothing(self):
        model = SolveCostModel()
        model.observe("dim4_constrained", 0, 1.0)
        model.observe("dim4_constrained", -3, 1.0)
        model.observe("dim4_constrained", 2, -1.0)
        assert model.coefficients_for("dim4_constrained").source == "prior"

    def test_observe_events_skips_foreign_shapes(self):
        model = SolveCostModel()
        model.observe_events(
            [
                {"solve_class": "dim4_constrained", "count": 2, "seconds": 0.5},
                {"count": 2, "seconds": 0.5},  # no label
                {"solve_class": "dim4_constrained"},  # no timing
                "not-a-dict",
                None,
            ]
        )
        fit = model.coefficients_for("dim4_constrained")
        assert fit.observations == 1

    def test_ingest_timings_reads_solve_classes_key(self):
        model = SolveCostModel()
        model.ingest_timings(
            {"solve_classes": [{"solve_class": "dim4_constrained", "count": 1, "seconds": 0.2}]}
        )
        model.ingest_timings(None)
        model.ingest_timings({"other": 1})
        assert model.coefficients_for("dim4_constrained").observations == 1

    def test_coefficients_lists_every_observed_class(self):
        model = SolveCostModel()
        model.observe("dim4_constrained", 1, 0.1)
        model.observe("dim16_unconstrained", 1, 0.9)
        coefficients = model.coefficients()
        assert set(coefficients) == {"dim16_unconstrained", "dim4_constrained"}
        assert coefficients["dim4_constrained"]["source"] == "ratio"


class TestGlobalModel:
    def test_reset_replaces_the_shared_instance(self):
        first = global_model()
        first.observe("dim4_constrained", 1, 0.5)
        second = reset_global_model()
        assert second is global_model()
        assert second is not first
        assert second.coefficients_for("dim4_constrained").source == "prior"


costs_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=40,
)


class TestLptPack:
    @given(costs=costs_strategy, bins=st.integers(min_value=1, max_value=8))
    def test_packing_is_a_partition(self, costs, bins):
        packed = lpt_pack(costs, bins)
        assert len(packed) == bins
        flattened = [index for chunk in packed for index in chunk]
        assert sorted(flattened) == list(range(len(costs)))
        for chunk in packed:
            assert chunk == sorted(chunk)

    @given(costs=costs_strategy, bins=st.integers(min_value=1, max_value=8))
    @settings(max_examples=50)
    def test_packing_is_deterministic(self, costs, bins):
        assert lpt_pack(costs, bins) == lpt_pack(list(costs), bins)

    @given(costs=costs_strategy, bins=st.integers(min_value=1, max_value=8))
    def test_enough_items_fill_every_bin(self, costs, bins):
        if len(costs) >= bins:
            assert all(chunk for chunk in lpt_pack(costs, bins))

    def test_zero_costs_spread_round_robin(self):
        assert lpt_pack([0.0, 0.0, 0.0, 0.0], 2) == [[0, 2], [1, 3]]

    def test_lpt_balances_uneven_costs(self):
        # One heavy item plus small ones: the heavy item gets a bin mostly to
        # itself instead of stacking with the small ones.
        packed = lpt_pack([5.0, 1.0, 1.0, 1.0, 4.0, 4.0], 3)
        assert packed == [[0, 3], [1, 4], [2, 5]]
