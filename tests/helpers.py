"""Shared non-fixture helpers for the test suite.

Kept separate from ``conftest.py`` so test modules can import them by name:
``conftest`` is not an importable module name once several conftest files
exist on ``sys.path`` (the ``benchmarks/`` conftest used to shadow this one
and break collection of six test modules).
"""

from __future__ import annotations

import numpy as np

from repro.circuits import Circuit

__all__ = ["random_circuit"]


def random_circuit(num_qubits: int, num_gates: int, seed: int = 0) -> Circuit:
    """A random 1q/2q circuit used by several property tests."""
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits, name=f"random_{num_qubits}_{num_gates}")
    for _ in range(num_gates):
        kind = rng.integers(0, 4)
        if kind == 0:
            circuit.rx(float(rng.uniform(0, 2 * np.pi)), int(rng.integers(0, num_qubits)))
        elif kind == 1:
            circuit.rz(float(rng.uniform(0, 2 * np.pi)), int(rng.integers(0, num_qubits)))
        elif kind == 2:
            circuit.h(int(rng.integers(0, num_qubits)))
        else:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.cx(int(a), int(b))
    return circuit
