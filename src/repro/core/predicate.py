"""Quantum predicates ``(rho_hat, delta)`` used by the error logic (Section 4).

A predicate constrains the *ideal* global input state of a (sub)program: it
must lie within trace-norm distance δ of the approximate state ρ̂.  The global
approximate state itself is held by the MPS approximator; what the logic and
the SDP consume are light-weight views:

* :class:`GlobalPredicate` — a descriptive handle (where the approximation
  came from, its δ, how many qubits);
* :class:`~repro.mps.approximator.LocalPredicate` — the reduced density
  matrix on a gate's qubits plus the same δ, re-exported here for
  convenience.

Predicates can be *weakened* (δ increased), matching the Weaken rule.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import LogicError
from ..mps.approximator import LocalPredicate

__all__ = ["GlobalPredicate", "LocalPredicate", "trivial_local_predicate"]


@dataclasses.dataclass(frozen=True)
class GlobalPredicate:
    """A handle on the global ``(rho_hat, delta)`` predicate.

    Attributes:
        description: where ρ̂ comes from (e.g. ``"MPS(width=128)"`` or
            ``"exact density matrix"``).
        delta: trace-norm distance bound ``||rho - rho_hat||_1 <= delta``.
        num_qubits: register size of the state being described.
    """

    description: str
    delta: float
    num_qubits: int

    def __post_init__(self) -> None:
        if self.delta < 0:
            raise LogicError("a predicate distance cannot be negative")

    def weaken(self, new_delta: float) -> "GlobalPredicate":
        """Return the same predicate with a larger (weaker) distance bound."""
        if new_delta < self.delta:
            raise LogicError(
                f"weakening must not decrease delta ({new_delta} < {self.delta})"
            )
        return dataclasses.replace(self, delta=new_delta)

    @property
    def is_trivial(self) -> bool:
        """True when the predicate admits every state (delta >= 2)."""
        return self.delta >= 2.0


def trivial_local_predicate(num_qubits: int) -> LocalPredicate:
    """The vacuous predicate: maximally mixed ρ̂ with the maximal distance 2.

    Every density matrix is within trace-norm 2 of every other, so this
    predicate is satisfied by any state; bounds computed against it reduce to
    the unconstrained diamond norm.  Used for measurement branches that the
    approximation deems unreachable.
    """
    dim = 2**num_qubits
    return LocalPredicate(
        rho_local=np.eye(dim, dtype=np.complex128) / dim,
        delta=2.0,
        qubits=tuple(range(num_qubits)),
    )
