"""Gleipnir core: the (rho_hat, delta) error logic, analyzer, and baselines."""

from .predicate import GlobalPredicate, LocalPredicate, trivial_local_predicate
from .judgment import Judgment
from .derivation import Derivation, DerivationNode, GateContribution
from .rules import (
    absorb_continuations,
    gate_rule,
    meas_rule,
    seq_rule,
    skip_rule,
    weaken_rule,
)
from .analyzer import AnalysisResult, GleipnirAnalyzer, analyze_program
from .scheduler import BoundScheduler, SchedulerReport, SolveClass
from .baselines import (
    BaselineOutcome,
    exact_error,
    lqr_full_simulation_bound,
    worst_case_bound,
)

__all__ = [name for name in dir() if not name.startswith("_")]
