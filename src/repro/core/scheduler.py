"""Program-level gate-bound scheduler and single-pass MPS pre-pass.

The sequential analyzer pays for one SDP solve per cache-missing gate, in
program order.  This module amortises that cost across the whole derivation:

1. a *collection pre-pass* evolves the MPS approximator over the normalised
   program — exactly mirroring the analyzer's traversal, including
   measurement branching and the vacuous-predicate handling of unreachable
   branches — recording every quantised (gate, noise, ρ̂, δ) instance *and*
   writing every approximator fact the replay needs into a
   :class:`~repro.core.derivation.ReplayTape`;
2. the instances are *deduped* into unique solve classes (the same key the
   :class:`repro.sdp.diamond.GateBoundCache` would use, so the replay pass
   hits the cache for every gate);
3. the unique classes that the cache cannot already answer (exactly, by
   predicate dominance, or from the persistent store) are solved through the
   *batched* SDP kernel — same-shaped problems advance in lock-step inside
   one vectorised ADMM run, and all their dual certificates are verified in
   one fused batch certification pass — optionally split across a thread
   pool;
4. the solved bounds are inserted into the cache, and the analyzer replays
   the derivation from the solved table *and the tape*, so the MPS phase
   runs exactly once per input.

Every bound still carries its independently verified dual certificate, and
on workloads where δ grows monotonically along each branch (the common
case — truncation error only accumulates) the replayed derivation is
exactly the one the sequential path would have built.  The one intentional
divergence: when the *dominance* layer could answer a later gate from an
earlier same-ρ̂/larger-δ solve of the same run, the scheduler instead
pre-solves both classes, giving an equal-or-tighter (never looser, still
sound) bound at the cost of an extra batched solve.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..circuits.program import GateOp, IfMeasure, Program, Seq, Skip
from ..config import AnalysisConfig
from ..errors import LogicError
from ..mps.approximator import MPSApproximator
from ..noise.model import NoiseModel
from ..obs import metrics as obs_metrics
from ..obs.trace import span
from ..sdp.diamond import (
    GateBoundCache,
    gate_error_bounds_batch,
    reduced_problem_dim,
    solve_class_label,
)
from .analyzer import vacuous_branch_approximator
from .derivation import ReplayTape, TapeGate, TapeMeasure, TapeSkip

__all__ = [
    "SolveClass",
    "SchedulerReport",
    "BoundScheduler",
    "clear_tape_memo",
    "tape_memo_stats",
]


# ---------------------------------------------------------------------------
# Replay-tape prefix memoisation
# ---------------------------------------------------------------------------
#
# Near-duplicate programs — parameter sweeps, circuits extended gate by gate —
# share a prefix of top-level steps, and the pre-pass walk of that prefix is
# deterministic given the analysis environment (noise model, semantic config,
# input bits).  The memo keys each measurement-free top-level step by the
# running hash of (environment, step₀, …, stepᵢ) and stores the step's tape
# segment, newly discovered solve classes, instance count, and an exact MPS
# snapshot.  A later program whose chain matches replays the recorded
# segments and resumes the walk from a *copy* of the snapshot, so every
# downstream float is identical to a cold walk's.  Steps containing
# measurements are never memoised: their traversal forks on branch
# probabilities, so a snapshot would not capture the walk state.

#: Total memoised steps kept (oldest evicted beyond this).
TAPE_MEMO_MAX_STEPS = 1024

#: Steps that retain their MPS snapshot (older snapshots are stripped first;
#: a stripped step can still be replayed but not resumed from).
TAPE_MEMO_MAX_SNAPSHOTS = 64


@dataclasses.dataclass
class _MemoStep:
    """One memoised top-level step of a pre-pass walk."""

    records: tuple
    classes: tuple
    instances: int
    snapshot: MPSApproximator | None


_TAPE_MEMO: dict[str, _MemoStep] = {}
_TAPE_MEMO_LOCK = threading.Lock()
_TAPE_MEMO_STATS = {"hits": 0, "misses": 0, "steps_reused": 0}


def clear_tape_memo() -> None:
    """Drop every memoised tape prefix and reset the counters."""
    with _TAPE_MEMO_LOCK:
        _TAPE_MEMO.clear()
        for key in _TAPE_MEMO_STATS:
            _TAPE_MEMO_STATS[key] = 0


def tape_memo_stats() -> dict:
    """Process-wide prefix-memo counters (hits/misses/steps_reused/entries)."""
    with _TAPE_MEMO_LOCK:
        return {**_TAPE_MEMO_STATS, "entries": len(_TAPE_MEMO)}


def _contains_measure(program: Program) -> bool:
    pending = [program]
    while pending:
        node = pending.pop()
        if isinstance(node, IfMeasure):
            return True
        if isinstance(node, Seq):
            pending.extend(node.parts)
    return False


@dataclasses.dataclass(frozen=True)
class SolveClass:
    """One unique quantised (gate, noise, predicate) SDP instance.

    ``fingerprint`` binds the actual problem content (gate matrix, channel
    Choi, noise convention) for the persistent store; None when no store is
    configured.
    """

    key: tuple
    gate_matrix: np.ndarray
    noise_channel: object
    rho_rounded: np.ndarray
    delta_effective: float
    fingerprint: str | None = None


@dataclasses.dataclass
class SchedulerReport:
    """What the pre-pass found and what the solve phase actually paid for."""

    num_gate_instances: int = 0
    num_unique_classes: int = 0
    num_solved: int = 0
    num_prefilled: int = 0
    tape: ReplayTape | None = None
    tape_steps_reused: int = 0
    #: Wall-clock seconds of the MPS collection walk and the batched solve
    #: phase, plus one ``{"solve_class", "count", "seconds", "worker",
    #: "chunk", "predicted_seconds"}`` event per SDP template group — the
    #: per-solve-class cost data persisted with results.  ``worker``/``chunk``
    #: name the worker slot that solved the group (chunks are packed one per
    #: slot), so overlapping shapes across chunks stay attributable;
    #: ``predicted_seconds`` is the cost model's estimate before solving.
    walk_seconds: float = 0.0
    solve_seconds: float = 0.0
    solve_timings: list = dataclasses.field(default_factory=list)


class BoundScheduler:
    """Collect, dedupe, batch-solve and prefill gate bounds for a program."""

    def __init__(
        self,
        noise_model: NoiseModel,
        cache: GateBoundCache,
        config: AnalysisConfig,
        *,
        gate_key,
    ):
        self.noise_model = noise_model
        self.cache = cache
        self.config = config
        self._gate_key = gate_key
        self._classes: dict[tuple, SolveClass] = {}
        self._instances = 0

    # -- public entry --------------------------------------------------------
    def collect_classes(
        self, program: Program, initial_bits: list[int]
    ) -> list[SolveClass]:
        """Collection-only pre-pass: the classes the cache cannot yet answer.

        Runs the same memoised MPS walk as :meth:`prefill` but stops before
        the solve phase, returning the pending :class:`SolveClass` list.  The
        engine's cross-job fusion stage uses this to gather solve classes
        from several jobs and dispatch them as one batch; any memo steps the
        walk records are reused verbatim by the subsequent full analysis.
        """
        approximator = MPSApproximator.from_product_state(
            initial_bits, width=self.config.mps_width
        )
        self._classes.clear()
        self._instances = 0
        tape = ReplayTape()
        with span("scheduler.collect", "scheduler"):
            if getattr(self.config, "tape_memo", True):
                self._collect_memoised(program, initial_bits, approximator, tape)
            else:
                self._collect(program, approximator, tape)
        return self._pending_classes()

    def _pending_classes(self) -> list[SolveClass]:
        """The collected classes the cache cannot answer (exact/persistent/dominance)."""
        return [
            solve_class
            for key, solve_class in self._classes.items()
            if self.cache.peek(
                key,
                solve_class.fingerprint,
                self.cache.expected_problem(
                    solve_class.gate_matrix,
                    solve_class.noise_channel,
                    solve_class.rho_rounded,
                    solve_class.delta_effective,
                    noise_after_gate=self.config.noise_after_gate,
                )
                if solve_class.fingerprint is not None
                else None,
            )
            is None
        ]

    def prefill(self, program: Program, initial_bits: list[int]) -> SchedulerReport:
        """Run the pre-pass over ``program``, seed the cache, return the tape."""
        approximator = MPSApproximator.from_product_state(
            initial_bits, width=self.config.mps_width
        )
        self._classes.clear()
        self._instances = 0
        tape = ReplayTape()
        walk_start = time.perf_counter()
        with span("scheduler.walk", "scheduler"):
            if getattr(self.config, "tape_memo", True):
                steps_reused = self._collect_memoised(
                    program, initial_bits, approximator, tape
                )
            else:
                self._collect(program, approximator, tape)
                steps_reused = 0
        walk_seconds = time.perf_counter() - walk_start

        pending = self._pending_classes()
        report = SchedulerReport(
            num_gate_instances=self._instances,
            num_unique_classes=len(self._classes),
            num_solved=len(pending),
            num_prefilled=len(self._classes) - len(pending),
            tape=tape,
            tape_steps_reused=steps_reused,
            walk_seconds=walk_seconds,
        )
        if not pending:
            return report

        solve_start = time.perf_counter()
        workers = min(self.config.scheduler_workers, len(pending))
        with span("scheduler.solve", "scheduler", pending=len(pending), workers=workers):
            if workers <= 1:
                report.solve_timings.extend(self._solve_chunk(pending))
            else:
                # Cost-aware chunks: each pending class gets a predicted cost
                # from the process-wide solve cost model (dim³ prior when a
                # class was never observed) and LPT bin-packing assigns the
                # classes to worker slots so predicted chunk costs — not
                # chunk *lengths* — balance.  The packing is deterministic
                # under fixed model state, and per-element bounds do not
                # depend on batch composition, so any packing yields the same
                # certified bounds as a single sequential solve.
                from ..engine import costmodel

                model = costmodel.global_model()
                costs = [
                    model.predict(self._predicted_label(solve_class), 1)
                    for solve_class in pending
                ]
                chunks = [
                    [pending[index] for index in chunk_indices]
                    for chunk_indices in costmodel.lpt_pack(costs, workers)
                    if chunk_indices
                ]
                with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
                    for events in pool.map(
                        self._solve_chunk, chunks, range(len(chunks))
                    ):
                        report.solve_timings.extend(events)
        report.solve_seconds = time.perf_counter() - solve_start
        return report

    def _predicted_label(self, solve_class: SolveClass) -> str:
        """The solve-class label this instance is expected to instantiate.

        Mirrors the batch kernel's grouping: the reduced problem dimension
        fixes the template's block size ``big = dim²``, and the Eq. (2)
        constraint is active when ``‖ρ̂‖_F(‖ρ̂‖_F − δ) > 0``.  The reduction
        may shrink ρ̂ before the kernel re-evaluates that bound, so this is a
        *prediction* (used only for cost packing), not ground truth.
        """
        dim = max(1, reduced_problem_dim(solve_class.noise_channel))
        norm = float(np.linalg.norm(solve_class.rho_rounded))
        constrained = norm * (norm - solve_class.delta_effective) > 0.0
        return solve_class_label(dim * dim, constrained)

    def _solve_chunk(self, chunk: list[SolveClass], chunk_index: int = 0) -> list:
        """Solve one chunk; returns its attributed per-solve-class timing events."""
        from ..engine import costmodel

        instances = [
            (c.gate_matrix, c.noise_channel, c.rho_rounded, c.delta_effective)
            for c in chunk
        ]
        timing_events: list = []
        bounds = gate_error_bounds_batch(
            instances,
            noise_after_gate=self.config.noise_after_gate,
            config=self.config.sdp,
            timing_events=timing_events,
        )
        for solve_class, bound in zip(chunk, bounds):
            self.cache.insert(
                solve_class.key, bound, fingerprint=solve_class.fingerprint
            )
        model = costmodel.global_model()
        error_histogram = obs_metrics.histogram(
            "repro_costmodel_prediction_error_ratio",
            "Relative error |predicted - actual| / actual of the solve cost "
            "model, one sample per solved template group.",
            buckets=costmodel.PREDICTION_ERROR_BUCKETS,
        )
        for event in timing_events:
            predicted = model.predict(event["solve_class"], event["count"])
            event["worker"] = chunk_index
            event["chunk"] = chunk_index
            event["predicted_seconds"] = predicted
            actual = float(event["seconds"])
            error_histogram.observe(abs(predicted - actual) / max(actual, 1e-9))
        model.observe_events(timing_events)
        return timing_events

    # -- prefix memoisation ---------------------------------------------------
    def _memo_env_key(self, initial_bits: list[int]) -> str | None:
        """Hash of everything besides the program that shapes the walk.

        Two walks agree step for step only when the noise model, the
        bound-relevant configuration (width, quantisation, SDP settings), the
        input state, and whether persistent-store fingerprints are computed
        all agree.  Models that cannot serialize (factory-backed noise) return
        None, which disables memoisation for the walk rather than failing it.
        """
        # Imported lazily: repro.engine.spec must stay importable without core.
        from ..engine.spec import _semantic_config_dict, canonical_json

        try:
            payload = {
                "noise_model": self.noise_model.to_json_dict(),
                "config": _semantic_config_dict(self.config),
                "initial_bits": list(initial_bits),
                "persistent": self.cache.store_path is not None,
            }
            return hashlib.sha256(canonical_json(payload).encode()).hexdigest()
        except Exception:
            return None

    def _collect_memoised(
        self,
        program: Program,
        initial_bits: list[int],
        approximator: MPSApproximator,
        tape: ReplayTape,
    ) -> int:
        """Walk ``program`` reusing memoised top-level step prefixes.

        Returns the number of steps answered from the memo.  The memoisable
        prefix is the run of top-level ``Seq`` parts before the first part
        containing a measurement; the remainder always walks fresh.
        """
        env = self._memo_env_key(initial_bits)
        if env is None:
            self._collect(program, approximator, tape)
            return 0
        from ..circuits.serialize import program_to_json_dict
        from ..engine.spec import canonical_json

        parts = list(program.parts) if isinstance(program, Seq) else [program]
        prefix_len = 0
        for part in parts:
            if _contains_measure(part):
                break
            prefix_len += 1
        if prefix_len == 0:
            self._collect(program, approximator, tape)
            return 0

        # chains[i] addresses the walk state after steps 0..i under env.
        chains = []
        chain = env
        for part in parts[:prefix_len]:
            step = canonical_json(program_to_json_dict(part))
            chain = hashlib.sha256((chain + step).encode()).hexdigest()
            chains.append(chain)

        # Longest stored run from step 0, resumable at its last snapshot.
        reuse_nodes: list[_MemoStep] = []
        resume_index = -1
        snapshot = None
        with _TAPE_MEMO_LOCK:
            for chain in chains:
                node = _TAPE_MEMO.get(chain)
                if node is None:
                    break
                reuse_nodes.append(node)
            for index in range(len(reuse_nodes) - 1, -1, -1):
                if reuse_nodes[index].snapshot is not None:
                    resume_index = index
                    snapshot = reuse_nodes[index].snapshot.copy()
                    break
            if resume_index >= 0:
                _TAPE_MEMO_STATS["hits"] += 1
                _TAPE_MEMO_STATS["steps_reused"] += resume_index + 1
            else:
                _TAPE_MEMO_STATS["misses"] += 1
        outcome = "hit" if resume_index >= 0 else "miss"
        obs_metrics.counter(
            "repro_tape_memo_lookups_total",
            "Replay-tape prefix memo lookups by outcome.",
            {"outcome": outcome},
        ).inc()
        if resume_index >= 0:
            obs_metrics.counter(
                "repro_tape_steps_reused_total",
                "Top-level program steps answered from the tape prefix memo.",
            ).inc(resume_index + 1)

        steps_reused = 0
        if resume_index >= 0:
            for node in reuse_nodes[: resume_index + 1]:
                tape.extend(node.records)
                self._instances += node.instances
                for solve_class in node.classes:
                    self._classes.setdefault(solve_class.key, solve_class)
            approximator = snapshot
            steps_reused = resume_index + 1

        # Fresh walk of the remaining memoisable steps, recording each one.
        for index in range(steps_reused, prefix_len):
            mark = tape.mark()
            instances_before = self._instances
            classes_before = len(self._classes)
            self._collect(parts[index], approximator, tape)
            node = _MemoStep(
                records=tape.records_since(mark),
                classes=tuple(list(self._classes.values())[classes_before:]),
                instances=self._instances - instances_before,
                snapshot=approximator.copy(),
            )
            self._memo_store(chains[index], node)

        for part in parts[prefix_len:]:
            self._collect(part, approximator, tape)
        return steps_reused

    @staticmethod
    def _memo_store(chain: str, node: _MemoStep) -> None:
        with _TAPE_MEMO_LOCK:
            _TAPE_MEMO.pop(chain, None)  # re-insert at the recency tail
            _TAPE_MEMO[chain] = node
            while len(_TAPE_MEMO) > TAPE_MEMO_MAX_STEPS:
                _TAPE_MEMO.pop(next(iter(_TAPE_MEMO)))
            snapshots = [
                key
                for key, entry in _TAPE_MEMO.items()
                if entry.snapshot is not None
            ]
            # Strip the oldest snapshots beyond the cap; the stripped steps
            # remain replayable, they just cannot seed a resume any more.
            for key in snapshots[: max(0, len(snapshots) - TAPE_MEMO_MAX_SNAPSHOTS)]:
                _TAPE_MEMO[key].snapshot = None

    # -- collection traversal (mirrors GleipnirAnalyzer._analyze_node) -------
    def _collect(
        self, program: Program, approximator: MPSApproximator, tape: ReplayTape
    ) -> None:
        if isinstance(program, Skip):
            tape.record(TapeSkip(delta=approximator.delta))
            return
        if isinstance(program, GateOp):
            self._collect_gate(program, approximator, tape)
            return
        if isinstance(program, Seq):
            for part in program.parts:
                self._collect(part, approximator, tape)
            return
        if isinstance(program, IfMeasure):
            self._collect_measure(program, approximator, tape)
            return
        raise LogicError(f"unknown program node {type(program).__name__}")

    def _collect_gate(
        self, op: GateOp, approximator: MPSApproximator, tape: ReplayTape
    ) -> None:
        delta_before = approximator.delta
        rho_local = None
        noise_channel = self.noise_model.channel_for(op.gate, op.qubits)
        if noise_channel is not None:
            self._instances += 1
            predicate = approximator.local_predicate(op.qubits)
            rho_local = predicate.rho_local
            key_parts = self._gate_key(op, noise_channel)
            key, rho_rounded, delta_effective = self.cache.quantise_key(
                key_parts, predicate.rho_local, predicate.delta
            )
            if key not in self._classes:
                fingerprint = None
                if self.cache.store_path is not None:
                    fingerprint = self.cache.problem_fingerprint(
                        op.gate.matrix, noise_channel, self.config.noise_after_gate
                    )
                self._classes[key] = SolveClass(
                    key=key,
                    gate_matrix=op.gate.matrix,
                    noise_channel=noise_channel,
                    rho_rounded=rho_rounded,
                    delta_effective=delta_effective,
                    fingerprint=fingerprint,
                )
        truncation_added = approximator.apply_gate_op(op)
        tape.record(
            TapeGate(
                delta_before=delta_before,
                rho_local=rho_local,
                truncation_added=truncation_added,
                delta_after=approximator.delta,
            )
        )

    def _collect_measure(
        self, program: IfMeasure, approximator: MPSApproximator, tape: ReplayTape
    ) -> None:
        delta_before = approximator.delta
        forks = approximator.branch_on_measurement(program.qubit)
        tape.record(
            TapeMeasure(
                delta_before=delta_before,
                probabilities=tuple(
                    (outcome, probability) for outcome, probability, _child in forks
                ),
            )
        )
        reachable = {outcome: child for outcome, _probability, child in forks}
        for outcome, branch_program in (
            (0, program.then_branch),
            (1, program.else_branch),
        ):
            if outcome in reachable:
                self._collect(branch_program, reachable[outcome], tape)
            else:
                self._collect_unreachable_branch(
                    branch_program, program.qubit, outcome, tape
                )

    def _collect_unreachable_branch(
        self, branch: Program, qubit: int, outcome: int, tape: ReplayTape
    ) -> None:
        fresh = vacuous_branch_approximator(
            branch, qubit, outcome, self.config.mps_width
        )
        self._collect(branch, fresh, tape)
