"""Derivation trees of the quantum error logic.

Every analysis performed by Gleipnir produces a :class:`Derivation`: a tree
whose nodes record which inference rule was applied (Figure 5), the judgment
it concluded, and — for Gate nodes — the SDP certificate establishing the
per-gate bound.  The derivation is what makes the final bound *verified*:
:meth:`Derivation.check` re-validates every step independently of the
analyzer (certificate feasibility, additivity of the Seq rule, the Meas rule
arithmetic), raising :class:`~repro.errors.DerivationCheckError` on any
unsound step.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator

import numpy as np

from ..errors import DerivationCheckError
from ..sdp.certificates import verify_certificate
from ..sdp.diamond import DiamondNormBound
from .judgment import Judgment

__all__ = ["DerivationNode", "Derivation", "GateContribution"]


@dataclasses.dataclass(frozen=True)
class GateContribution:
    """Per-gate summary row used in reports and examples."""

    index: int
    gate_label: str
    qubits: tuple[int, ...]
    epsilon: float
    delta_before: float
    truncation_added: float
    sdp_method: str


@dataclasses.dataclass
class DerivationNode:
    """One application of an inference rule."""

    rule: str
    judgment: Judgment
    children: list["DerivationNode"] = dataclasses.field(default_factory=list)
    # Gate-rule payload.
    gate_label: str | None = None
    qubits: tuple[int, ...] | None = None
    rho_local: np.ndarray | None = None
    bound: DiamondNormBound | None = None
    # Seq-rule payload: δ added by the TN step *after* this child.
    truncation_added: float = 0.0
    # Meas-rule payload.
    measured_qubit: int | None = None
    branch_probabilities: tuple[float, ...] | None = None

    def iter_nodes(self) -> Iterator["DerivationNode"]:
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        header = f"{pad}[{self.rule}] {self.judgment.pretty()}"
        lines = [header]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


class Derivation:
    """A complete derivation of ``(rho_hat, delta) |- P_omega <= eps``."""

    def __init__(self, root: DerivationNode, *, noise_model_name: str = "", mps_width: int | None = None):
        self.root = root
        self.noise_model_name = noise_model_name
        self.mps_width = mps_width

    # -- queries ---------------------------------------------------------------
    @property
    def error_bound(self) -> float:
        return self.root.judgment.epsilon

    def nodes(self) -> list[DerivationNode]:
        return list(self.root.iter_nodes())

    def gate_nodes(self) -> list[DerivationNode]:
        return [node for node in self.root.iter_nodes() if node.rule == "gate"]

    def gate_contributions(self) -> list[GateContribution]:
        """Per-gate bound contributions in program order."""
        rows = []
        for index, node in enumerate(self.gate_nodes()):
            rows.append(
                GateContribution(
                    index=index,
                    gate_label=node.gate_label or "?",
                    qubits=node.qubits or (),
                    epsilon=node.judgment.epsilon,
                    delta_before=node.judgment.delta,
                    truncation_added=node.truncation_added,
                    sdp_method=(node.bound.method if node.bound is not None else "n/a"),
                )
            )
        return rows

    def total_truncation(self) -> float:
        return sum(node.truncation_added for node in self.root.iter_nodes())

    def pretty(self) -> str:
        return self.root.pretty()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.pretty()

    # -- re-validation ------------------------------------------------------------
    def check(self, *, tolerance: float = 1e-7) -> None:
        """Re-validate the whole derivation; raise on any unsound step."""
        self._check_node(self.root, tolerance)

    def _check_node(self, node: DerivationNode, tolerance: float) -> None:
        for child in node.children:
            self._check_node(child, tolerance)

        if node.rule == "skip":
            if node.judgment.epsilon != 0.0:
                raise DerivationCheckError("Skip rule must conclude a zero bound")
        elif node.rule == "gate":
            self._check_gate(node, tolerance)
        elif node.rule == "seq":
            self._check_seq(node, tolerance)
        elif node.rule == "meas":
            self._check_meas(node, tolerance)
        elif node.rule == "weaken":
            self._check_weaken(node, tolerance)
        else:
            raise DerivationCheckError(f"unknown rule {node.rule!r}")

    def _check_gate(self, node: DerivationNode, tolerance: float) -> None:
        if node.bound is None:
            # Noiseless gates carry no SDP bound; their epsilon must be zero.
            if node.judgment.epsilon != 0.0:
                raise DerivationCheckError(
                    f"gate {node.gate_label!r} has no certificate but a non-zero bound"
                )
            return
        if node.judgment.epsilon + tolerance < node.bound.value:
            raise DerivationCheckError(
                f"gate {node.gate_label!r} concluded {node.judgment.epsilon} below "
                f"its certified bound {node.bound.value}"
            )
        if node.bound.choi is not None and node.bound.method not in ("noiseless", "exact-zero"):
            if not verify_certificate(node.bound.certificate, node.bound.choi, tolerance=max(tolerance, 1e-6)):
                raise DerivationCheckError(
                    f"gate {node.gate_label!r}: dual certificate failed re-verification"
                )

    def _check_seq(self, node: DerivationNode, tolerance: float) -> None:
        total = sum(child.judgment.epsilon for child in node.children)
        if node.judgment.epsilon + tolerance < total:
            raise DerivationCheckError(
                f"Seq rule concluded {node.judgment.epsilon} below the sum of its parts {total}"
            )
        # The predicate distance must grow monotonically along the sequence:
        # delta_{i+1} >= delta_i (the TN step only adds error).
        deltas = [child.judgment.delta for child in node.children]
        for before, after in zip(deltas, deltas[1:]):
            if after + tolerance < before:
                raise DerivationCheckError(
                    "Seq rule children have decreasing predicate distances"
                )

    def _check_meas(self, node: DerivationNode, tolerance: float) -> None:
        if not node.children:
            raise DerivationCheckError("Meas rule requires at least one branch")
        branch_eps = max(child.judgment.epsilon for child in node.children)
        delta = min(1.0, node.judgment.delta)
        expected = (1.0 - delta) * branch_eps + delta
        if node.judgment.epsilon + tolerance < expected:
            raise DerivationCheckError(
                f"Meas rule concluded {node.judgment.epsilon} below (1-d)e+d = {expected}"
            )

    def _check_weaken(self, node: DerivationNode, tolerance: float) -> None:
        if len(node.children) != 1:
            raise DerivationCheckError("Weaken rule must have exactly one premise")
        child = node.children[0]
        if node.judgment.delta > child.judgment.delta + tolerance:
            raise DerivationCheckError("Weaken rule increased the predicate distance")
        if node.judgment.epsilon + tolerance < child.judgment.epsilon:
            raise DerivationCheckError("Weaken rule decreased the error bound")
