"""Derivation trees of the quantum error logic, and the replay tape.

Every analysis performed by Gleipnir produces a :class:`Derivation`: a tree
whose nodes record which inference rule was applied (Figure 5), the judgment
it concluded, and — for Gate nodes — the SDP certificate establishing the
per-gate bound.  The derivation is what makes the final bound *verified*:
:meth:`Derivation.check` re-validates every step independently of the
analyzer (certificate feasibility, additivity of the Seq rule, the Meas rule
arithmetic), raising :class:`~repro.errors.DerivationCheckError` on any
unsound step.

The module also defines the :class:`ReplayTape`: the single-pass contract
between the bound scheduler's MPS pre-pass and the derivation replay.  The
pre-pass walks the normalised program once, recording for every node exactly
the approximator facts the inference rules need — the local predicate and
truncation of each gate, the branch probabilities of each measurement, the
accumulated δ at each skip.  The analyzer then rebuilds the derivation from
the tape without evolving a second MPS, so the tensor-network phase runs
once per input instead of twice.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator

import numpy as np

from ..errors import DerivationCheckError, LogicError
from ..sdp.certificates import verify_certificate
from ..sdp.diamond import DiamondNormBound
from .judgment import Judgment

__all__ = [
    "DerivationNode",
    "Derivation",
    "GateContribution",
    "ReplayTape",
    "TapeGate",
    "TapeMeasure",
    "TapeSkip",
]


# ---------------------------------------------------------------------------
# The replay tape (single-pass MPS contract)
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class TapeSkip:
    """Accumulated δ at a Skip node (the Skip rule's predicate distance)."""

    delta: float


@dataclasses.dataclass(frozen=True)
class TapeGate:
    """One gate application of the pre-pass.

    ``rho_local`` is the *raw* (unquantised) reduced density matrix the
    analyzer would have requested before the gate — None for noiseless
    gates, which never ask for a predicate.  ``delta_before`` doubles as the
    predicate distance (both read ``approximator.delta`` at the same point).
    """

    delta_before: float
    rho_local: np.ndarray | None
    truncation_added: float
    delta_after: float


@dataclasses.dataclass(frozen=True)
class TapeMeasure:
    """One measurement fork: δ before the fork and the reachable outcomes."""

    delta_before: float
    probabilities: tuple[tuple[int, float], ...]


class ReplayTape:
    """Sequential record of one MPS walk, consumed in the same order.

    The scheduler's pre-pass and the analyzer's replay traverse the
    normalised program identically (Seq parts in order, measurement branches
    in (0, 1) order, unreachable branches included), so a flat record list
    aligns the two passes.  :meth:`take` enforces the alignment: a record of
    the wrong kind, a premature end, or leftover records after the replay
    (:meth:`verify_exhausted`) all mean the traversals diverged and raise
    :class:`~repro.errors.LogicError` rather than silently mixing up
    predicates.
    """

    def __init__(self) -> None:
        self._records: list[TapeSkip | TapeGate | TapeMeasure] = []
        self._cursor = 0

    def record(self, entry: TapeSkip | TapeGate | TapeMeasure) -> None:
        self._records.append(entry)

    def mark(self) -> int:
        """The current record count — a cursor for :meth:`records_since`."""
        return len(self._records)

    def records_since(self, mark: int) -> tuple:
        """The records appended after ``mark`` (frozen entries, safe to share).

        The scheduler's prefix memo snapshots each top-level step's tape
        segment this way, so a later walk of a program sharing the prefix can
        :meth:`extend` with the recorded segment instead of re-walking.
        """
        return tuple(self._records[mark:])

    def extend(self, records) -> None:
        """Append a previously recorded segment (a memoised prefix replay)."""
        self._records.extend(records)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def num_gates(self) -> int:
        return sum(1 for record in self._records if isinstance(record, TapeGate))

    def rewind(self) -> None:
        self._cursor = 0

    def take(self, kind: type) -> TapeSkip | TapeGate | TapeMeasure:
        """Consume the next record, which must be of ``kind``."""
        if self._cursor >= len(self._records):
            raise LogicError(
                f"replay tape exhausted while expecting a {kind.__name__} record"
            )
        entry = self._records[self._cursor]
        if not isinstance(entry, kind):
            raise LogicError(
                f"replay tape out of step: expected {kind.__name__}, "
                f"found {type(entry).__name__} at position {self._cursor}"
            )
        self._cursor += 1
        return entry

    def verify_exhausted(self) -> None:
        """Raise unless the replay consumed every record of the pre-pass."""
        if self._cursor != len(self._records):
            raise LogicError(
                f"replay consumed {self._cursor} of {len(self._records)} tape "
                "records; the pre-pass and the replay traversed different programs"
            )


@dataclasses.dataclass(frozen=True)
class GateContribution:
    """Per-gate summary row used in reports and examples."""

    index: int
    gate_label: str
    qubits: tuple[int, ...]
    epsilon: float
    delta_before: float
    truncation_added: float
    sdp_method: str


@dataclasses.dataclass
class DerivationNode:
    """One application of an inference rule."""

    rule: str
    judgment: Judgment
    children: list["DerivationNode"] = dataclasses.field(default_factory=list)
    # Gate-rule payload.
    gate_label: str | None = None
    qubits: tuple[int, ...] | None = None
    rho_local: np.ndarray | None = None
    bound: DiamondNormBound | None = None
    # Seq-rule payload: δ added by the TN step *after* this child.
    truncation_added: float = 0.0
    # Meas-rule payload.
    measured_qubit: int | None = None
    branch_probabilities: tuple[float, ...] | None = None

    def iter_nodes(self) -> Iterator["DerivationNode"]:
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        header = f"{pad}[{self.rule}] {self.judgment.pretty()}"
        lines = [header]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


class Derivation:
    """A complete derivation of ``(rho_hat, delta) |- P_omega <= eps``."""

    def __init__(
        self,
        root: DerivationNode,
        *,
        noise_model_name: str = "",
        mps_width: int | None = None,
    ):
        self.root = root
        self.noise_model_name = noise_model_name
        self.mps_width = mps_width

    # -- queries ---------------------------------------------------------------
    @property
    def error_bound(self) -> float:
        return self.root.judgment.epsilon

    def nodes(self) -> list[DerivationNode]:
        return list(self.root.iter_nodes())

    def gate_nodes(self) -> list[DerivationNode]:
        return [node for node in self.root.iter_nodes() if node.rule == "gate"]

    def gate_contributions(self) -> list[GateContribution]:
        """Per-gate bound contributions in program order."""
        rows = []
        for index, node in enumerate(self.gate_nodes()):
            rows.append(
                GateContribution(
                    index=index,
                    gate_label=node.gate_label or "?",
                    qubits=node.qubits or (),
                    epsilon=node.judgment.epsilon,
                    delta_before=node.judgment.delta,
                    truncation_added=node.truncation_added,
                    sdp_method=(node.bound.method if node.bound is not None else "n/a"),
                )
            )
        return rows

    def total_truncation(self) -> float:
        return sum(node.truncation_added for node in self.root.iter_nodes())

    def pretty(self) -> str:
        return self.root.pretty()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.pretty()

    # -- re-validation ------------------------------------------------------------
    def check(self, *, tolerance: float = 1e-7) -> None:
        """Re-validate the whole derivation; raise on any unsound step."""
        self._check_node(self.root, tolerance)

    def _check_node(self, node: DerivationNode, tolerance: float) -> None:
        for child in node.children:
            self._check_node(child, tolerance)

        if node.rule == "skip":
            if node.judgment.epsilon != 0.0:
                raise DerivationCheckError("Skip rule must conclude a zero bound")
        elif node.rule == "gate":
            self._check_gate(node, tolerance)
        elif node.rule == "seq":
            self._check_seq(node, tolerance)
        elif node.rule == "meas":
            self._check_meas(node, tolerance)
        elif node.rule == "weaken":
            self._check_weaken(node, tolerance)
        else:
            raise DerivationCheckError(f"unknown rule {node.rule!r}")

    def _check_gate(self, node: DerivationNode, tolerance: float) -> None:
        if node.bound is None:
            # Noiseless gates carry no SDP bound; their epsilon must be zero.
            if node.judgment.epsilon != 0.0:
                raise DerivationCheckError(
                    f"gate {node.gate_label!r} has no certificate but a non-zero bound"
                )
            return
        if node.judgment.epsilon + tolerance < node.bound.value:
            raise DerivationCheckError(
                f"gate {node.gate_label!r} concluded {node.judgment.epsilon} below "
                f"its certified bound {node.bound.value}"
            )
        if node.bound.choi is not None and node.bound.method not in ("noiseless", "exact-zero"):
            if not verify_certificate(
                node.bound.certificate, node.bound.choi, tolerance=max(tolerance, 1e-6)
            ):
                raise DerivationCheckError(
                    f"gate {node.gate_label!r}: dual certificate failed re-verification"
                )

    def _check_seq(self, node: DerivationNode, tolerance: float) -> None:
        total = sum(child.judgment.epsilon for child in node.children)
        if node.judgment.epsilon + tolerance < total:
            raise DerivationCheckError(
                f"Seq rule concluded {node.judgment.epsilon} below the sum of its parts {total}"
            )
        # The predicate distance must grow monotonically along the sequence:
        # delta_{i+1} >= delta_i (the TN step only adds error).
        deltas = [child.judgment.delta for child in node.children]
        for before, after in zip(deltas, deltas[1:]):
            if after + tolerance < before:
                raise DerivationCheckError(
                    "Seq rule children have decreasing predicate distances"
                )

    def _check_meas(self, node: DerivationNode, tolerance: float) -> None:
        if not node.children:
            raise DerivationCheckError("Meas rule requires at least one branch")
        branch_eps = max(child.judgment.epsilon for child in node.children)
        delta = min(1.0, node.judgment.delta)
        expected = (1.0 - delta) * branch_eps + delta
        if node.judgment.epsilon + tolerance < expected:
            raise DerivationCheckError(
                f"Meas rule concluded {node.judgment.epsilon} below (1-d)e+d = {expected}"
            )

    def _check_weaken(self, node: DerivationNode, tolerance: float) -> None:
        if len(node.children) != 1:
            raise DerivationCheckError("Weaken rule must have exactly one premise")
        child = node.children[0]
        if node.judgment.delta > child.judgment.delta + tolerance:
            raise DerivationCheckError("Weaken rule increased the predicate distance")
        if node.judgment.epsilon + tolerance < child.judgment.epsilon:
            raise DerivationCheckError("Weaken rule decreased the error bound")
