"""Baseline error analyses the paper compares Gleipnir against (Section 7.1).

Three baselines are provided:

* :func:`worst_case_bound` — the unconstrained diamond norm summed over all
  noisy gates.  For the paper's bit-flip model with probability p this equals
  ``num_gates * p`` exactly (last column of Table 2).
* :func:`lqr_full_simulation_bound` — the LQR-style bound where the quantum
  predicate before every gate is obtained by *exact* density-matrix
  simulation (the strongest predicate possible).  Its cost is exponential in
  the number of qubits: the resource guard raises
  :class:`~repro.errors.ResourceLimitExceeded` for programs beyond the dense
  budget, which the experiment harness reports as the paper's "timed out".
* :func:`exact_error` — the true output error obtained by simulating both the
  noisy and ideal semantics (also exponential); used to validate soundness on
  small programs and as the "full simulation" reference.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.program import Program
from ..config import AnalysisConfig, ResourceGuard
from ..errors import ResourceLimitExceeded
from ..linalg.partial_trace import partial_trace_keep
from ..linalg.states import basis_state
from ..noise.model import NoiseModel
from ..sdp.diamond import DiamondNormBound, diamond_distance, gate_error_bound
from ..semantics.density import apply_gate_to_density
from ..semantics.noisy import exact_program_error

__all__ = [
    "BaselineOutcome",
    "worst_case_bound",
    "lqr_full_simulation_bound",
    "exact_error",
]


@dataclasses.dataclass(frozen=True)
class BaselineOutcome:
    """Result of a baseline computation (value or a recorded failure)."""

    name: str
    value: float | None
    elapsed_seconds: float
    timed_out: bool = False
    detail: str = ""

    @property
    def available(self) -> bool:
        return self.value is not None


def _as_ast(program: Program | Circuit) -> tuple[Program, int]:
    if isinstance(program, Circuit):
        return program.to_program(), program.num_qubits
    return program, program.num_qubits


def worst_case_bound(
    program: Program | Circuit,
    noise_model: NoiseModel,
    *,
    config: AnalysisConfig | None = None,
) -> BaselineOutcome:
    """Sum of unconstrained diamond distances over every noisy gate.

    Branch-free programs only (the paper's benchmarks all are); the value is
    independent of the input state, which is exactly its weakness.
    """
    config = config or AnalysisConfig()
    start = time.perf_counter()
    ast, _ = _as_ast(program)
    cache: dict[tuple, DiamondNormBound] = {}
    total = 0.0
    for op in ast.operations():
        channel = noise_model.channel_for(op.gate, op.qubits)
        if channel is None:
            continue
        key = (op.gate.key(), channel.name, tuple(op.qubits))
        bound = cache.get(key)
        if bound is None:
            noisy = noise_model.noisy_gate_channel(op.gate, op.qubits)
            from ..linalg.channels import unitary_channel

            bound = diamond_distance(noisy, unitary_channel(op.gate.matrix), config=config.sdp)
            cache[key] = bound
        total += bound.value
    elapsed = time.perf_counter() - start
    return BaselineOutcome(name="worst_case", value=total, elapsed_seconds=elapsed)


def lqr_full_simulation_bound(
    program: Program | Circuit,
    noise_model: NoiseModel,
    *,
    initial_bits: str | Sequence[int] | None = None,
    config: AnalysisConfig | None = None,
    guard: ResourceGuard | None = None,
) -> BaselineOutcome:
    """LQR-style bound with predicates from exact (full) simulation.

    The exact intermediate state before every gate yields the strongest
    possible predicate (δ = 0), so on programs small enough to simulate this
    bound coincides with Gleipnir's (Table 2, 10-qubit rows).  Beyond the
    dense-simulation budget it reports a timeout, like the paper's 24-hour
    limit for programs with 20 or more qubits.
    """
    config = config or AnalysisConfig()
    guard = guard or config.guard
    start = time.perf_counter()
    ast, num_qubits = _as_ast(program)
    try:
        guard.check_dense_qubits(num_qubits, what="LQR full-simulation baseline")
    except ResourceLimitExceeded as exc:
        return BaselineOutcome(
            name="lqr_full_simulation",
            value=None,
            elapsed_seconds=time.perf_counter() - start,
            timed_out=True,
            detail=str(exc),
        )

    bits = [0] * num_qubits if initial_bits is None else [int(b) for b in initial_bits]
    rho = np.outer(basis_state(bits), basis_state(bits).conj())
    total = 0.0
    for op in ast.operations():
        channel = noise_model.channel_for(op.gate, op.qubits)
        if channel is not None:
            rho_local = partial_trace_keep(rho, op.qubits)
            bound = gate_error_bound(
                op.gate.matrix,
                channel,
                rho_local,
                0.0,
                noise_after_gate=config.noise_after_gate,
                config=config.sdp,
            )
            total += bound.value
        rho = apply_gate_to_density(rho, op.gate.matrix, op.qubits, num_qubits)
    elapsed = time.perf_counter() - start
    return BaselineOutcome(name="lqr_full_simulation", value=total, elapsed_seconds=elapsed)


def exact_error(
    program: Program | Circuit,
    noise_model: NoiseModel,
    *,
    initial_bits: str | Sequence[int] | None = None,
    guard: ResourceGuard | None = None,
) -> BaselineOutcome:
    """True output trace distance between noisy and ideal runs (exponential)."""
    start = time.perf_counter()
    ast, num_qubits = _as_ast(program)
    guard = guard or ResourceGuard()
    try:
        guard.check_dense_qubits(num_qubits, what="exact error computation")
        initial_state = None
        if initial_bits is not None:
            initial_state = basis_state([int(b) for b in initial_bits])
        value = exact_program_error(
            ast,
            noise_model,
            initial_state=initial_state,
            num_qubits=num_qubits,
            guard=guard,
        )
    except ResourceLimitExceeded as exc:
        return BaselineOutcome(
            name="exact_error",
            value=None,
            elapsed_seconds=time.perf_counter() - start,
            timed_out=True,
            detail=str(exc),
        )
    return BaselineOutcome(
        name="exact_error", value=value, elapsed_seconds=time.perf_counter() - start
    )
