"""Constructors for the five inference rules of the quantum error logic.

These functions build :class:`~repro.core.derivation.DerivationNode` objects
while enforcing the side conditions of Figure 5.  The analyzer uses them to
assemble derivations; they can also be used directly to reason about programs
by hand (see ``examples/teleportation_branches.py``).

The module also provides :func:`absorb_continuations`, the program
normalisation described in Section 5.2: any code sequenced *after* an ``if``
statement is duplicated into both branches, so that measurement branches can
be analysed independently to the end of the program.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..circuits.program import IfMeasure, Program, Seq, Skip, seq
from ..errors import LogicError
from ..sdp.diamond import DiamondNormBound
from .derivation import DerivationNode
from .judgment import Judgment

__all__ = [
    "skip_rule",
    "gate_rule",
    "seq_rule",
    "weaken_rule",
    "meas_rule",
    "absorb_continuations",
]


def skip_rule(delta: float, *, noise_model: str = "") -> DerivationNode:
    """Skip: an empty program introduces no error."""
    return DerivationNode(
        rule="skip",
        judgment=Judgment(delta=delta, epsilon=0.0, program_label="skip", noise_model=noise_model),
    )


def gate_rule(
    gate_label: str,
    qubits: Sequence[int],
    delta: float,
    bound: DiamondNormBound | None,
    *,
    rho_local: np.ndarray | None = None,
    truncation_added: float = 0.0,
    noise_model: str = "",
) -> DerivationNode:
    """Gate: the error of a gate is its (ρ̂, δ)-diamond norm under ω."""
    epsilon = bound.value if bound is not None else 0.0
    if epsilon < 0:
        raise LogicError("a gate bound cannot be negative")
    label = f"{gate_label}({', '.join('q%d' % q for q in qubits)})"
    return DerivationNode(
        rule="gate",
        judgment=Judgment(
            delta=delta, epsilon=epsilon, program_label=label, noise_model=noise_model
        ),
        gate_label=gate_label,
        qubits=tuple(int(q) for q in qubits),
        rho_local=rho_local,
        bound=bound,
        truncation_added=float(truncation_added),
    )


def seq_rule(children: Sequence[DerivationNode], *, noise_model: str = "") -> DerivationNode:
    """Seq: errors of a sequence add; the predicate is advanced by TN.

    The children must be given in program order; each child's judgment uses
    the predicate distance *before* that part runs, and its
    ``truncation_added`` field records the δ contributed by the TN step for
    that part.  The rule checks that the distances are monotone.
    """
    children = list(children)
    if not children:
        return skip_rule(0.0, noise_model=noise_model)
    deltas = [child.judgment.delta for child in children]
    for before, after in zip(deltas, deltas[1:]):
        if after + 1e-12 < before:
            raise LogicError(
                "Seq rule applied with decreasing predicate distances; "
                "the TN approximation error can only grow along a sequence"
            )
    epsilon = float(sum(child.judgment.epsilon for child in children))
    label = "; ".join(child.judgment.program_label for child in children[:4])
    if len(children) > 4:
        label += "; ..."
    return DerivationNode(
        rule="seq",
        judgment=Judgment(
            delta=children[0].judgment.delta,
            epsilon=epsilon,
            program_label=label,
            noise_model=noise_model,
        ),
        children=children,
    )


def weaken_rule(
    premise: DerivationNode, *, delta: float | None = None, epsilon: float | None = None
) -> DerivationNode:
    """Weaken: strengthen the precondition (smaller δ) / relax the bound (larger ε)."""
    judgment = premise.judgment.weaken(delta=delta, epsilon=epsilon)
    return DerivationNode(rule="weaken", judgment=judgment, children=[premise])


def meas_rule(
    qubit: int,
    delta: float,
    branches: Sequence[DerivationNode],
    *,
    branch_probabilities: Sequence[float] | None = None,
    noise_model: str = "",
) -> DerivationNode:
    """Meas: ``if q = |0> then P0 else P1`` is bounded by ``(1 - d) e + d``.

    ``e`` is the maximum of the branch bounds (the rule in the paper requires
    one uniform bound for both branches; taking the maximum realises that) and
    ``d = min(delta, 1)`` caps the trace-norm distance at the largest possible
    probability discrepancy.
    """
    branches = list(branches)
    if not branches:
        raise LogicError("Meas rule requires at least one analysed branch")
    epsilon_branches = max(child.judgment.epsilon for child in branches)
    capped = min(1.0, max(0.0, delta))
    epsilon = (1.0 - capped) * epsilon_branches + capped
    return DerivationNode(
        rule="meas",
        judgment=Judgment(
            delta=delta,
            epsilon=float(epsilon),
            program_label=f"if q{qubit} = |0> ...",
            noise_model=noise_model,
        ),
        children=branches,
        measured_qubit=int(qubit),
        branch_probabilities=tuple(branch_probabilities) if branch_probabilities else None,
    )


def absorb_continuations(program: Program) -> Program:
    """Duplicate code sequenced after an ``if`` statement into both branches.

    After this rewrite every ``IfMeasure`` node is the final statement of its
    enclosing sequence, so measurement branches can be analysed independently
    (the MPS approximator cannot merge collapsed states back together —
    Section 5.2).  Branch-free programs are returned structurally unchanged
    (modulo flattening of nested sequences).
    """
    statements = program.statements()
    return _absorb(statements)


def _absorb(statements: list[Program]) -> Program:
    for index, statement in enumerate(statements):
        if isinstance(statement, IfMeasure):
            rest = statements[index + 1 :]
            continuation = _absorb(rest) if rest else Skip()
            then_branch = _absorb(
                statement.then_branch.statements() + ([continuation] if rest else [])
            )
            else_branch = _absorb(
                statement.else_branch.statements() + ([continuation] if rest else [])
            )
            rewritten = IfMeasure(statement.qubit, then_branch, else_branch)
            return seq(*statements[:index], rewritten)
        if isinstance(statement, (Seq,)):
            # statements() already flattens sequences, so this cannot happen,
            # but keep the defensive branch for directly-constructed trees.
            return _absorb(
                statements[:index] + statement.statements() + statements[index + 1 :]
            )
    if not statements:
        return Skip()
    return seq(*statements)
