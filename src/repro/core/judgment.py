"""Judgments of the quantum error logic: ``(rho_hat, delta) |- P_omega <= eps``.

A judgment records that, for every input state within trace-norm δ of the
approximate state ρ̂, the trace distance between the noisy and ideal outputs
of the program is at most ε (under the noise model ω).  Judgments are the
conclusions attached to every node of a :class:`~repro.core.derivation.Derivation`.
"""

from __future__ import annotations

import dataclasses

from ..errors import LogicError

__all__ = ["Judgment"]


@dataclasses.dataclass(frozen=True)
class Judgment:
    """The conclusion of one inference step.

    Attributes:
        delta: the predicate distance δ the judgment assumes.
        epsilon: the certified error bound ε it concludes.
        program_label: human-readable description of the (sub)program.
        noise_model: name of the noise model ω.
    """

    delta: float
    epsilon: float
    program_label: str = ""
    noise_model: str = ""

    def __post_init__(self) -> None:
        if self.delta < 0:
            raise LogicError("judgment delta must be non-negative")
        if self.epsilon < 0:
            raise LogicError("judgment epsilon must be non-negative")

    def weaken(self, *, delta: float | None = None, epsilon: float | None = None) -> "Judgment":
        """Apply the Weaken rule: smaller δ and/or larger ε."""
        new_delta = self.delta if delta is None else delta
        new_epsilon = self.epsilon if epsilon is None else epsilon
        if new_delta > self.delta:
            raise LogicError("Weaken cannot increase the predicate distance")
        if new_epsilon < self.epsilon:
            raise LogicError("Weaken cannot decrease the error bound")
        return dataclasses.replace(self, delta=new_delta, epsilon=new_epsilon)

    def pretty(self) -> str:
        return (
            f"(rho_hat, {self.delta:.3e}) |- {self.program_label or 'P'} "
            f"<= {self.epsilon:.3e}"
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.pretty()
