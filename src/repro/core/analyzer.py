"""The end-to-end Gleipnir analyzer (the workflow of Figure 4).

Given a program, an input product state, and a noise model, the analyzer

1. evolves an MPS approximation of the ideal state through the program,
   accumulating the sound truncation bound δ (Section 5);
2. before every noisy gate, computes the (ρ̂, δ)-diamond norm of that gate via
   the certified SDP engine, using the local density matrix of the MPS as the
   predicate (Section 6);
3. chains the per-gate bounds with the Seq/Meas rules of the error logic
   (Section 4) into a verified bound on the whole program, together with the
   full derivation tree.

The analysis pipeline is *single-pass*: with the bound scheduler enabled
(the default), the MPS walk happens once, inside the scheduler's pre-pass,
which records every predicate and truncation into a
:class:`~repro.core.derivation.ReplayTape`; the derivation is then rebuilt
from the tape (plus the prefilled bound cache) without evolving a second
MPS.  Without the scheduler, the analyzer drives a live approximator as the
paper describes.  Both modes run through the same traversal via the
``_LiveTrace`` / ``_TapeTrace`` sources below.

The result's ``error_bound`` is a *trace distance* (the ½‖·‖₁ convention), so
it directly upper-bounds the statistical distance of any measurement performed
on the noisy output versus the ideal output.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Sequence

from ..circuits.circuit import Circuit
from ..circuits.program import GateOp, IfMeasure, Program, Seq, Skip
from ..config import AnalysisConfig
from ..errors import LogicError
from ..mps.approximator import MPSApproximator
from ..noise.model import NoiseModel
from ..obs import metrics as obs_metrics
from ..obs.trace import span
from ..sdp.diamond import GateBoundCache
from .derivation import (
    Derivation,
    DerivationNode,
    GateContribution,
    ReplayTape,
    TapeGate,
    TapeMeasure,
    TapeSkip,
)
from .predicate import trivial_local_predicate
from .rules import absorb_continuations, gate_rule, meas_rule, seq_rule, skip_rule

__all__ = [
    "AnalysisResult",
    "GleipnirAnalyzer",
    "analyze_program",
    "vacuous_branch_approximator",
]


def vacuous_branch_approximator(
    branch: Program, qubit: int, outcome: int, width: int
) -> MPSApproximator:
    """Fresh approximator for a measurement branch deemed unreachable.

    Start from the collapsed basis state and immediately weaken the distance
    bound to the maximum (δ = 2), so every gate bound inside the branch
    reduces to the unconstrained diamond norm.  This keeps the Meas rule
    sound without knowing the collapsed state.  Shared by the analyzer and
    the bound scheduler, whose pre-pass must reproduce exactly the
    predicates the replay will request.
    """
    used = branch.qubits_used() | {qubit}
    num_qubits = max((max(used) + 1) if used else 1, qubit + 1)
    bits = [0] * num_qubits
    bits[qubit] = outcome
    fresh = MPSApproximator.from_product_state(bits, width=width)
    fresh.weaken_to(trivial_local_predicate(1).delta)  # vacuous predicate
    return fresh


class _LiveTrace:
    """Drives the derivation from a live MPS approximator (sequential path)."""

    def __init__(self, approximator: MPSApproximator):
        self._approximator = approximator

    def skip_delta(self) -> float:
        return self._approximator.delta

    def gate_step(
        self, op: GateOp, needs_predicate: bool
    ) -> tuple[float, "object | None", float, float]:
        approximator = self._approximator
        delta_before = approximator.delta
        rho_local = (
            approximator.local_predicate(op.qubits).rho_local
            if needs_predicate
            else None
        )
        truncation_added = approximator.apply_gate_op(op)
        return delta_before, rho_local, truncation_added, approximator.delta

    def measure_step(self, qubit: int) -> tuple[float, dict[int, tuple[float, "_LiveTrace"]]]:
        delta_before = self._approximator.delta
        reachable = {
            outcome: (probability, _LiveTrace(child))
            for outcome, probability, child in self._approximator.branch_on_measurement(
                qubit
            )
        }
        return delta_before, reachable

    def unreachable_branch(
        self, branch: Program, qubit: int, outcome: int, width: int
    ) -> "_LiveTrace":
        return _LiveTrace(vacuous_branch_approximator(branch, qubit, outcome, width))


class _TapeTrace:
    """Replays the pre-pass :class:`ReplayTape`; performs no MPS work.

    The tape is consumed sequentially — measurement branches and unreachable
    branches continue on the same tape because the pre-pass recorded them in
    the identical traversal order.
    """

    def __init__(self, tape: ReplayTape):
        self._tape = tape

    def skip_delta(self) -> float:
        return self._tape.take(TapeSkip).delta

    def gate_step(
        self, op: GateOp, needs_predicate: bool
    ) -> tuple[float, "object | None", float, float]:
        record = self._tape.take(TapeGate)
        if (record.rho_local is None) == needs_predicate:
            raise LogicError(
                f"replay tape out of step at gate {op.gate.label()}: the "
                "pre-pass and the replay disagree about the gate's noise"
            )
        return (
            record.delta_before,
            record.rho_local,
            record.truncation_added,
            record.delta_after,
        )

    def measure_step(self, qubit: int) -> tuple[float, dict[int, tuple[float, "_TapeTrace"]]]:
        record = self._tape.take(TapeMeasure)
        return record.delta_before, {
            outcome: (probability, self) for outcome, probability in record.probabilities
        }

    def unreachable_branch(
        self, branch: Program, qubit: int, outcome: int, width: int
    ) -> "_TapeTrace":
        return self


@dataclasses.dataclass
class AnalysisResult:
    """Outcome of one Gleipnir analysis.

    Attributes:
        error_bound: verified upper bound ε on the output trace distance.
        final_delta: accumulated MPS truncation bound at the end of the
            program (maximum over branches).
        derivation: the full derivation tree (None when disabled).
        num_gates: number of gate applications analysed (over all branches).
        num_branches: number of measurement branches explored.
        elapsed_seconds: wall-clock analysis time.
        sdp_solves / sdp_cache_hits: SDP workload statistics.
        mps_width: bond dimension used by the approximator.
        noise_model: name of the noise model.
        sdp_dominance_hits: lookups answered by a dominating (weaker)
            cached predicate instead of a fresh solve.
        scheduled_solves: unique solve classes the bound scheduler solved
            up front (0 when the scheduler is disabled).
        mps_walks: how many times an MPS evolved through the whole program
            for this analysis.  The single-pass pipeline keeps this at 1:
            either the scheduler's pre-pass (whose ReplayTape the derivation
            replays) or the live sequential traversal, never both.
        tape_steps_reused: top-level program steps the pre-pass answered
            from the replay-tape prefix memo instead of re-walking (0 with
            the memo disabled or on a cold walk).
        timings: structured per-phase wall-clock breakdown — always present:
            ``total_seconds``, ``prefill_walk_seconds``,
            ``prefill_solve_seconds``, ``replay_seconds``, and
            ``solve_classes`` (one ``{"solve_class", "count", "seconds",
            "worker", "chunk", "predicted_seconds"}`` event per batched SDP
            template group — the worker-slot attribution and cost-model
            prediction ride along with the measurement).  Pure observation:
            the clocks never influence the derivation.
    """

    error_bound: float
    final_delta: float
    derivation: Derivation | None
    num_gates: int
    num_branches: int
    elapsed_seconds: float
    sdp_solves: int
    sdp_cache_hits: int
    mps_width: int
    noise_model: str
    program_name: str = ""
    sdp_dominance_hits: int = 0
    scheduled_solves: int = 0
    mps_walks: int = 1
    tape_steps_reused: int = 0
    timings: dict = dataclasses.field(default_factory=dict)

    def gate_contributions(self) -> list[GateContribution]:
        if self.derivation is None:
            raise LogicError("the analysis was run without derivation collection")
        return self.derivation.gate_contributions()

    def summary(self) -> str:
        return (
            f"{self.program_name or 'program'}: bound={self.error_bound:.6e} "
            f"(delta={self.final_delta:.3e}, gates={self.num_gates}, "
            f"branches={self.num_branches}, {self.elapsed_seconds:.2f}s, "
            f"sdp solves={self.sdp_solves}, cache hits={self.sdp_cache_hits})"
        )


class GleipnirAnalyzer:
    """Computes verified error bounds for noisy quantum programs."""

    def __init__(self, noise_model: NoiseModel, config: AnalysisConfig | None = None):
        self.noise_model = noise_model
        self.config = config or AnalysisConfig()
        self.config.validate()
        self._cache = GateBoundCache(
            decimals=self.config.sdp.cache_decimals,
            dominance=self.config.sdp.dominance_cache,
            store_path=self.config.sdp.persistent_cache_path,
            max_entries=self.config.sdp.cache_max_entries,
        )

    # -- public API -----------------------------------------------------------
    def analyze(
        self,
        program: Program | Circuit,
        *,
        initial_bits: str | Sequence[int] | None = None,
        num_qubits: int | None = None,
        program_name: str | None = None,
    ) -> AnalysisResult:
        """Analyse a program and return the verified error bound.

        Args:
            program: the program or circuit to analyse.
            initial_bits: computational-basis input state (all zeros by default).
            num_qubits: register size (inferred when omitted).
            program_name: label used in reports.
        """
        start = time.perf_counter()
        ast = program.to_program() if isinstance(program, Circuit) else program
        name = program_name or (program.name if isinstance(program, Circuit) else "program")
        if num_qubits is None:
            num_qubits = program.num_qubits if isinstance(program, Circuit) else ast.num_qubits
        if num_qubits == 0:
            raise LogicError("cannot analyse a program with no qubits")
        if initial_bits is None:
            initial_bits = [0] * num_qubits
        bits = [int(b) for b in initial_bits]
        if len(bits) != num_qubits:
            raise LogicError(
                f"initial state has {len(bits)} bits but the program uses {num_qubits} qubits"
            )

        normalised = absorb_continuations(ast)

        if not self.config.sdp.cache:
            self._cache.clear()
        solves_before = self._cache.misses
        hits_before = self._cache.hits
        dominance_before = self._cache.dominance_hits

        scheduled_solves = 0
        tape_steps_reused = 0
        tape = None
        prefill_report = None
        if self.config.scheduler and self.config.sdp.cache:
            # Program-level pre-pass: collect every quantised solve class,
            # dedupe, and batch-solve the unique set before the derivation
            # replay below — which then hits the cache for every gate and
            # consumes the pre-pass ReplayTape instead of evolving a second
            # MPS (the single-pass pipeline).
            from .scheduler import BoundScheduler

            scheduler = BoundScheduler(
                self.noise_model, self._cache, self.config, gate_key=self._gate_key
            )
            with span("scheduler.prefill", "analysis", program=name):
                prefill_report = scheduler.prefill(normalised, bits)
            scheduled_solves = prefill_report.num_solved
            tape_steps_reused = prefill_report.tape_steps_reused
            tape = prefill_report.tape

        if tape is not None:
            trace: _LiveTrace | _TapeTrace = _TapeTrace(tape)
        else:
            trace = _LiveTrace(
                MPSApproximator.from_product_state(bits, width=self.config.mps_width)
            )

        self._num_gates = 0
        self._num_branches = 1
        self._max_delta = 0.0
        replay_start = time.perf_counter()
        with span(
            "analyzer.replay" if tape is not None else "analyzer.walk",
            "analysis",
            program=name,
        ):
            root = self._analyze_node(normalised, trace)
        replay_seconds = time.perf_counter() - replay_start
        if tape is not None:
            tape.verify_exhausted()
        elapsed = time.perf_counter() - start
        timings = {
            "total_seconds": elapsed,
            "prefill_walk_seconds": (
                prefill_report.walk_seconds if prefill_report is not None else 0.0
            ),
            "prefill_solve_seconds": (
                prefill_report.solve_seconds if prefill_report is not None else 0.0
            ),
            "replay_seconds": replay_seconds,
            "solve_classes": (
                list(prefill_report.solve_timings)
                if prefill_report is not None
                else []
            ),
        }
        self._publish_metrics(
            solves=self._cache.misses - solves_before,
            hits=self._cache.hits - hits_before,
            dominance_hits=self._cache.dominance_hits - dominance_before,
        )

        derivation = None
        if self.config.collect_derivation:
            derivation = Derivation(
                root,
                noise_model_name=self.noise_model.name,
                mps_width=self.config.mps_width,
            )
        return AnalysisResult(
            error_bound=root.judgment.epsilon,
            final_delta=self._max_delta,
            derivation=derivation,
            num_gates=self._num_gates,
            num_branches=self._num_branches,
            elapsed_seconds=elapsed,
            sdp_solves=self._cache.misses - solves_before,
            sdp_cache_hits=self._cache.hits - hits_before,
            mps_width=self.config.mps_width,
            noise_model=self.noise_model.name,
            program_name=name,
            sdp_dominance_hits=self._cache.dominance_hits - dominance_before,
            scheduled_solves=scheduled_solves,
            mps_walks=1,
            tape_steps_reused=tape_steps_reused,
            timings=timings,
        )

    @staticmethod
    def _publish_metrics(*, solves: int, hits: int, dominance_hits: int) -> None:
        """Fold this analysis's bound-cache deltas into the metric registry.

        The cache keeps its own counters on the per-gate hot path; publishing
        the per-analysis deltas once keeps lookups free of registry work.
        """
        pairs = (
            ("miss", solves),
            ("hit", hits),
            ("dominance_hit", dominance_hits),
        )
        for outcome, amount in pairs:
            if amount:
                obs_metrics.counter(
                    "repro_gate_bound_lookups_total",
                    "Gate-bound cache lookups by outcome (miss = fresh solve).",
                    {"outcome": outcome},
                ).inc(amount)
        obs_metrics.counter(
            "repro_analyses_total", "Analyses completed by this process."
        ).inc()

    @property
    def cache(self) -> GateBoundCache:
        return self._cache

    # -- recursive analysis -------------------------------------------------------
    def _analyze_node(
        self, program: Program, trace: "_LiveTrace | _TapeTrace"
    ) -> DerivationNode:
        if isinstance(program, Skip):
            return skip_rule(trace.skip_delta(), noise_model=self.noise_model.name)
        if isinstance(program, GateOp):
            return self._analyze_gate(program, trace)
        if isinstance(program, Seq):
            children = [self._analyze_node(part, trace) for part in program.parts]
            return seq_rule(children, noise_model=self.noise_model.name)
        if isinstance(program, IfMeasure):
            return self._analyze_measure(program, trace)
        raise LogicError(f"unknown program node {type(program).__name__}")

    def _analyze_gate(
        self, op: GateOp, trace: "_LiveTrace | _TapeTrace"
    ) -> DerivationNode:
        self._num_gates += 1
        noise_channel = self.noise_model.channel_for(op.gate, op.qubits)
        delta_before, rho_local, truncation_added, delta_after = trace.gate_step(
            op, noise_channel is not None
        )

        bound = None
        if noise_channel is not None:
            bound = self._cache.lookup_or_compute(
                self._gate_key(op, noise_channel),
                op.gate.matrix,
                noise_channel,
                rho_local,
                delta_before,
                noise_after_gate=self.config.noise_after_gate,
                config=self.config.sdp,
            )

        self._max_delta = max(self._max_delta, delta_after)
        return gate_rule(
            op.gate.label(),
            op.qubits,
            delta_before,
            bound,
            rho_local=rho_local,
            truncation_added=truncation_added,
            noise_model=self.noise_model.name,
        )

    def _gate_key(self, op: GateOp, noise_channel) -> tuple:
        """The structural part of the SDP cache key for one gate application.

        Shared with the bound scheduler so the pre-pass populates exactly the
        keys the replay pass looks up.
        """
        return (
            op.gate.key(),
            self.noise_model.name,
            noise_channel.name,
            tuple(op.qubits) if self._noise_is_position_dependent() else (),
        )

    def _noise_is_position_dependent(self) -> bool:
        """Whether the noise model distinguishes physical qubits.

        Calibration-driven models attach different channels to different
        qubits; in that case the SDP cache key must include the qubit tuple so
        bounds are not shared across positions.  Uniform models (the paper's
        sample model) can share bounds across positions, which matters a lot
        for the layered QAOA/Ising benchmarks.
        """
        return self.noise_model.is_position_dependent()

    def _analyze_measure(
        self, program: IfMeasure, trace: "_LiveTrace | _TapeTrace"
    ) -> DerivationNode:
        delta_before, reachable = trace.measure_step(program.qubit)
        self._num_branches += 1
        branch_nodes: list[DerivationNode] = []
        probabilities: list[float] = []
        for outcome, branch_program in ((0, program.then_branch), (1, program.else_branch)):
            if outcome in reachable:
                probability, child = reachable[outcome]
                branch_nodes.append(self._analyze_node(branch_program, child))
                probabilities.append(probability)
            else:
                # The approximation gives this outcome probability ~0, so we
                # cannot compute a collapsed ρ̂ for it.  Analyse the branch
                # under the trivial predicate instead (sound, possibly loose;
                # see vacuous_branch_approximator).
                fresh = trace.unreachable_branch(
                    branch_program, program.qubit, outcome, self.config.mps_width
                )
                branch_nodes.append(self._analyze_node(branch_program, fresh))
                probabilities.append(0.0)
        return meas_rule(
            program.qubit,
            delta_before,
            branch_nodes,
            branch_probabilities=probabilities,
            noise_model=self.noise_model.name,
        )


def analyze_program(
    program: Program | Circuit,
    noise_model: NoiseModel,
    *,
    config: AnalysisConfig | None = None,
    initial_bits: str | Sequence[int] | None = None,
    num_qubits: int | None = None,
    program_name: str | None = None,
) -> AnalysisResult:
    """Functional one-shot wrapper around :class:`GleipnirAnalyzer`."""
    analyzer = GleipnirAnalyzer(noise_model, config)
    return analyzer.analyze(
        program,
        initial_bits=initial_bits,
        num_qubits=num_qubits,
        program_name=program_name,
    )
