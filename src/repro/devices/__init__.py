"""NISQ device models: coupling maps, calibration, qubit mapping, emulation."""

from .coupling import CouplingMap
from .boeblingen import boeblingen_calibration, lima_calibration, uniform_calibration
from .mapping import (
    MappedCircuit,
    best_path_mapping,
    estimate_mapping_cost,
    map_circuit,
    mapping_noise_model,
    noise_adaptive_mapping,
    trivial_mapping,
)
from .emulator import EmulationResult, HardwareEmulator

__all__ = [name for name in dir() if not name.startswith("_")]
