"""Qubit mapping protocols and mapping evaluation (Section 7.2).

A *mapping* assigns each logical qubit of a circuit to a physical qubit of the
device.  Because device noise is heterogeneous, different mappings execute the
same circuit with different fidelity; Table 3 shows that Gleipnir's bounds
rank mappings consistently with measured errors, which is what makes it
usable for guiding noise-adaptive compilation.

This module provides:

* :func:`map_circuit` — remap a logical circuit onto physical qubits and route
  any non-adjacent 2-qubit gates through SWAP insertion;
* :func:`mapping_noise_model` — the calibration-driven noise model restricted
  to the device (what both the emulator and Gleipnir analyse against);
* :func:`estimate_mapping_cost` — a cheap additive error estimate used by the
  greedy mapping protocols;
* :func:`trivial_mapping`, :func:`best_path_mapping`,
  :func:`noise_adaptive_mapping` — three mapping protocols of increasing
  sophistication to compare in the experiments.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from ..circuits.circuit import Circuit
from ..circuits.transforms import decompose_swaps, route_to_coupling
from ..errors import DeviceError
from ..noise.calibration import CalibrationData, noise_model_from_calibration
from ..noise.model import NoiseModel
from .coupling import CouplingMap

__all__ = [
    "MappedCircuit",
    "map_circuit",
    "mapping_noise_model",
    "estimate_mapping_cost",
    "trivial_mapping",
    "best_path_mapping",
    "noise_adaptive_mapping",
]


@dataclasses.dataclass(frozen=True)
class MappedCircuit:
    """A circuit placed and routed on a device."""

    logical_circuit: Circuit
    physical_circuit: Circuit
    mapping: tuple[int, ...]
    coupling: CouplingMap

    @property
    def num_added_gates(self) -> int:
        return self.physical_circuit.gate_count() - self.logical_circuit.gate_count()

    def label(self) -> str:
        return "-".join(str(q) for q in self.mapping)


def map_circuit(
    circuit: Circuit,
    mapping: Sequence[int],
    coupling: CouplingMap,
    *,
    decompose_routing_swaps: bool = True,
) -> MappedCircuit:
    """Place a logical circuit on physical qubits and route it.

    Args:
        circuit: the logical circuit.
        mapping: ``mapping[logical] = physical``.
        coupling: the device coupling map.
        decompose_routing_swaps: expand inserted SWAPs into three CNOTs, which
            is how they execute (and get charged for noise) on hardware.
    """
    mapping = tuple(int(q) for q in mapping)
    if len(mapping) < circuit.num_qubits:
        raise DeviceError(
            f"mapping places {len(mapping)} qubits but the circuit uses {circuit.num_qubits}"
        )
    if len(set(mapping)) != len(mapping):
        raise DeviceError(f"mapping {mapping} assigns two logical qubits to one physical qubit")
    for physical in mapping:
        if physical < 0 or physical >= coupling.num_qubits:
            raise DeviceError(f"physical qubit {physical} outside the device")

    routed = route_to_coupling(
        circuit,
        coupling.edges(),
        num_physical_qubits=coupling.num_qubits,
        initial_layout=mapping[: circuit.num_qubits],
    )
    if decompose_routing_swaps:
        routed = decompose_swaps(routed)
    return MappedCircuit(
        logical_circuit=circuit,
        physical_circuit=routed,
        mapping=mapping,
        coupling=coupling,
    )


def mapping_noise_model(
    calibration: CalibrationData, *, kind: str = "depolarizing"
) -> NoiseModel:
    """The device noise model used both by the emulator and by Gleipnir."""
    return noise_model_from_calibration(calibration, kind=kind)


def estimate_mapping_cost(
    circuit: Circuit, mapping: Sequence[int], coupling: CouplingMap, calibration: CalibrationData
) -> float:
    """Cheap additive error estimate of running ``circuit`` under ``mapping``.

    Sums calibrated error rates over the gates of the routed circuit plus the
    readout errors of the qubits that carry data.  This is the kind of
    heuristic a noise-adaptive compiler uses internally; Gleipnir provides the
    verified counterpart.
    """
    mapped = map_circuit(circuit, mapping, coupling)
    total = 0.0
    for op in mapped.physical_circuit.operations():
        if op.gate.num_qubits == 1:
            total += calibration.single_qubit_error.get(op.qubits[0], 0.0)
        else:
            a, b = op.qubits
            if calibration.has_edge(a, b):
                total += calibration.edge_error(a, b)
            else:
                total += calibration.average_two_qubit_error()
    for physical in mapping[: circuit.num_qubits]:
        total += calibration.readout_error.get(physical, 0.0)
    return total


def trivial_mapping(circuit: Circuit, coupling: CouplingMap) -> tuple[int, ...]:
    """The identity mapping (logical i -> physical i)."""
    if circuit.num_qubits > coupling.num_qubits:
        raise DeviceError("the circuit does not fit on the device")
    return tuple(range(circuit.num_qubits))


def best_path_mapping(
    circuit: Circuit,
    coupling: CouplingMap,
    calibration: CalibrationData,
    *,
    max_candidates: int = 2000,
) -> tuple[int, ...]:
    """Choose the best *path* placement for a chain-shaped circuit.

    Enumerates simple paths of the required length in the coupling graph and
    picks the one minimising :func:`estimate_mapping_cost`.  This matches the
    structure of GHZ ladders and Ising chains, where the interaction graph is
    a path.
    """
    length = circuit.num_qubits
    candidates = coupling.simple_paths(length)
    if not candidates:
        raise DeviceError(f"the device has no simple path of {length} qubits")
    if len(candidates) > max_candidates:
        candidates = candidates[:max_candidates]
    best = min(
        candidates,
        key=lambda path: estimate_mapping_cost(circuit, path, coupling, calibration),
    )
    return tuple(best)


def noise_adaptive_mapping(
    circuit: Circuit,
    coupling: CouplingMap,
    calibration: CalibrationData,
) -> tuple[int, ...]:
    """A greedy noise-adaptive placement for general circuits.

    Logical qubits are placed one at a time in decreasing order of how many
    2-qubit gates they participate in; each is assigned the free physical
    qubit that minimises the estimated cost of the interactions placed so far
    (calibrated edge error times interaction count, plus the qubit's own
    1-qubit and readout error).
    """
    interactions: dict[tuple[int, int], int] = {}
    weight: dict[int, int] = {q: 0 for q in range(circuit.num_qubits)}
    for op in circuit.operations():
        if op.gate.num_qubits == 2:
            key = tuple(sorted(op.qubits))
            interactions[key] = interactions.get(key, 0) + 1
            for q in op.qubits:
                weight[q] += 1

    order = sorted(range(circuit.num_qubits), key=lambda q: -weight[q])
    placement: dict[int, int] = {}
    free = set(range(coupling.num_qubits))

    def candidate_cost(logical: int, physical: int) -> float:
        cost = calibration.single_qubit_error.get(physical, 0.0)
        cost += calibration.readout_error.get(physical, 0.0)
        # Look-ahead term: a placement whose free neighbourhood cannot host the
        # qubit's not-yet-placed partners will force routing later.  Charge a
        # small fraction of a 2-qubit error per missing neighbour so that, all
        # else equal, well-connected placements win.
        partners = {
            (b if a == logical else a)
            for (a, b) in interactions
            if logical in (a, b)
        }
        unplaced_partners = len([p for p in partners if p not in placement])
        free_neighbors = len([n for n in coupling.neighbors(physical) if n in free])
        deficit = max(0, unplaced_partners - free_neighbors)
        cost += 0.25 * calibration.average_two_qubit_error() * deficit
        for (a, b), count in interactions.items():
            other = b if a == logical else a if b == logical else None
            if other is None or other not in placement:
                continue
            other_physical = placement[other]
            if coupling.has_edge(physical, other_physical):
                edge_cost = (
                    calibration.edge_error(physical, other_physical)
                    if calibration.has_edge(physical, other_physical)
                    else calibration.average_two_qubit_error()
                )
            else:
                # Routing penalty: distance-1 extra SWAPs, three CNOTs each.
                distance = coupling.distance(physical, other_physical)
                edge_cost = 3 * (distance - 1) * calibration.average_two_qubit_error()
                edge_cost += calibration.average_two_qubit_error()
            cost += count * edge_cost
        return cost

    for logical in order:
        best_physical = min(free, key=lambda phys: candidate_cost(logical, phys))
        placement[logical] = best_physical
        free.remove(best_physical)
    return tuple(placement[q] for q in range(circuit.num_qubits))
