"""Device coupling maps (Figure 15).

A :class:`CouplingMap` records which pairs of physical qubits can host a
2-qubit gate.  Besides generic constructors (linear chains, grids, rings),
this module defines the topologies used in the paper's Table 3 experiment:
an IBM-Boeblingen-like 20-qubit lattice and an IBM-Lima-like 5-qubit "T".
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import networkx as nx

from ..errors import DeviceError

__all__ = ["CouplingMap"]


class CouplingMap:
    """An undirected coupling graph over physical qubits 0..n-1."""

    def __init__(self, num_qubits: int, edges: Iterable[tuple[int, int]], *, name: str = "device"):
        if num_qubits < 1:
            raise DeviceError("a device needs at least one qubit")
        self._graph = nx.Graph()
        self._graph.add_nodes_from(range(num_qubits))
        for a, b in edges:
            a, b = int(a), int(b)
            if a == b:
                raise DeviceError(f"self-loop on qubit {a}")
            if not (0 <= a < num_qubits and 0 <= b < num_qubits):
                raise DeviceError(f"edge ({a}, {b}) outside 0..{num_qubits - 1}")
            self._graph.add_edge(a, b)
        self._name = name

    # -- constructors ------------------------------------------------------------
    @classmethod
    def linear(cls, num_qubits: int) -> "CouplingMap":
        """A chain 0-1-2-...-(n-1)."""
        return cls(
            num_qubits,
            [(i, i + 1) for i in range(num_qubits - 1)],
            name=f"linear_{num_qubits}",
        )

    @classmethod
    def ring(cls, num_qubits: int) -> "CouplingMap":
        edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
        return cls(num_qubits, edges, name=f"ring_{num_qubits}")

    @classmethod
    def grid(cls, rows: int, cols: int) -> "CouplingMap":
        """A rows x cols rectangular lattice."""
        edges = []
        for r in range(rows):
            for c in range(cols):
                q = r * cols + c
                if c + 1 < cols:
                    edges.append((q, q + 1))
                if r + 1 < rows:
                    edges.append((q, q + cols))
        return cls(rows * cols, edges, name=f"grid_{rows}x{cols}")

    @classmethod
    def ibm_boeblingen(cls) -> "CouplingMap":
        """A 20-qubit lattice with the Boeblingen-style ladder connectivity.

        Four rows of five qubits; neighbouring qubits within a row are coupled,
        and rows are linked by vertical edges at alternating columns
        (Figure 15, left).
        """
        edges = [
            (0, 1), (1, 2), (2, 3), (3, 4),
            (5, 6), (6, 7), (7, 8), (8, 9),
            (10, 11), (11, 12), (12, 13), (13, 14),
            (15, 16), (16, 17), (17, 18), (18, 19),
            (1, 6), (3, 8),
            (5, 10), (7, 12), (9, 14),
            (11, 16), (13, 18),
        ]
        return cls(20, edges, name="ibm_boeblingen")

    @classmethod
    def ibm_lima(cls) -> "CouplingMap":
        """The 5-qubit T-shaped device of Figure 15 (right)."""
        return cls(5, [(0, 1), (1, 2), (1, 3), (3, 4)], name="ibm_lima")

    # -- queries -------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def num_qubits(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    def edges(self) -> list[tuple[int, int]]:
        return [tuple(sorted(edge)) for edge in self._graph.edges]

    def has_edge(self, a: int, b: int) -> bool:
        return self._graph.has_edge(a, b)

    def neighbors(self, qubit: int) -> list[int]:
        return sorted(self._graph.neighbors(qubit))

    def degree(self, qubit: int) -> int:
        return self._graph.degree(qubit)

    def distance(self, a: int, b: int) -> int:
        """Shortest-path distance between two physical qubits."""
        try:
            return nx.shortest_path_length(self._graph, a, b)
        except nx.NetworkXNoPath as exc:
            raise DeviceError(f"qubits {a} and {b} are disconnected") from exc

    def shortest_path(self, a: int, b: int) -> list[int]:
        try:
            return nx.shortest_path(self._graph, a, b)
        except nx.NetworkXNoPath as exc:
            raise DeviceError(f"qubits {a} and {b} are disconnected") from exc

    def is_connected_path(self, qubits: Sequence[int]) -> bool:
        """Whether consecutive entries of ``qubits`` are all coupled."""
        return all(self.has_edge(a, b) for a, b in zip(qubits, qubits[1:]))

    def simple_paths(self, length: int) -> list[list[int]]:
        """All simple paths with ``length`` vertices (used by mapping search)."""
        if length < 1:
            raise DeviceError("path length must be at least 1")
        if length == 1:
            return [[q] for q in range(self.num_qubits)]
        paths: list[list[int]] = []
        for source in self._graph.nodes:
            for target in self._graph.nodes:
                if source == target:
                    continue
                for path in nx.all_simple_paths(self._graph, source, target, cutoff=length - 1):
                    if len(path) == length:
                        paths.append(list(path))
        return paths

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CouplingMap(name={self._name!r}, qubits={self.num_qubits}, "
            f"edges={len(self.edges())})"
        )
