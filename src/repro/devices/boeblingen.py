"""Synthetic calibration data for the Table 3 devices.

The paper built its noise model for IBM Boeblingen from the publicly available
calibration data plus its own measurements.  That data is not redistributable
(and the device has been retired), so this module provides a *synthetic but
realistic* calibration snapshot:

* single-qubit gate errors around ``1e-3`` with per-qubit variation,
* two-qubit gate errors between ``8e-3`` and ``4e-2`` with per-edge variation,
* readout errors between ``1.5e-2`` and ``6e-2``,

generated deterministically so experiments are reproducible.  The first row of
the device (physical qubits 0–4, the ones Table 3's GHZ mappings use) gets a
hand-shaped error profile whose *ordering* mirrors the paper's findings: the
edge (0, 1) is the noisiest, (1, 2) and (2, 3) are the cleanest, and (3, 4)
sits in between, so the mapping ranking 1-2-3 < 2-3-4 < 0-1-2 emerges from the
calibration rather than being hard-coded anywhere in the analysis.
"""

from __future__ import annotations

import numpy as np

from ..noise.calibration import CalibrationData
from .coupling import CouplingMap

__all__ = ["boeblingen_calibration", "lima_calibration", "uniform_calibration"]


def boeblingen_calibration(*, seed: int = 2021) -> CalibrationData:
    """A deterministic synthetic calibration table for the 20-qubit device."""
    rng = np.random.default_rng(seed)
    coupling = CouplingMap.ibm_boeblingen()

    single_qubit_error: dict[int, float] = {}
    readout_error: dict[int, float] = {}
    t1: dict[int, float] = {}
    t2: dict[int, float] = {}
    for qubit in range(coupling.num_qubits):
        single_qubit_error[qubit] = float(10 ** rng.uniform(-3.4, -2.7))
        readout_error[qubit] = float(10 ** rng.uniform(-1.8, -1.2))
        t1[qubit] = float(rng.uniform(40e-6, 120e-6))
        t2[qubit] = float(min(2 * t1[qubit], rng.uniform(30e-6, 140e-6)))

    two_qubit_error: dict[tuple[int, int], float] = {}
    for a, b in coupling.edges():
        two_qubit_error[(a, b)] = float(10 ** rng.uniform(-2.1, -1.4))

    # Hand-shaped profile for the first row so the Table 3 ranking has a
    # definite ground truth: edge (0,1) is poor, (1,2)/(2,3) are the best,
    # (3,4) is mediocre; qubit 0 also reads out poorly.
    single_qubit_error.update({0: 3.2e-3, 1: 0.7e-3, 2: 0.5e-3, 3: 0.8e-3, 4: 1.4e-3})
    readout_error.update({0: 6.0e-2, 1: 2.2e-2, 2: 1.8e-2, 3: 2.4e-2, 4: 3.5e-2})
    two_qubit_error.update(
        {
            (0, 1): 4.2e-2,
            (1, 2): 1.1e-2,
            (2, 3): 1.3e-2,
            (3, 4): 2.4e-2,
        }
    )
    return CalibrationData(
        single_qubit_error=single_qubit_error,
        two_qubit_error=two_qubit_error,
        readout_error=readout_error,
        t1=t1,
        t2=t2,
        name="boeblingen-synthetic",
    )


def lima_calibration(*, seed: int = 5) -> CalibrationData:
    """A deterministic synthetic calibration table for the 5-qubit Lima-like device."""
    rng = np.random.default_rng(seed)
    coupling = CouplingMap.ibm_lima()
    single = {q: float(10 ** rng.uniform(-3.5, -2.8)) for q in range(coupling.num_qubits)}
    readout = {q: float(10 ** rng.uniform(-1.9, -1.3)) for q in range(coupling.num_qubits)}
    two = {edge: float(10 ** rng.uniform(-2.2, -1.6)) for edge in coupling.edges()}
    return CalibrationData(
        single_qubit_error=single,
        two_qubit_error=two,
        readout_error=readout,
        name="lima-synthetic",
    )


def uniform_calibration(
    coupling: CouplingMap,
    *,
    single_qubit_error: float = 1e-3,
    two_qubit_error: float = 1e-2,
    readout_error: float = 2e-2,
) -> CalibrationData:
    """A calibration with identical errors everywhere (useful as a control)."""
    return CalibrationData(
        single_qubit_error={q: single_qubit_error for q in range(coupling.num_qubits)},
        two_qubit_error={edge: two_qubit_error for edge in coupling.edges()},
        readout_error={q: readout_error for q in range(coupling.num_qubits)},
        name=f"uniform-{coupling.name}",
    )
