"""Hardware emulator: the stand-in for the paper's real-device runs (Table 3).

The paper measures the "real" error of a mapped GHZ circuit by running it on
IBM Boeblingen and computing the statistical (total-variation) distance
between the measured output distribution and the ideal one.  Offline, we
reproduce that pipeline with an emulator:

1. the mapped physical circuit is *compacted* onto the qubits it actually
   touches (so a 20-qubit device never forces a 2**20 density matrix);
2. the compacted circuit is simulated under the calibration-driven noise
   model with the exact noisy density-matrix semantics;
3. per-qubit readout (assignment) errors are applied to the outcome
   distribution;
4. optionally, a finite number of shots is sampled to add statistical noise,
   as a real run would.

The emulator's "measured error" is the total-variation distance between the
resulting distribution (marginalised onto the logical qubits, in logical
order) and the ideal distribution of the logical circuit — exactly the
quantity Gleipnir's trace-distance bound must dominate.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..config import ResourceGuard
from ..errors import DeviceError
from ..linalg.norms import statistical_distance
from ..noise.calibration import CalibrationData
from ..noise.model import NoiseModel
from ..semantics.measurement import (
    apply_readout_error,
    marginal_distribution,
    outcome_probabilities,
    sample_counts,
)
from ..semantics.noisy import NoisyDensityMatrixSimulator
from .coupling import CouplingMap
from .mapping import MappedCircuit, mapping_noise_model

__all__ = ["EmulationResult", "HardwareEmulator"]


@dataclasses.dataclass
class EmulationResult:
    """Outcome of one emulated device run."""

    probabilities: np.ndarray
    counts: dict[str, int] | None
    measured_error: float
    logical_qubits: tuple[int, ...]
    shots: int | None


class HardwareEmulator:
    """Noisy execution of mapped circuits under calibration-driven noise."""

    def __init__(
        self,
        coupling: CouplingMap,
        calibration: CalibrationData,
        *,
        noise_kind: str = "depolarizing",
        guard: ResourceGuard | None = None,
        seed: int | None = None,
    ):
        self.coupling = coupling
        self.calibration = calibration
        self.noise_kind = noise_kind
        self.guard = guard or ResourceGuard()
        self._rng = np.random.default_rng(seed)
        self._device_noise = mapping_noise_model(calibration, kind=noise_kind)

    @property
    def device_noise_model(self) -> NoiseModel:
        """The full-device noise model (keyed on physical qubits)."""
        return self._device_noise

    # -- compaction --------------------------------------------------------------
    def _compact(self, physical_circuit: Circuit) -> tuple[Circuit, dict[int, int]]:
        """Restrict the circuit to the physical qubits it touches.

        Returns the compacted circuit (on qubits 0..k-1) and the map from
        physical qubit to compact index.
        """
        used = sorted(physical_circuit.to_program().qubits_used())
        if not used:
            raise DeviceError("the circuit applies no gates")
        index_of = {physical: compact for compact, physical in enumerate(used)}
        compact = Circuit(len(used), name=f"{physical_circuit.name}_compact")
        for op in physical_circuit.operations():
            compact.append(op.gate, *(index_of[q] for q in op.qubits))
        return compact, index_of

    def _compact_noise_model(self, index_of: dict[int, int]) -> NoiseModel:
        """Device noise model re-keyed to compacted qubit indices."""
        physical_of = {compact: physical for physical, compact in index_of.items()}
        device = self._device_noise

        def factory(gate, qubits):
            physical = tuple(physical_of[q] for q in qubits)
            return device.channel_for(gate, physical)

        return NoiseModel.from_factory(factory, name=f"{device.name}@compact")

    # -- execution ------------------------------------------------------------------
    def run(
        self,
        mapped: MappedCircuit,
        *,
        shots: int | None = 8192,
        include_readout_error: bool = True,
    ) -> EmulationResult:
        """Emulate a mapped circuit and report its measured error.

        The measured error compares the distribution over the circuit's
        *logical* qubits (read out at their mapped physical locations, in
        logical order) against the ideal distribution of the logical circuit.
        """
        compact, index_of = self._compact(mapped.physical_circuit)
        self.guard.check_dense_qubits(compact.num_qubits, what="hardware emulation")

        noise_model = self._compact_noise_model(index_of)
        simulator = NoisyDensityMatrixSimulator(noise_model, self.guard)
        rho = simulator.run(compact)
        probabilities = outcome_probabilities(rho)

        if include_readout_error:
            readout = {
                compact_index: self.calibration.readout_error.get(physical, 0.0)
                for physical, compact_index in index_of.items()
            }
            probabilities = apply_readout_error(probabilities, readout)

        # Marginalise onto the logical qubits (at their mapped physical homes),
        # ordered logically, so the distribution is comparable to the ideal one.
        logical_physical = mapped.mapping[: mapped.logical_circuit.num_qubits]
        compact_positions = [index_of[p] for p in logical_physical]
        logical_probabilities = marginal_distribution(probabilities, compact_positions)

        counts = None
        effective = logical_probabilities
        if shots is not None:
            counts = sample_counts(logical_probabilities, shots, rng=self._rng)
            total = sum(counts.values())
            sampled = np.zeros_like(logical_probabilities)
            n = mapped.logical_circuit.num_qubits
            for bitstring, hits in counts.items():
                sampled[int(bitstring, 2)] = hits / total
            effective = sampled

        ideal = self._ideal_distribution(mapped.logical_circuit)
        measured_error = statistical_distance(effective, ideal)
        return EmulationResult(
            probabilities=logical_probabilities,
            counts=counts,
            measured_error=float(measured_error),
            logical_qubits=tuple(range(mapped.logical_circuit.num_qubits)),
            shots=shots,
        )

    def _ideal_distribution(self, logical_circuit: Circuit) -> np.ndarray:
        from ..semantics.statevector import StatevectorSimulator

        state = StatevectorSimulator(self.guard).run(logical_circuit)
        return np.abs(state) ** 2

    def measured_error(
        self,
        mapped: MappedCircuit,
        *,
        shots: int | None = 8192,
        include_readout_error: bool = True,
    ) -> float:
        """Convenience wrapper returning only the measured error."""
        return self.run(
            mapped, shots=shots, include_readout_error=include_readout_error
        ).measured_error

    def compare_mappings(
        self,
        circuit: Circuit,
        mappings: Sequence[Sequence[int]],
        *,
        shots: int | None = 8192,
    ) -> list[tuple[tuple[int, ...], float]]:
        """Measured error for each candidate mapping (placement + routing)."""
        from .mapping import map_circuit

        results = []
        for mapping in mappings:
            mapped = map_circuit(circuit, mapping, self.coupling)
            results.append(
                (tuple(int(q) for q in mapping), self.measured_error(mapped, shots=shots))
            )
        return results
