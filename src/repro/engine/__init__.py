"""The analysis engine: declarative jobs, a process-pool executor, a
resumable result store, and an HTTP serving front-end.

The engine turns one-shot :func:`repro.core.analyzer.analyze_program` calls
into first-class, addressable requests:

* :class:`AnalysisJob` (``spec``) — a content-addressed description of one
  analysis (program + noise model + configuration) with canonical JSON
  serialization, so jobs can be fingerprinted, deduped, persisted, and sent
  across process boundaries;
* :class:`AnalysisEngine` (``pool``) — executes batches of jobs across a
  process pool with per-job resource budgets, failure isolation, and a
  shared on-disk bound cache;
* :class:`ResultStore` (``store``) — a JSONL store keyed by job fingerprint
  that makes sweeps resumable;
* :class:`OutcomeStore` (``outcomes``) — a content-addressed store of whole
  outcomes (result + dual certificates), so warm traffic answers from one
  lookup and stays re-verifiable on demand;
* :class:`AnalysisService` (``service``) — a stdlib-HTTP front-end
  (``gleipnir-serve``) that coalesces submissions into engine batches.
"""

from .spec import AnalysisJob, ComparisonJob, JobResult, job_from_json_dict
from .store import ResultStore
from .outcomes import OutcomeCertificate, OutcomeStore
from .pool import AnalysisEngine, BatchReport, execute_job, job_family
from .comparisons import execute_comparison
from .service import AnalysisService

__all__ = [
    "AnalysisJob",
    "ComparisonJob",
    "JobResult",
    "ResultStore",
    "OutcomeStore",
    "OutcomeCertificate",
    "AnalysisEngine",
    "BatchReport",
    "execute_comparison",
    "execute_job",
    "job_family",
    "job_from_json_dict",
    "AnalysisService",
]
