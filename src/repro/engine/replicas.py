"""Sharded serving: N replica processes behind a fingerprint-routing front.

``gleipnir-serve --replicas N`` turns the single-process server into a tiny
deployment: :class:`ReplicaSet` spawns N ``gleipnir-serve`` child processes
(each a full engine + asyncio surface on an ephemeral port), and
:class:`ShardRouter` fronts them on the requested ``--host``/``--port``.

Sharding is **deterministic content addressing**, the same invariant the
whole pipeline rests on: job fingerprints are hex SHA-256 digests, and a job
lives on replica ``int(fingerprint, 16) % N``.  Every submission of a job —
from any client, through the router or directly — lands on the same replica,
so per-replica result/outcome stores stay disjoint and warm hits shard
perfectly.  :class:`repro.api.Client` computes the same function when handed
the replica URLs directly, which is why the router can stay a thin relay:

* ``POST /v1/batches`` — validates and fingerprints each job, splits the
  batch by shard, forwards the sub-batches concurrently, and splices the
  replicas' entries back into submission order;
* ``GET /v1/jobs/<fp>[?wait=]`` — relayed to the owning shard; a long poll
  parks a router coroutine against a parked replica coroutine;
* ``GET /v1/healthz`` — aggregated: ok iff every replica is ok;
* ``GET /v1/capabilities`` — replica 0's payload plus a ``router`` stanza;
* ``GET /v1/metrics`` — the router process's own registry (per-shard relay
  counters); each replica exposes its own ``/v1/metrics`` with its
  ``repro_replica_shard`` gauge.

Per-replica store isolation: ``--store``/``--outcomes``/``--cache-dir``
locations are resharded with :func:`shard_location` (``results.jsonl`` →
``results.r0.jsonl``, same for ``sqlite:///`` paths), so replicas never
contend on one file.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import re
import subprocess
import sys
import threading
import time
from urllib.parse import urlparse

from ..errors import EngineError, error_envelope
from ..obs import metrics as obs_metrics
from .aserve import read_http_request, send_http_response
from .backends import parse_storage_url
from .spec import AnalysisJob

__all__ = ["ReplicaSet", "ShardRouter", "shard_index", "shard_location", "serve_replicas"]

#: How the children announce their bound port (matched on their stdout).
_BANNER = re.compile(r"listening on (http://[\d.]+:\d+)")


def shard_index(fingerprint: str, count: int) -> int:
    """The replica owning ``fingerprint``: ``int(fp, 16) % count``."""
    return int(fingerprint, 16) % count


def shard_location(url: str, index: int) -> str:
    """A per-replica variant of a storage URL (``results.jsonl`` → ``results.r0.jsonl``).

    ``memory://`` locations pass through unchanged — each replica process has
    private memory anyway.
    """
    scheme, location = parse_storage_url(url)
    if scheme == "memory":
        return url
    root, ext = os.path.splitext(location)
    sharded = f"{root}.r{index}{ext or ''}"
    if scheme == "sqlite":
        # SQLAlchemy slash convention: three for relative, four for absolute.
        return f"sqlite:///{sharded}"
    if url.startswith("jsonl://"):
        return f"jsonl://{sharded}"
    return sharded


class ReplicaSet:
    """N ``gleipnir-serve`` child processes on ephemeral ports.

    Args:
        count: number of replicas (the shard modulus).
        child_args: extra ``gleipnir-serve`` argv fragments shared by every
            replica — ``--store``/``--outcomes``/``--cache-dir`` values are
            expected to already be per-replica (see :func:`build_child_args`).
    """

    def __init__(self, count: int, child_args_per_replica: list[list[str]]):
        if count < 1:
            raise EngineError("--replicas must be at least 1")
        if len(child_args_per_replica) != count:
            raise EngineError("one argv list per replica is required")
        self.count = count
        self._argv = child_args_per_replica
        self.processes: list[subprocess.Popen] = []
        self.urls: list[str] = []

    def start(self, *, timeout: float = 60.0) -> list[str]:
        """Spawn every replica and wait for its banner; returns their URLs."""
        # Children must import repro the same way this process did, even when
        # it came off sys.path rather than an installed distribution.
        import repro

        src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        if src_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                f"{src_root}{os.pathsep}{existing}" if existing else src_root
            )
        for index in range(self.count):
            argv = [
                sys.executable,
                "-c",
                "from repro.engine.service import main; raise SystemExit(main())",
                "--host",
                "127.0.0.1",
                "--port",
                "0",
                "--shard-index",
                str(index),
                "--shard-count",
                str(self.count),
                *self._argv[index],
            ]
            self.processes.append(
                subprocess.Popen(
                    argv,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.STDOUT,
                    text=True,
                    env=env,
                )
            )
        deadline = time.monotonic() + timeout
        for index, process in enumerate(self.processes):
            url = None
            while time.monotonic() < deadline:
                line = process.stdout.readline()
                if not line:
                    break
                match = _BANNER.search(line)
                if match:
                    url = match.group(1)
                    break
            if url is None:
                self.stop()
                raise EngineError(f"replica {index} failed to start")
            self.urls.append(url)
            # Keep the pipe drained so a chatty replica can never block on it.
            threading.Thread(
                target=_drain, args=(process.stdout,), daemon=True
            ).start()
        return list(self.urls)

    def stop(self, *, timeout: float = 10.0) -> None:
        for process in self.processes:
            if process.poll() is None:
                process.terminate()
        for process in self.processes:
            with contextlib.suppress(subprocess.TimeoutExpired):
                process.wait(timeout=timeout)
            if process.poll() is None:
                process.kill()
                process.wait(timeout=timeout)
        self.processes = []
        self.urls = []

    def __enter__(self) -> "ReplicaSet":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def _drain(stream) -> None:
    for _line in stream:
        pass


class ShardRouter:
    """An asyncio front that relays ``/v1`` requests to the owning shard.

    Same lifecycle surface as :class:`~repro.engine.aserve.AsyncAnalysisServer`
    (``server_address`` / ``serve_forever`` / ``shutdown`` / ``server_close``).
    """

    def __init__(
        self,
        replica_urls: list[str],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        relay_timeout: float = 120.0,
    ):
        from .service import API_VERSION

        if not replica_urls:
            raise EngineError("a router needs at least one replica URL")
        self.api_version = API_VERSION
        self.replicas = [self._endpoint(url) for url in replica_urls]
        self.relay_timeout = float(relay_timeout)
        self._loop = asyncio.new_event_loop()
        self._closed = False
        self._server = self._loop.run_until_complete(
            asyncio.start_server(self._handle_client, host, port)
        )
        self.server_address = self._server.sockets[0].getsockname()

    @staticmethod
    def _endpoint(url: str) -> tuple[str, int]:
        parsed = urlparse(url if "//" in url else f"http://{url}")
        if not parsed.hostname or not parsed.port:
            raise EngineError(f"replica URL {url!r} needs an explicit host:port")
        return parsed.hostname, parsed.port

    # -- lifecycle (socketserver-compatible) ---------------------------------
    def serve_forever(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def shutdown(self) -> None:
        with contextlib.suppress(RuntimeError):
            self._loop.call_soon_threadsafe(self._loop.stop)

    def server_close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._loop.is_running():
            self.shutdown()
            deadline = time.monotonic() + 5.0
            while self._loop.is_running() and time.monotonic() < deadline:
                time.sleep(0.01)
        self._server.close()
        tasks = asyncio.all_tasks(self._loop)
        for task in tasks:
            task.cancel()
        with contextlib.suppress(RuntimeError):
            if tasks:
                self._loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True)
                )
            self._loop.run_until_complete(self._server.wait_closed())
            self._loop.close()

    # -- relay ---------------------------------------------------------------
    async def _relay(
        self, shard: int, method: str, target: str, body: bytes | None, timeout: float
    ) -> tuple[int, bytes, str]:
        """Forward one request to a replica; returns (status, body, content_type)."""
        host, port = self.replicas[shard]
        obs_metrics.counter(
            "repro_router_requests_total",
            "Requests relayed by the shard router, by shard.",
            {"shard": str(shard)},
        ).inc()
        reader, writer = await asyncio.open_connection(host, port)
        try:
            payload = body or b""
            head = (
                f"{method} {target} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                "Connection: close\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()

            async def _read_reply() -> tuple[int, bytes, str]:
                status_line = await reader.readline()
                parts = status_line.decode("latin-1").split(" ", 2)
                status = int(parts[1])
                content_type = "application/json"
                length = None
                while True:
                    raw = await reader.readline()
                    if raw in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = raw.decode("latin-1").partition(":")
                    name = name.strip().lower()
                    if name == "content-length":
                        length = int(value.strip())
                    elif name == "content-type":
                        content_type = value.strip()
                reply = (
                    await reader.readexactly(length)
                    if length is not None
                    else await reader.read()
                )
                return status, reply, content_type

            return await asyncio.wait_for(_read_reply(), timeout)
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    # -- request handling ----------------------------------------------------
    async def _handle_client(self, reader, writer) -> None:
        try:
            while True:
                request = await read_http_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                try:
                    await self._route(method, target, body, writer)
                except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
                    await self._send_error(
                        writer, EngineError(f"replica unavailable: {exc}"), 502
                    )
                    break
                except asyncio.TimeoutError:
                    await self._send_error(
                        writer, EngineError("replica relay timed out"), 504
                    )
                    break
                except EngineError as exc:
                    await self._send_error(writer, exc, 400)
                if headers.get("connection", "").lower() == "close":
                    break
        except (asyncio.IncompleteReadError, ConnectionError, EngineError):
            pass
        except asyncio.CancelledError:
            raise
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _send_json(self, writer, code: int, payload: dict) -> None:
        await send_http_response(
            writer, code, json.dumps(payload).encode("utf-8"), "application/json"
        )

    async def _send_error(self, writer, exc: BaseException, status: int) -> None:
        with contextlib.suppress(Exception):
            await self._send_json(writer, status, error_envelope(exc, status=status))

    async def _route(self, method: str, target: str, body: bytes, writer) -> None:
        parsed = urlparse(target)
        path = parsed.path.rstrip("/")
        prefix = f"/{self.api_version}"
        query = f"?{parsed.query}" if parsed.query else ""

        if method == "POST" and path == f"{prefix}/batches":
            await self._route_batch(body, writer)
            return
        if method == "GET" and path.startswith(f"{prefix}/jobs/"):
            fingerprint = path[len(f"{prefix}/jobs/"):]
            try:
                shard = shard_index(fingerprint, len(self.replicas))
            except ValueError:
                shard = 0  # let the replica produce the canonical 404
            # Long polls park here against the replica's parked coroutine, so
            # the relay must outlive the longest server-side wait window.
            status, reply, content_type = await self._relay(
                shard, "GET", target, None, self.relay_timeout
            )
            await send_http_response(writer, status, reply, content_type)
            return
        if method == "GET" and path == f"{prefix}/healthz":
            await self._route_healthz(writer)
            return
        if method == "GET" and path == f"{prefix}/capabilities":
            status, reply, content_type = await self._relay(
                0, "GET", target, None, self.relay_timeout
            )
            try:
                payload = json.loads(reply)
                payload["router"] = {
                    "replicas": len(self.replicas),
                    "sharding": "int(fingerprint, 16) % replicas",
                }
                await self._send_json(writer, status, payload)
            except (json.JSONDecodeError, ValueError):
                await send_http_response(writer, status, reply, content_type)
            return
        if method == "GET" and path == f"{prefix}/metrics":
            body_text = obs_metrics.get_registry().render_prometheus()
            await send_http_response(
                writer,
                200,
                body_text.encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
            return
        await self._send_error(
            writer, EngineError(f"unknown router path {path!r}{query}"), 404
        )

    async def _route_batch(self, body: bytes, writer) -> None:
        try:
            payload = json.loads(body or b"null")
        except (ValueError, json.JSONDecodeError) as exc:
            await self._send_error(writer, EngineError(f"invalid JSON body: {exc}"), 400)
            return
        if not isinstance(payload, dict) or not isinstance(payload.get("jobs"), list):
            await self._send_error(
                writer, EngineError("body must be {'jobs': [<job payload>, ...]}"), 400
            )
            return
        submissions = payload["jobs"]
        if not submissions:
            await self._send_error(
                writer, EngineError("batch must contain at least one job"), 400
            )
            return
        # Validate and fingerprint up front (all-or-nothing, like a replica):
        # the router must not scatter half a malformed batch.
        try:
            fingerprints = [
                AnalysisJob.from_json_dict(item).fingerprint() for item in submissions
            ]
        except Exception as exc:
            await self._send_error(writer, exc, 400)
            return
        count = len(self.replicas)
        by_shard: dict[int, list[int]] = {}
        for position, fingerprint in enumerate(fingerprints):
            by_shard.setdefault(shard_index(fingerprint, count), []).append(position)

        async def _submit(shard: int, positions: list[int]):
            sub_batch = json.dumps(
                {"jobs": [submissions[position] for position in positions]}
            ).encode("utf-8")
            return await self._relay(
                shard,
                "POST",
                f"/{self.api_version}/batches",
                sub_batch,
                self.relay_timeout,
            )

        shards = sorted(by_shard)
        replies = await asyncio.gather(
            *(_submit(shard, by_shard[shard]) for shard in shards)
        )
        entries: list[dict | None] = [None] * len(submissions)
        for shard, (status, reply, _content_type) in zip(shards, replies):
            if status >= 300:
                # Relay the replica's envelope verbatim: its validation is
                # authoritative.
                await send_http_response(writer, status, reply, "application/json")
                return
            shard_entries = json.loads(reply)["jobs"]
            for position, entry in zip(by_shard[shard], shard_entries):
                entry["shard"] = shard
                entries[position] = entry
        await self._send_json(
            writer, 202, {"jobs": entries, "batch": {"submitted": len(entries)}}
        )

    async def _route_healthz(self, writer) -> None:
        replies = await asyncio.gather(
            *(
                self._relay(shard, "GET", f"/{self.api_version}/healthz", None, 10.0)
                for shard in range(len(self.replicas))
            ),
            return_exceptions=True,
        )
        replicas = []
        healthy = True
        for shard, reply in enumerate(replies):
            if isinstance(reply, BaseException):
                healthy = False
                replicas.append({"shard": shard, "status": "unreachable"})
                continue
            status, body, _content_type = reply
            try:
                health = json.loads(body)
            except (json.JSONDecodeError, ValueError):
                health = {"status": "error"}
            health["shard"] = shard
            healthy = healthy and status == 200 and health.get("status") == "ok"
            replicas.append(health)
        await self._send_json(
            writer,
            200 if healthy else 503,
            {
                "status": "ok" if healthy else "degraded",
                "router": True,
                "replica_count": len(self.replicas),
                "replicas": replicas,
            },
        )


def build_child_args(args, index: int) -> list[str]:
    """The per-replica ``gleipnir-serve`` argv for parsed supervisor ``args``."""
    argv = ["--workers", str(args.workers)]
    if args.store:
        argv += ["--store", shard_location(args.store, index)]
    if args.outcomes:
        argv += ["--outcomes", shard_location(args.outcomes, index)]
    if args.outcomes_max_entries is not None:
        argv += ["--outcomes-max-entries", str(args.outcomes_max_entries)]
    if args.cache_dir:
        argv += ["--cache-dir", os.path.join(args.cache_dir, f"r{index}")]
    argv += [
        "--batch-window", str(args.batch_window),
        "--max-batch", str(args.max_batch),
        "--max-submit", str(args.max_submit),
        "--batch-window-ms", str(args.batch_window_ms),
        "--batch-window-max-classes", str(args.batch_window_max_classes),
    ]
    return argv


def serve_replicas(args) -> int:
    """The ``gleipnir-serve --replicas N`` entry point: spawn, route, serve."""
    replica_set = ReplicaSet(
        args.replicas, [build_child_args(args, index) for index in range(args.replicas)]
    )
    urls = replica_set.start()
    router = ShardRouter(urls, args.host, args.port)
    host, port = router.server_address[:2]
    from .service import API_VERSION

    print(
        f"gleipnir-serve router listening on http://{host}:{port} "
        f"(api {API_VERSION}, replicas={args.replicas}: {', '.join(urls)})",
        flush=True,
    )
    try:
        router.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        router.server_close()
        replica_set.stop()
    return 0
