"""The process-pool analysis engine.

:class:`AnalysisEngine` turns a batch of :class:`~repro.engine.spec.AnalysisJob`
values into :class:`~repro.engine.spec.JobResult` records:

* **dedupe** — identical jobs (same fingerprint) are executed once and share
  one result, so a serving workload with repeated submissions pays for each
  unique analysis once;
* **whole-outcome cache** — with an :class:`~repro.engine.outcomes.OutcomeStore`
  attached, a fingerprint whose full outcome is already stored skips
  :func:`execute_job` entirely — no MPS walk, no derivation replay, no SDP
  cache consultation — and executed jobs write their result *plus the dual
  certificates behind it* back to the store;
* **resume** — with a :class:`~repro.engine.store.ResultStore` attached,
  fingerprints that already completed successfully are answered from the
  store and only the missing jobs run;
* **sharding** — the pending jobs are fanned out over a
  :class:`concurrent.futures.ProcessPoolExecutor`; jobs travel as canonical
  JSON, so the worker exercises exactly the serialization path remote
  submissions use.  The pool size adapts to the machine: ``workers`` is
  clamped to ``os.cpu_count()`` by default, because oversubscribing a small
  box costs more in process churn than the parallelism returns;
* **shared bound cache** — when ``cache_dir`` is set, every worker points its
  :class:`~repro.sdp.diamond.GateBoundCache` at the same on-disk store
  (``SDPConfig.persistent_cache_path``), so bounds certified by one worker
  warm all the others (and later runs);
* **cross-job batch fusion** — with a batch window enabled
  (``batch_window_ms > 0``), the engine runs a collection-only pre-pass over
  the window's pending jobs, pools their unsolved SDP classes across job
  boundaries, and dispatches each same-configuration group as one giant
  batched kernel run before execution starts.  The fused bounds travel to
  the executing jobs through the shared persistent bound cache (exact
  entries are re-verified on load and answer before the dominance layer), so
  every job replays bit-identical bounds with its dual certificates intact —
  the jobs just stop paying for under-filled per-job kernel launches;
* **budgets and isolation** — each job runs under its own
  :class:`~repro.config.ResourceGuard` wall-clock budget
  (``guard.max_seconds``, enforced with a POSIX interval timer), and any
  exception — budget, solver failure, or worker crash — is captured as a
  ``timeout``/``error`` result for that job alone; the rest of the sweep
  continues.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import os
import signal
import tempfile
import threading
import time
from collections.abc import Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

from ..circuits.program import GateOp, IfMeasure, Program, Seq
from ..config import AnalysisConfig
from ..core.analyzer import GleipnirAnalyzer
from ..core.rules import absorb_continuations
from ..errors import ResourceLimitExceeded
from ..obs import metrics as obs_metrics
from ..obs.trace import collecting, emit_spans, reset_tracing, span, tracing_active
from ..sdp.diamond import gate_error_bounds_batch
from . import costmodel
from .outcomes import OutcomeCertificate, OutcomeStore
from .spec import (
    AnalysisJob,
    ComparisonJob,
    JobResult,
    _semantic_config_dict,
    canonical_json,
    job_from_json,
)
from .store import ResultStore

__all__ = [
    "AnalysisEngine",
    "BatchReport",
    "execute_job",
    "execute_job_record",
    "job_family",
    "job_result_from_analysis",
]


def _gate_signature(program: Program) -> tuple:
    """The sorted set of structural gate keys a program applies.

    Two programs with the same signature under the same noise model request
    bounds for the same (gate, channel) classes, so their SDP cache entries
    overlap — which is exactly what the warm-start ordering shards on.
    """
    keys = set()
    pending = [program]
    while pending:
        node = pending.pop()
        if isinstance(node, GateOp):
            keys.add(node.gate.key())
        elif isinstance(node, Seq):
            pending.extend(node.parts)
        elif isinstance(node, IfMeasure):
            pending.append(node.then_branch)
            pending.append(node.else_branch)
    return tuple(sorted(map(repr, keys)))


def job_family(job: AnalysisJob | ComparisonJob) -> str:
    """Cache-overlap shard key of a job (digest of gates + noise + width).

    Jobs of one family share gate-bound cache entries (same gate set, same
    noise model, same predicate quantisation width), so executing them in the
    same worker window lets one job's certified bounds warm the next job's
    persistent-cache lookups instead of being scattered across the pool.
    Channel-pair comparisons have no program; they shard on the metric and
    the channel identities instead, so identical pairs stay contiguous.
    """
    digest = hashlib.sha256()
    if isinstance(job, ComparisonJob):
        digest.update(job.metric.encode())
        if job.mode == "channels":
            digest.update((job.channel_a.name or "?").encode())
            digest.update((job.channel_b.name or "?").encode())
        else:
            digest.update(repr(_gate_signature(job.program)).encode())
            digest.update(job.noise_model_a.name.encode())
            digest.update(job.noise_model_b.name.encode())
    else:
        digest.update(repr(_gate_signature(job.program)).encode())
        digest.update(job.noise_model.name.encode())
    digest.update(str(job.config.mps_width).encode())
    return digest.hexdigest()[:16]


@contextlib.contextmanager
def _wall_clock_budget(seconds: float | None):
    """Raise :class:`ResourceLimitExceeded` after ``seconds`` of wall clock.

    Uses ``signal.setitimer``, which only works on POSIX main threads; in any
    other context (Windows, service batcher threads) the budget degrades to
    unenforced rather than failing the job.  A displaced ``ITIMER_REAL`` is
    restored on exit (minus the time the job ran), and a shorter one-shot
    outer deadline takes priority over the job's own budget — see the
    comments below.
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    # A caller (an outer budget, or any library using ITIMER_REAL) may have a
    # timer ticking; tearing down with a plain 0.0 would silently cancel it.
    # A *one-shot* outer deadline shorter than our budget additionally keeps
    # priority: its remaining time is armed instead of our budget and the
    # expiry is forwarded to the outer handler, so an outer deadline is never
    # overshot nor misreported as this job's timeout.  Periodic timers (a
    # signal-based profiler's 10ms tick) never clamp the budget — they miss
    # their ticks while the job runs and resume on exit.
    outer_remaining, outer_interval = previous_timer = signal.getitimer(
        signal.ITIMER_REAL
    )
    clamped = outer_interval == 0.0 and 0.0 < outer_remaining < float(seconds)
    forwarded = False

    def _expired(signum, frame):
        nonlocal forwarded
        if clamped and callable(previous_handler):
            forwarded = True
            previous_handler(signum, frame)
            return
        raise ResourceLimitExceeded(
            f"analysis exceeded its wall-clock budget of {seconds:g}s"
        )

    previous_handler = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(
        signal.ITIMER_REAL, outer_remaining if clamped else float(seconds)
    )
    started = time.monotonic()
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous_handler)
        remaining, interval = previous_timer
        # A displaced timer with it_value == 0 was disarmed, and a forwarded
        # one-shot deadline is consumed; re-arming either would wrongly fire
        # the outer handler (again).
        if remaining > 0.0 and not forwarded:
            # Re-arm the displaced timer with whatever it has left; if it
            # expired while our budget ran, fire it as soon as possible.
            elapsed = time.monotonic() - started
            signal.setitimer(
                signal.ITIMER_REAL, max(remaining - elapsed, 1e-6), interval
            )


def _prepared_config(job: AnalysisJob, cache_dir: str | None) -> AnalysisConfig:
    """The execution config: a deep copy with engine-level overrides applied.

    Derivation trees are never collected (results must stay flat and
    picklable), and the shared persistent bound cache is attached when the
    engine has one.  Neither override is part of the job fingerprint.
    """
    config = job.config.replace(collect_derivation=False)
    if cache_dir is not None:
        config.sdp.persistent_cache_path = str(cache_dir)
    return config


def job_result_from_analysis(fingerprint: str, name: str, analysis) -> JobResult:
    """Flatten a successful :class:`~repro.core.analyzer.AnalysisResult`.

    The one place the engine's wire record is built from an analysis — shared
    by :func:`execute_job` and the facade's local derivation path
    (:meth:`repro.api.AnalysisSession.analyze`), so the two can never drift.
    """
    return JobResult(
        fingerprint=fingerprint,
        name=name,
        status="ok",
        error_bound=analysis.error_bound,
        final_delta=analysis.final_delta,
        num_gates=analysis.num_gates,
        num_branches=analysis.num_branches,
        elapsed_seconds=analysis.elapsed_seconds,
        sdp_solves=analysis.sdp_solves,
        sdp_cache_hits=analysis.sdp_cache_hits,
        sdp_dominance_hits=analysis.sdp_dominance_hits,
        scheduled_solves=analysis.scheduled_solves,
        mps_walks=analysis.mps_walks,
        mps_width=analysis.mps_width,
        noise_model=analysis.noise_model,
        tape_steps_reused=getattr(analysis, "tape_steps_reused", 0),
        timings=dict(getattr(analysis, "timings", {}) or {}),
    )


def _harvest_certificates(analyzer: GleipnirAnalyzer) -> list[OutcomeCertificate]:
    """The dual certificates behind a finished job's per-gate bounds.

    Only solver-certified entries qualify: ``noiseless``/``exact-zero``
    bounds have no feasibility problem to re-check, and persistent-cache
    loads without a retained Choi matrix cannot be re-verified standalone.
    """
    certificates = []
    for bound in analyzer.cache.bounds_snapshot():
        if bound.choi is None or bound.certificate is None:
            continue
        if bound.method in ("noiseless", "exact-zero"):
            continue
        certificates.append(OutcomeCertificate.from_bound(bound))
    return certificates


def execute_job_record(
    job: AnalysisJob | ComparisonJob,
    *,
    cache_dir: str | None = None,
    fingerprint: str | None = None,
    collect_certificates: bool = False,
) -> tuple[JobResult, list[OutcomeCertificate]]:
    """Run one job to a :class:`JobResult` plus its dual certificates.

    ``fingerprint`` lets callers that already addressed the job (the engine
    computes it once per batch) skip the full canonical re-serialization a
    fresh :meth:`AnalysisJob.fingerprint` call would pay.  With
    ``collect_certificates=True`` the per-gate dual certificates are
    harvested from the job's bound cache so the engine can store them
    alongside the outcome; failures always return an empty certificate list.

    :class:`~repro.engine.spec.ComparisonJob` batches dispatch to
    :mod:`repro.engine.comparisons` (imported lazily — it builds on this
    module's helpers) and flow through the same dedupe/store/pool machinery.
    """
    if isinstance(job, ComparisonJob):
        from .comparisons import execute_comparison_record

        return execute_comparison_record(
            job,
            cache_dir=cache_dir,
            fingerprint=fingerprint,
            collect_certificates=collect_certificates,
        )
    if fingerprint is None:
        fingerprint = job.fingerprint()
    config = _prepared_config(job, cache_dir)
    start = time.perf_counter()
    try:
        with _wall_clock_budget(config.guard.max_seconds):
            analyzer = GleipnirAnalyzer(job.noise_model, config=config)
            analysis = analyzer.analyze(
                job.program,
                initial_bits=job.initial_bits,
                num_qubits=job.num_qubits,
                program_name=job.name,
            )
    except ResourceLimitExceeded as exc:
        return (
            JobResult(
                fingerprint=fingerprint,
                name=job.name,
                status="timeout",
                elapsed_seconds=time.perf_counter() - start,
                error=str(exc),
            ),
            [],
        )
    except Exception as exc:
        return (
            JobResult(
                fingerprint=fingerprint,
                name=job.name,
                status="error",
                elapsed_seconds=time.perf_counter() - start,
                error=f"{type(exc).__name__}: {exc}",
            ),
            [],
        )
    result = job_result_from_analysis(fingerprint, job.name, analysis)
    certificates = _harvest_certificates(analyzer) if collect_certificates else []
    return result, certificates


def execute_job(
    job: AnalysisJob | ComparisonJob,
    *,
    cache_dir: str | None = None,
    fingerprint: str | None = None,
) -> JobResult:
    """Run one job to a :class:`JobResult`, capturing failures as statuses."""
    return execute_job_record(job, cache_dir=cache_dir, fingerprint=fingerprint)[0]


def _execute_payload(
    payload: str,
    cache_dir: str | None,
    fingerprint: str,
    collect_certificates: bool = False,
    trace_spans: bool = False,
) -> dict:
    """Worker entry point: canonical JSON in, flat result + certificate dicts out.

    The job runs under a scoped metric registry, so the returned ``metrics``
    snapshot carries exactly this job's increments — pool processes are
    reused across jobs, and a cumulative snapshot would double-count when the
    parent merges one per job.  With ``trace_spans`` set (the parent has an
    active trace), the worker collects its own spans and ships them back with
    its ``time.perf_counter()`` origin (``trace_clock``) so the parent can
    re-base them onto its clock.
    """
    job = job_from_json(payload)
    reset_tracing()  # fork children inherit the parent's active collector
    trace_clock = time.perf_counter()
    spans: list = []
    with obs_metrics.scoped() as registry:
        if trace_spans:
            with collecting() as collector:
                result, certificates = execute_job_record(
                    job,
                    cache_dir=cache_dir,
                    fingerprint=fingerprint,
                    collect_certificates=collect_certificates,
                )
            spans = [item.to_json_dict() for item in collector.spans()]
        else:
            result, certificates = execute_job_record(
                job,
                cache_dir=cache_dir,
                fingerprint=fingerprint,
                collect_certificates=collect_certificates,
            )
        snapshot = registry.wire_snapshot()
    return {
        "result": result.to_json_dict(),
        "certificates": [certificate.to_json_dict() for certificate in certificates],
        "metrics": snapshot,
        "spans": spans,
        "trace_clock": trace_clock,
    }


@dataclasses.dataclass
class BatchReport:
    """Outcome of one engine batch.

    ``results`` is aligned with the submitted job list (duplicates share the
    same :class:`JobResult` object); the counters describe how much work the
    engine actually did versus answered from dedupe and the stores.
    """

    results: list[JobResult]
    executed: int
    resumed: int
    deduplicated: int
    elapsed_seconds: float
    outcome_hits: int = 0

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def failures(self) -> list[JobResult]:
        return [result for result in self.results if not result.ok]


class AnalysisEngine:
    """Executes analysis job batches with dedupe, resume, and worker sharding.

    Args:
        workers: requested process-pool size; 1 executes inline (no
            subprocess), which is also the deterministic fallback used by
            tests.  By default the effective size is clamped to
            ``os.cpu_count()`` — extra processes on a smaller box only add
            fork/IPC overhead (``adaptive_workers=False`` opts out and takes
            the requested count literally).
        store: a :class:`ResultStore`, a path to create one at, or None.
            Every executed result is appended to the store; with
            ``resume=True`` completed fingerprints are not re-executed.
        cache_dir: directory of the shared on-disk gate-bound cache handed to
            every worker (None disables sharing).
        outcomes: an :class:`~repro.engine.outcomes.OutcomeStore`, a path to
            create one at, or None.  With a store attached, fingerprints it
            holds skip execution entirely (a warm hit is one dict lookup) and
            every executed success is written back together with its dual
            certificates.
        batch_window_ms: cross-job batch fusion window in milliseconds.  0
            (the default) disables fusion; with a positive window, batches of
            two or more pending jobs run a collection pre-pass that pools
            their unsolved SDP classes and dispatches each same-configuration
            group as one fused batched kernel run before execution.  The
            window bounds the *pre-pass* time: collection stops admitting
            further jobs once the window elapses, and the jobs left out
            simply solve their own classes as before.
        batch_window_max_classes: upper bound on the solve classes one fusion
            window may pool (guards memory on pathological batches).
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        store: ResultStore | str | None = None,
        cache_dir: str | None = None,
        outcomes: OutcomeStore | str | None = None,
        adaptive_workers: bool = True,
        batch_window_ms: float = 0.0,
        batch_window_max_classes: int = 4096,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if batch_window_ms < 0:
            raise ValueError("batch_window_ms must be non-negative")
        if batch_window_max_classes < 1:
            raise ValueError("batch_window_max_classes must be at least 1")
        self.requested_workers = int(workers)
        if adaptive_workers:
            self.workers = max(1, min(self.requested_workers, os.cpu_count() or 1))
        else:
            self.workers = self.requested_workers
        self.store = ResultStore(store) if isinstance(store, (str, os.PathLike)) else store
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            os.makedirs(self.cache_dir, exist_ok=True)
        self.outcomes = (
            OutcomeStore(outcomes)
            if isinstance(outcomes, (str, os.PathLike))
            else outcomes
        )
        self.batch_window_ms = float(batch_window_ms)
        self.batch_window_max_classes = int(batch_window_max_classes)
        self._fusion_tmpdir: tempfile.TemporaryDirectory | None = None
        self._fusion_stats = {
            "windows": 0,
            "fused_jobs": 0,
            "fused_classes": 0,
            "fused_groups": 0,
            "solve_seconds": 0.0,
        }
        # Warm the process-wide solve cost model from the store's recorded
        # per-class timings, so the first batch already packs by measured
        # costs instead of the dim³ prior.
        self._costmodel_warmed = 0
        if self.store is not None:
            try:
                self._costmodel_warmed = costmodel.global_model().warm_from_results(
                    self.store.results().values()
                )
            except Exception:
                self._costmodel_warmed = 0
        self._last_shards: dict | None = None

    def stats(self) -> dict:
        """Execution statistics: configuration plus the last batch's sharding."""
        return {
            "workers": self.workers,
            "requested_workers": self.requested_workers,
            "cache_dir": self.cache_dir,
            "store_results": len(self.store) if self.store is not None else None,
            "outcomes": self.outcomes.stats() if self.outcomes is not None else None,
            "last_batch_shards": dict(self._last_shards) if self._last_shards else None,
            "fusion": {
                "batch_window_ms": self.batch_window_ms,
                "batch_window_max_classes": self.batch_window_max_classes,
                **self._fusion_stats,
            },
            "costmodel": {
                "warmed_results": self._costmodel_warmed,
                "coefficients": costmodel.global_model().coefficients(),
            },
        }

    def _shard_pending(
        self, pending: list[tuple[str, AnalysisJob]]
    ) -> list[tuple[str, AnalysisJob]]:
        """Warm-start ordering: group pending jobs by program family.

        Same-family jobs (overlapping gate-bound cache entries — see
        :func:`job_family`) are made contiguous in submission order, so with a
        shared ``cache_dir`` the bounds certified by one job land in the same
        worker window as the lookups that want them, instead of every worker
        paying its own cold start.  Within a family, jobs keep fingerprint
        order so the schedule is deterministic; results stay aligned with the
        submitted job list regardless of execution order, and the bounds are
        bit-identical either way (the persistent cache answers exact keys
        before the dominance layer).
        """
        families: dict[str, int] = {}
        keyed = []
        for fingerprint, job in pending:
            family = job_family(job)
            families[family] = families.get(family, 0) + 1
            keyed.append((family, fingerprint, job))
        keyed.sort(key=lambda item: (item[0], item[1]))
        self._last_shards = {
            "pending_jobs": len(pending),
            "families": len(families),
            "largest_family": max(families.values(), default=0),
        }
        return [(fingerprint, job) for _family, fingerprint, job in keyed]

    def run(
        self,
        jobs: Sequence[AnalysisJob | ComparisonJob],
        *,
        resume: bool = False,
    ) -> BatchReport:
        """Execute a batch and return results aligned with ``jobs``."""
        start = time.perf_counter()
        fingerprints = [job.fingerprint() for job in jobs]
        unique: dict[str, AnalysisJob | ComparisonJob] = {}
        for fingerprint, job in zip(fingerprints, jobs):
            unique.setdefault(fingerprint, job)

        results: dict[str, JobResult] = {}
        resumed = 0
        outcome_hits = 0
        with contextlib.ExitStack() as stack:
            stack.enter_context(
                span("engine.batch", "engine", jobs=len(jobs), unique=len(unique))
            )
            if self.outcomes is not None:
                # Pin the batch's fingerprints so a concurrent batch's inserts
                # cannot evict an entry between the hit decision and the read.
                stack.enter_context(self.outcomes.pinned(list(unique)))
                with span("engine.outcome_lookup", "engine", unique=len(unique)):
                    for fingerprint in unique:
                        cached = self.outcomes.get(fingerprint)
                        if cached is not None:
                            results[fingerprint] = cached
                            outcome_hits += 1
            if resume and self.store is not None:
                with span("engine.resume", "engine"):
                    for fingerprint in unique:
                        if fingerprint not in results and self.store.completed(
                            fingerprint
                        ):
                            results[fingerprint] = self.store.get(fingerprint)
                            resumed += 1

            pending = self._shard_pending(
                [
                    (fingerprint, job)
                    for fingerprint, job in unique.items()
                    if fingerprint not in results
                ]
            )
            cache_dir = self.cache_dir
            if self.batch_window_ms > 0 and len(pending) >= 2:
                # Fused bounds travel through the shared persistent cache, so
                # fusion needs one even when the engine was not given one.
                cache_dir = self._fusion_cache_dir()
                with span("engine.fuse", "engine", pending=len(pending)):
                    self._fuse_cross_job(pending, cache_dir)
            if pending:
                with span("engine.execute", "engine", pending=len(pending)):
                    if self.workers == 1:
                        executed = self._run_inline(pending, results, cache_dir)
                    else:
                        executed = self._run_pool(pending, results, cache_dir)
            else:
                executed = 0
        deduplicated = len(jobs) - len(unique)
        if deduplicated:
            obs_metrics.counter(
                "repro_engine_deduplicated_total",
                "Submitted jobs answered by another identical job in the batch.",
            ).inc(deduplicated)

        return BatchReport(
            results=[results[fingerprint] for fingerprint in fingerprints],
            executed=executed,
            resumed=resumed,
            deduplicated=deduplicated,
            elapsed_seconds=time.perf_counter() - start,
            outcome_hits=outcome_hits,
        )

    # -- cross-job batch fusion ---------------------------------------------
    def _fusion_cache_dir(self) -> str:
        """The persistent bound-cache directory fused solves publish into.

        The engine's own ``cache_dir`` when configured; otherwise a lazily
        created engine-lifetime temporary directory, so fusion works (and
        stays warm across batches) without the caller managing a cache path.
        """
        if self.cache_dir is not None:
            return self.cache_dir
        if self._fusion_tmpdir is None:
            self._fusion_tmpdir = tempfile.TemporaryDirectory(
                prefix="gleipnir-fusion-"
            )
        return self._fusion_tmpdir.name

    def _fuse_cross_job(
        self, pending: list[tuple[str, AnalysisJob]], cache_dir: str
    ) -> None:
        """Pool the window's unsolved SDP classes across jobs and batch-solve.

        For each admitted job a collection-only scheduler pre-pass
        (:meth:`repro.core.scheduler.BoundScheduler.collect_classes`) lists
        the solve classes its cache cannot answer.  Classes are grouped by
        the semantic SDP configuration (identical solver settings and noise
        convention — which also guarantees identical predicate quantisation),
        deduplicated across jobs by problem content, and every group that two
        or more jobs contributed to is solved as one fused
        :func:`gate_error_bounds_batch` call.  Each owner's bound is inserted
        into that job's cache under the job's own key, which publishes it to
        the shared persistent store — the executing job (inline or in a
        worker process) then answers those classes from re-verified exact
        persistent entries, bit-identical to solving them itself.

        Failures are strictly best-effort: any job whose pre-pass or group
        solve fails is silently left to the normal unfused path.
        """
        deadline = time.perf_counter() + self.batch_window_ms / 1000.0
        groups: dict[str, dict] = {}
        collected = 0
        admitted = 0
        for fingerprint, job in pending:
            if admitted >= 2 and time.perf_counter() >= deadline:
                break
            if collected >= self.batch_window_max_classes:
                break
            if not isinstance(job, AnalysisJob):
                # Comparison jobs have no single-program scheduler pre-pass;
                # their SDP work still warms through the shared cache_dir.
                continue
            try:
                config = _prepared_config(job, cache_dir)
                if not (config.scheduler and config.sdp.cache):
                    continue
                ast = job.program
                num_qubits = job.num_qubits or ast.num_qubits
                if not num_qubits:
                    continue
                bits = (
                    [int(b) for b in job.initial_bits]
                    if job.initial_bits is not None
                    else [0] * num_qubits
                )
                if len(bits) != num_qubits:
                    continue
                from ..core.scheduler import BoundScheduler

                analyzer = GleipnirAnalyzer(job.noise_model, config=config)
                scheduler = BoundScheduler(
                    job.noise_model,
                    analyzer.cache,
                    config,
                    gate_key=analyzer._gate_key,
                )
                classes = scheduler.collect_classes(absorb_continuations(ast), bits)
            except Exception:
                continue
            admitted += 1
            if not classes:
                continue
            classes = classes[: self.batch_window_max_classes - collected]
            collected += len(classes)
            group_key = canonical_json(
                {
                    "sdp": _semantic_config_dict(config)["sdp"],
                    "noise_after_gate": config.noise_after_gate,
                }
            )
            group = groups.setdefault(
                group_key, {"config": config, "caches": {}, "classes": {}}
            )
            group["caches"][fingerprint] = analyzer.cache
            for solve_class in classes:
                # Content identity: the persistent-store problem fingerprint
                # (gate matrix + channel Choi + noise convention) plus the
                # exact quantised predicate.  Jobs sharing it request the
                # same SDP, whatever their gate/noise *names* are.
                content = (
                    solve_class.fingerprint
                    or ("unfingerprinted", fingerprint, repr(solve_class.key)),
                    solve_class.rho_rounded.tobytes(),
                    float(solve_class.delta_effective),
                )
                entry = group["classes"].setdefault(
                    content, {"solve_class": solve_class, "owners": []}
                )
                entry["owners"].append((fingerprint, solve_class))

        fused_jobs: set[str] = set()
        fused_classes = 0
        fused_groups = 0
        solve_seconds = 0.0
        model = costmodel.global_model()
        for group in groups.values():
            if len(group["caches"]) < 2:
                continue  # single-job groups gain nothing from parent solves
            entries = list(group["classes"].values())
            config = group["config"]
            instances = [
                (
                    entry["solve_class"].gate_matrix,
                    entry["solve_class"].noise_channel,
                    entry["solve_class"].rho_rounded,
                    entry["solve_class"].delta_effective,
                )
                for entry in entries
            ]
            timing_events: list = []
            group_start = time.perf_counter()
            try:
                bounds = gate_error_bounds_batch(
                    instances,
                    noise_after_gate=config.noise_after_gate,
                    config=config.sdp,
                    timing_events=timing_events,
                )
            except Exception:
                continue
            solve_seconds += time.perf_counter() - group_start
            error_histogram = obs_metrics.histogram(
                "repro_costmodel_prediction_error_ratio",
                "Relative error |predicted - actual| / actual of the solve "
                "cost model, one sample per solved template group.",
                buckets=costmodel.PREDICTION_ERROR_BUCKETS,
            )
            for event in timing_events:
                predicted = model.predict(event["solve_class"], event["count"])
                event["predicted_seconds"] = predicted
                actual = float(event["seconds"])
                error_histogram.observe(abs(predicted - actual) / max(actual, 1e-9))
            model.observe_events(timing_events)
            for entry, bound in zip(entries, bounds):
                for owner_fingerprint, owner_class in entry["owners"]:
                    group["caches"][owner_fingerprint].insert(
                        owner_class.key, bound, fingerprint=owner_class.fingerprint
                    )
                    fused_jobs.add(owner_fingerprint)
            fused_classes += len(entries)
            fused_groups += 1

        self._fusion_stats["windows"] += 1
        self._fusion_stats["fused_jobs"] += len(fused_jobs)
        self._fusion_stats["fused_classes"] += fused_classes
        self._fusion_stats["fused_groups"] += fused_groups
        self._fusion_stats["solve_seconds"] += solve_seconds
        if fused_jobs:
            obs_metrics.counter(
                "repro_sdp_fused_jobs_total",
                "Jobs whose SDP classes were solved in a cross-job fused batch.",
            ).inc(len(fused_jobs))
        if fused_classes:
            obs_metrics.counter(
                "repro_sdp_fused_classes_total",
                "Unique solve classes dispatched through cross-job fused batches.",
            ).inc(fused_classes)

    # -- execution backends ------------------------------------------------
    def _record(
        self,
        results: dict[str, JobResult],
        fingerprint: str,
        result: JobResult,
        certificates: Sequence = (),
    ) -> None:
        results[fingerprint] = result
        if self.store is not None:
            self.store.put(result)
        if self.outcomes is not None and result.ok:
            self.outcomes.put(result, certificates)
        obs_metrics.counter(
            "repro_engine_jobs_total",
            "Jobs executed by the engine, by final status.",
            {"status": result.status},
        ).inc()
        obs_metrics.histogram(
            "repro_engine_job_seconds",
            "Server-side execution seconds per executed job.",
            {"status": result.status},
        ).observe(result.elapsed_seconds)

    def _run_inline(
        self,
        pending: list[tuple[str, AnalysisJob]],
        results: dict[str, JobResult],
        cache_dir: str | None,
    ) -> int:
        collect = self.outcomes is not None
        for fingerprint, job in pending:
            result, certificates = execute_job_record(
                job,
                cache_dir=cache_dir,
                fingerprint=fingerprint,
                collect_certificates=collect,
            )
            self._record(results, fingerprint, result, certificates)
        return len(pending)

    def _run_pool(
        self,
        pending: list[tuple[str, AnalysisJob]],
        results: dict[str, JobResult],
        cache_dir: str | None,
    ) -> int:
        """Shard pending jobs over a process pool with per-job failure capture.

        Jobs are submitted as canonical JSON and results come back as flat
        dicts, so nothing model-specific needs to pickle.  A worker crash
        (OOM kill, segfault) breaks the pool; the affected jobs are recorded
        as ``error`` results and the sweep still returns.
        """
        collect = self.outcomes is not None
        trace = tracing_active()
        max_workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {}
            dispatched = {}
            for fingerprint, job in pending:
                future = pool.submit(
                    _execute_payload,
                    job.to_json(),
                    cache_dir,
                    fingerprint,
                    collect,
                    trace,
                )
                futures[future] = fingerprint
                dispatched[fingerprint] = time.perf_counter()
            names = {fingerprint: job.name for fingerprint, job in pending}
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in done:
                    fingerprint = futures[future]
                    certificates: list = []
                    try:
                        payload = future.result()
                        result = JobResult.from_json_dict(payload["result"])
                        certificates = payload.get("certificates") or []
                        self._merge_worker_observability(
                            payload, dispatched[fingerprint]
                        )
                        # Worker solves trained the *worker's* cost model;
                        # replaying the shipped timings here keeps the parent
                        # model (fusion-stage predictions, future packing)
                        # learning too.  Inline execution observes in-process
                        # already, so only the pool path ingests.
                        costmodel.global_model().ingest_timings(result.timings)
                    except Exception as exc:
                        result = JobResult(
                            fingerprint=fingerprint,
                            name=names[fingerprint],
                            status="error",
                            error=f"worker failed: {type(exc).__name__}: {exc}",
                        )
                    self._record(results, fingerprint, result, certificates)
        return len(pending)

    @staticmethod
    def _merge_worker_observability(payload: dict, dispatch_clock: float) -> None:
        """Fold a worker's metric snapshot and spans into this process.

        Worker spans carry the worker's own ``perf_counter`` origin; shifting
        them by (dispatch clock − worker origin) re-bases them onto the
        parent's clock, aligned to within the fork/IPC latency, so the
        cross-process rows of a Chrome trace line up.
        """
        snapshot = payload.get("metrics")
        if snapshot:
            obs_metrics.get_registry().merge(snapshot)
        spans = payload.get("spans")
        if spans and tracing_active():
            from ..obs.trace import Span

            offset = dispatch_clock - float(payload.get("trace_clock", 0.0))
            emit_spans(
                [Span.from_json_dict(item).shift(offset) for item in spans]
            )
