"""A content-addressed store of whole analysis outcomes, re-verifiable on demand.

The warm path of the serving workload: a repeat submission should cost one
store lookup, not an MPS walk plus a derivation replay.  The
:class:`OutcomeStore` maps the PR-2 job fingerprint to the full serialized
:class:`~repro.engine.spec.JobResult` **plus the dual certificates** that
established the job's per-gate bounds, so a warm answer is not a blind
memo: ``get(fingerprint, verify=True)`` re-checks every stored certificate's
feasibility against its stored Choi matrix (the cheap half of the original
work — never the SDP solve) and refuses to answer from a record whose
certificates no longer verify.

Storage is delegated to a pluggable
:class:`~repro.engine.backends.base.OutcomeBackend` selected by URL on the
``path`` argument (bare paths and ``jsonl://`` keep the historical JSONL
line log with its healing discipline; ``sqlite:///`` opens a WAL-journaled
database that never loads fully into memory; ``memory://`` is ephemeral —
see :mod:`repro.engine.backends`).  The facade owns policy on top: the
size-capped LRU (``max_entries``), in-flight **pinning** (entries pinned by
a running engine batch are never evicted), certificate verification, and the
hit/miss/eviction accounting.  Certificates ride as base64-encoded
``complex128`` arrays decoded lazily, so the hot ``get()`` path never
touches base64.
"""

from __future__ import annotations

import base64
import contextlib
import dataclasses
import threading
from collections.abc import Iterable, Iterator

import numpy as np

from ..errors import EngineError
from ..obs import metrics as obs_metrics
from ..sdp.certificates import DualCertificate, verify_certificate
from .backends import OutcomeBackend, count_backend_op, open_outcome_backend
from .backends.jsonl import OUTCOME_SCHEMA_VERSION
from .spec import JobResult

__all__ = ["OutcomeStore", "OutcomeCertificate", "OUTCOME_SCHEMA_VERSION"]

#: Tolerance of the on-demand certificate re-check.  Matches the derivation
#: checker's floor (max(tolerance, 1e-6) in Derivation._check_gate): the
#: stored certificate was verified at solve time, so the re-check only needs
#: to catch corruption/tampering, not re-litigate solver precision.
VERIFY_TOLERANCE = 1e-6


def _encode_array(array: np.ndarray) -> dict:
    """A complex matrix as a JSON-safe {shape, data} payload."""
    contiguous = np.ascontiguousarray(np.asarray(array, dtype=np.complex128))
    return {
        "shape": list(contiguous.shape),
        "data": base64.b64encode(contiguous.tobytes()).decode("ascii"),
    }


def _decode_array(payload: dict) -> np.ndarray:
    """Inverse of :func:`_encode_array`, with length validation."""
    if not isinstance(payload, dict):
        raise EngineError(f"array payload must be a dict, got {type(payload).__name__}")
    try:
        shape = tuple(int(value) for value in payload["shape"])
        raw = base64.b64decode(payload["data"], validate=True)
    except (KeyError, TypeError, ValueError) as exc:
        raise EngineError(f"malformed array payload: {exc}") from exc
    expected = int(np.prod(shape)) * np.dtype(np.complex128).itemsize
    if len(raw) != expected:
        raise EngineError(
            f"array payload carries {len(raw)} bytes for shape {shape} "
            f"(expected {expected})"
        )
    return np.frombuffer(raw, dtype=np.complex128).reshape(shape).copy()


@dataclasses.dataclass(frozen=True)
class OutcomeCertificate:
    """One stored dual certificate plus the Choi matrix it certifies.

    The serializable twin of :class:`~repro.sdp.certificates.DualCertificate`:
    carrying the Choi matrix alongside makes the record self-contained, so
    :meth:`verify` needs nothing but the stored bytes — feasibility
    (``z ⪰ 0``, ``z ⪰ J``, ``y ≥ 0``) and the value check are recomputed
    from scratch, the SDP solve never is.
    """

    value: float
    z: np.ndarray
    y: float
    constraint_operator: np.ndarray | None
    constraint_bound: float
    choi: np.ndarray

    @classmethod
    def from_bound(cls, bound) -> "OutcomeCertificate":
        """Snapshot a :class:`~repro.sdp.diamond.DiamondNormBound`'s certificate."""
        certificate = bound.certificate
        return cls(
            value=float(certificate.value),
            z=np.asarray(certificate.z, dtype=np.complex128),
            y=float(certificate.y),
            constraint_operator=(
                np.asarray(certificate.constraint_operator, dtype=np.complex128)
                if certificate.constraint_operator is not None
                else None
            ),
            constraint_bound=float(certificate.constraint_bound),
            choi=np.asarray(bound.choi, dtype=np.complex128),
        )

    def verify(self, *, tolerance: float = VERIFY_TOLERANCE) -> bool:
        """Independently re-check feasibility and value against the stored Choi."""
        certificate = DualCertificate(
            value=self.value,
            z=self.z,
            y=self.y,
            constraint_operator=self.constraint_operator,
            constraint_bound=self.constraint_bound,
        )
        return verify_certificate(certificate, self.choi, tolerance=tolerance)

    def to_json_dict(self) -> dict:
        return {
            "value": self.value,
            "y": self.y,
            "constraint_bound": self.constraint_bound,
            "z": _encode_array(self.z),
            "constraint_operator": (
                _encode_array(self.constraint_operator)
                if self.constraint_operator is not None
                else None
            ),
            "choi": _encode_array(self.choi),
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "OutcomeCertificate":
        if not isinstance(payload, dict):
            raise EngineError(
                f"certificate payload must be a dict, got {type(payload).__name__}"
            )
        try:
            operator = payload.get("constraint_operator")
            return cls(
                value=float(payload["value"]),
                z=_decode_array(payload["z"]),
                y=float(payload["y"]),
                constraint_operator=(
                    _decode_array(operator) if operator is not None else None
                ),
                constraint_bound=float(payload["constraint_bound"]),
                choi=_decode_array(payload["choi"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise EngineError(f"malformed certificate payload: {exc}") from exc


class OutcomeStore:
    """LRU-capped map from job fingerprint to its whole outcome.

    Args:
        path: a storage URL (``jsonl://``, ``sqlite:///``, ``memory://``), a
            bare JSONL file path, or an already-open
            :class:`~repro.engine.backends.base.OutcomeBackend`.
        max_entries: live-entry cap; the least-recently-used unpinned entries
            are evicted beyond it (None = unbounded).
    """

    def __init__(self, path: str | OutcomeBackend, *, max_entries: int | None = None):
        if max_entries is not None and int(max_entries) < 1:
            raise ValueError("max_entries must be at least 1 (or None)")
        self.max_entries = int(max_entries) if max_entries is not None else None
        if isinstance(path, OutcomeBackend):
            self._backend = path
        else:
            self._backend = open_outcome_backend(path)
        self.path = self._backend.location
        self._lock = threading.Lock()
        self._pins: dict[str, int] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._verification_failures = 0
        with self._lock:
            self._evict_over_cap()

    @property
    def backend(self) -> OutcomeBackend:
        """The storage engine behind this facade."""
        return self._backend

    def close(self) -> None:
        """Release backend resources (idempotent)."""
        with self._lock:
            self._backend.close()

    # -- queries -------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return self._backend.count()

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return self._backend.contains(fingerprint)

    @property
    def skipped_lines(self) -> int:
        """Records the loader could not parse (diagnostics only)."""
        return self._backend.skipped_lines

    def get(self, fingerprint: str, *, verify: bool = False) -> JobResult | None:
        """The stored outcome for ``fingerprint``, or None.

        With ``verify=True`` every stored certificate is re-checked against
        its stored Choi matrix first; a record that fails re-verification is
        dropped from the store (counted in ``verification_failures``) and the
        lookup reports a miss — the caller recomputes, it never gets a
        tampered answer.
        """
        count_backend_op(self._backend.name, "outcome_get")
        with self._lock:
            if not verify:
                entry = self._backend.get_entry(fingerprint, touch=True)
                if entry is None:
                    self._misses += 1
                    self._count("miss")
                    return None
                self._hits += 1
                self._count("hit")
                return entry["result"]
            entry = self._backend.get_entry(fingerprint, touch=False)
            if entry is None:
                self._misses += 1
                self._count("miss")
                return None
            raw_certificates = list(entry["certificates"])
        # Decode + verify outside the lock: O(certificates) eigenvalue work.
        try:
            verified = all(
                OutcomeCertificate.from_json_dict(raw).verify()
                for raw in raw_certificates
            )
        except EngineError:
            verified = False
        with self._lock:
            if not verified:
                self._backend.delete(fingerprint)
                self._verification_failures += 1
                self._misses += 1
                self._count("verification_failure")
                return None
            current = self._backend.get_entry(fingerprint, touch=True)
            if current is None:
                self._misses += 1
                self._count("miss")
                return None
            self._hits += 1
            self._count("verified_hit")
            return current["result"]

    @staticmethod
    def _count(outcome: str) -> None:
        """One outcome-store event into the metric registry."""
        obs_metrics.counter(
            "repro_outcome_store_lookups_total",
            "Whole-outcome store lookups by outcome.",
            {"outcome": outcome},
        ).inc()

    def certificates(self, fingerprint: str) -> list[OutcomeCertificate]:
        """The decoded dual certificates stored with an outcome."""
        with self._lock:
            entry = self._backend.get_entry(fingerprint, touch=False)
            raw = list(entry["certificates"]) if entry is not None else []
        return [OutcomeCertificate.from_json_dict(payload) for payload in raw]

    def stats(self) -> dict:
        with self._lock:
            return {
                "path": self.path,
                "backend": self._backend.name,
                "entries": self._backend.count(),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "verification_failures": self._verification_failures,
                "skipped_lines": self._backend.skipped_lines,
            }

    # -- pinning -------------------------------------------------------------
    @contextlib.contextmanager
    def pinned(self, fingerprints: Iterable[str]) -> Iterator[None]:
        """Protect ``fingerprints`` from eviction while a batch is in flight.

        The engine pins every unique fingerprint of a running batch, so a
        concurrent batch's inserts can never evict an entry between the
        moment one batch decided it was a hit and the moment it reads it.
        """
        pins = list(fingerprints)
        with self._lock:
            for fingerprint in pins:
                self._pins[fingerprint] = self._pins.get(fingerprint, 0) + 1
        try:
            yield
        finally:
            with self._lock:
                for fingerprint in pins:
                    remaining = self._pins.get(fingerprint, 0) - 1
                    if remaining > 0:
                        self._pins[fingerprint] = remaining
                    else:
                        self._pins.pop(fingerprint, None)
                # Deferred evictions happen now that the pins are gone.
                self._evict_over_cap()

    # -- mutation ------------------------------------------------------------
    def put(self, result: JobResult, certificates: Iterable = ()) -> None:
        """Record one successful outcome with its dual certificates.

        Failed results are not stored (a timeout under one budget must not
        answer for a healthy re-run); certificates may be
        :class:`OutcomeCertificate` values or their wire dicts (as returned
        by pool workers).
        """
        if not result.ok:
            return
        payloads = [
            cert.to_json_dict() if isinstance(cert, OutcomeCertificate) else dict(cert)
            for cert in certificates
        ]
        count_backend_op(self._backend.name, "outcome_put")
        with self._lock:
            self._backend.put_entry(result.fingerprint, result, payloads)
            self._evict_over_cap()
            self._backend.compact()

    def _evict_over_cap(self) -> None:
        """Drop LRU unpinned entries beyond ``max_entries``.  Callers hold the lock.

        Pinned fingerprints (in-flight batches) are skipped, so the store may
        transiently exceed the cap; the overshoot is reclaimed when the pins
        are released.
        """
        if self.max_entries is None:
            return
        evicted = self._backend.evict_lru(self.max_entries, frozenset(self._pins))
        if evicted:
            self._evictions += evicted
            obs_metrics.counter(
                "repro_outcome_store_evictions_total",
                "Outcome-store entries evicted by the LRU cap.",
            ).inc(evicted)
