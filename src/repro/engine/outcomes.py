"""A content-addressed store of whole analysis outcomes, re-verifiable on demand.

The warm path of the serving workload: a repeat submission should cost one
store lookup, not an MPS walk plus a derivation replay.  The
:class:`OutcomeStore` maps the PR-2 job fingerprint to the full serialized
:class:`~repro.engine.spec.JobResult` **plus the dual certificates** that
established the job's per-gate bounds, so a warm answer is not a blind
memo: ``get(fingerprint, verify=True)`` re-checks every stored certificate's
feasibility against its stored Choi matrix (the cheap half of the original
work — never the SDP solve) and refuses to answer from a record whose
certificates no longer verify.

On-disk format: JSONL with the same healing discipline as
:class:`~repro.engine.store.ResultStore` — one record per line, appends are
single ``write`` calls, a kill leaves at worst one truncated trailing line
which the loader skips (and the next append heals with a leading newline),
later lines win.  Certificates ride along as base64-encoded ``complex128``
arrays; they are decoded lazily, so the hot ``get()`` path never touches
base64.  The in-memory map is size-capped LRU (``max_entries``); entries
**pinned** by an in-flight engine batch are never evicted, and the log is
compacted (atomic rewrite) once appended lines outnumber live entries 2:1.
"""

from __future__ import annotations

import base64
import contextlib
import dataclasses
import json
import os
import threading
from collections.abc import Iterable, Iterator

import numpy as np

from ..errors import EngineError
from ..obs import metrics as obs_metrics
from ..sdp.certificates import DualCertificate, verify_certificate
from .spec import JobResult, canonical_json

__all__ = ["OutcomeStore", "OutcomeCertificate"]

#: Schema version of one outcome record; bump on incompatible format changes.
OUTCOME_SCHEMA_VERSION = 1

#: Tolerance of the on-demand certificate re-check.  Matches the derivation
#: checker's floor (max(tolerance, 1e-6) in Derivation._check_gate): the
#: stored certificate was verified at solve time, so the re-check only needs
#: to catch corruption/tampering, not re-litigate solver precision.
VERIFY_TOLERANCE = 1e-6


def _encode_array(array: np.ndarray) -> dict:
    """A complex matrix as a JSON-safe {shape, data} payload."""
    contiguous = np.ascontiguousarray(np.asarray(array, dtype=np.complex128))
    return {
        "shape": list(contiguous.shape),
        "data": base64.b64encode(contiguous.tobytes()).decode("ascii"),
    }


def _decode_array(payload: dict) -> np.ndarray:
    """Inverse of :func:`_encode_array`, with length validation."""
    if not isinstance(payload, dict):
        raise EngineError(f"array payload must be a dict, got {type(payload).__name__}")
    try:
        shape = tuple(int(value) for value in payload["shape"])
        raw = base64.b64decode(payload["data"], validate=True)
    except (KeyError, TypeError, ValueError) as exc:
        raise EngineError(f"malformed array payload: {exc}") from exc
    expected = int(np.prod(shape)) * np.dtype(np.complex128).itemsize
    if len(raw) != expected:
        raise EngineError(
            f"array payload carries {len(raw)} bytes for shape {shape} "
            f"(expected {expected})"
        )
    return np.frombuffer(raw, dtype=np.complex128).reshape(shape).copy()


@dataclasses.dataclass(frozen=True)
class OutcomeCertificate:
    """One stored dual certificate plus the Choi matrix it certifies.

    The serializable twin of :class:`~repro.sdp.certificates.DualCertificate`:
    carrying the Choi matrix alongside makes the record self-contained, so
    :meth:`verify` needs nothing but the stored bytes — feasibility
    (``z ⪰ 0``, ``z ⪰ J``, ``y ≥ 0``) and the value check are recomputed
    from scratch, the SDP solve never is.
    """

    value: float
    z: np.ndarray
    y: float
    constraint_operator: np.ndarray | None
    constraint_bound: float
    choi: np.ndarray

    @classmethod
    def from_bound(cls, bound) -> "OutcomeCertificate":
        """Snapshot a :class:`~repro.sdp.diamond.DiamondNormBound`'s certificate."""
        certificate = bound.certificate
        return cls(
            value=float(certificate.value),
            z=np.asarray(certificate.z, dtype=np.complex128),
            y=float(certificate.y),
            constraint_operator=(
                np.asarray(certificate.constraint_operator, dtype=np.complex128)
                if certificate.constraint_operator is not None
                else None
            ),
            constraint_bound=float(certificate.constraint_bound),
            choi=np.asarray(bound.choi, dtype=np.complex128),
        )

    def verify(self, *, tolerance: float = VERIFY_TOLERANCE) -> bool:
        """Independently re-check feasibility and value against the stored Choi."""
        certificate = DualCertificate(
            value=self.value,
            z=self.z,
            y=self.y,
            constraint_operator=self.constraint_operator,
            constraint_bound=self.constraint_bound,
        )
        return verify_certificate(certificate, self.choi, tolerance=tolerance)

    def to_json_dict(self) -> dict:
        return {
            "value": self.value,
            "y": self.y,
            "constraint_bound": self.constraint_bound,
            "z": _encode_array(self.z),
            "constraint_operator": (
                _encode_array(self.constraint_operator)
                if self.constraint_operator is not None
                else None
            ),
            "choi": _encode_array(self.choi),
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "OutcomeCertificate":
        if not isinstance(payload, dict):
            raise EngineError(
                f"certificate payload must be a dict, got {type(payload).__name__}"
            )
        try:
            operator = payload.get("constraint_operator")
            return cls(
                value=float(payload["value"]),
                z=_decode_array(payload["z"]),
                y=float(payload["y"]),
                constraint_operator=(
                    _decode_array(operator) if operator is not None else None
                ),
                constraint_bound=float(payload["constraint_bound"]),
                choi=_decode_array(payload["choi"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise EngineError(f"malformed certificate payload: {exc}") from exc


class OutcomeStore:
    """JSONL-backed, LRU-capped map from job fingerprint to its whole outcome.

    Args:
        path: the JSONL file (created on first put; parent directories too).
        max_entries: in-memory/live-entry cap; the least-recently-used
            unpinned entries are evicted beyond it (None = unbounded).
    """

    def __init__(self, path: str, *, max_entries: int | None = None):
        self.path = str(path)
        if max_entries is not None and int(max_entries) < 1:
            raise ValueError("max_entries must be at least 1 (or None)")
        self.max_entries = int(max_entries) if max_entries is not None else None
        self._lock = threading.Lock()
        # fingerprint -> {"result": JobResult, "certificates": [raw dict, ...]}
        # Insertion order doubles as recency order (hits re-insert at the end).
        self._entries: dict[str, dict] = {}
        self._pins: dict[str, int] = {}
        self._skipped_lines = 0
        self._file_lines = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._verification_failures = 0
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._load()

    # -- load / heal ---------------------------------------------------------
    def _load(self) -> None:
        self._needs_newline = False
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            content = handle.read()
        # A kill can leave the file without a trailing newline; the next
        # append must not concatenate onto the truncated record.
        self._needs_newline = bool(content) and not content.endswith("\n")
        for line in content.splitlines():
            line = line.strip()
            if not line:
                continue
            self._file_lines += 1
            try:
                record = json.loads(line)
                entry = self._entry_from_record(record)
            except (json.JSONDecodeError, EngineError):
                # Truncated trailing line after a kill, or foreign junk:
                # skip rather than fail the whole store.
                self._skipped_lines += 1
                continue
            fingerprint = entry["result"].fingerprint
            self._entries.pop(fingerprint, None)  # later lines win, LRU-fresh
            self._entries[fingerprint] = entry
        self._evict_over_cap()

    @staticmethod
    def _entry_from_record(record: dict) -> dict:
        if not isinstance(record, dict):
            raise EngineError("outcome record must be a dict")
        if record.get("kind") != "analysis_outcome":
            raise EngineError(f"not an outcome record: kind={record.get('kind')!r}")
        if record.get("version") != OUTCOME_SCHEMA_VERSION:
            raise EngineError(f"unsupported outcome schema {record.get('version')!r}")
        result = JobResult.from_json_dict(record.get("result") or {})
        if not result.ok or not result.fingerprint:
            raise EngineError("outcome records must carry a successful result")
        certificates = record.get("certificates") or []
        if not isinstance(certificates, list):
            raise EngineError("certificates must be a list")
        return {"result": result, "certificates": certificates}

    # -- queries -------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    @property
    def skipped_lines(self) -> int:
        """Lines the loader could not parse (diagnostics only)."""
        return self._skipped_lines

    def get(self, fingerprint: str, *, verify: bool = False) -> JobResult | None:
        """The stored outcome for ``fingerprint``, or None.

        With ``verify=True`` every stored certificate is re-checked against
        its stored Choi matrix first; a record that fails re-verification is
        dropped from the store (counted in ``verification_failures``) and the
        lookup reports a miss — the caller recomputes, it never gets a
        tampered answer.
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self._misses += 1
                self._count("miss")
                return None
            if not verify:
                self._touch(fingerprint, entry)
                self._hits += 1
                self._count("hit")
                return entry["result"]
            raw_certificates = list(entry["certificates"])
        # Decode + verify outside the lock: O(certificates) eigenvalue work.
        try:
            verified = all(
                OutcomeCertificate.from_json_dict(raw).verify()
                for raw in raw_certificates
            )
        except EngineError:
            verified = False
        with self._lock:
            current = self._entries.get(fingerprint)
            if current is None:
                self._misses += 1
                self._count("miss")
                return None
            if not verified:
                del self._entries[fingerprint]
                self._verification_failures += 1
                self._misses += 1
                self._count("verification_failure")
                return None
            self._touch(fingerprint, current)
            self._hits += 1
            self._count("verified_hit")
            return current["result"]

    @staticmethod
    def _count(outcome: str) -> None:
        """One outcome-store event into the metric registry."""
        obs_metrics.counter(
            "repro_outcome_store_lookups_total",
            "Whole-outcome store lookups by outcome.",
            {"outcome": outcome},
        ).inc()

    def certificates(self, fingerprint: str) -> list[OutcomeCertificate]:
        """The decoded dual certificates stored with an outcome."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            raw = list(entry["certificates"]) if entry is not None else []
        return [OutcomeCertificate.from_json_dict(payload) for payload in raw]

    def stats(self) -> dict:
        with self._lock:
            return {
                "path": self.path,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "verification_failures": self._verification_failures,
                "skipped_lines": self._skipped_lines,
            }

    # -- pinning -------------------------------------------------------------
    @contextlib.contextmanager
    def pinned(self, fingerprints: Iterable[str]) -> Iterator[None]:
        """Protect ``fingerprints`` from eviction while a batch is in flight.

        The engine pins every unique fingerprint of a running batch, so a
        concurrent batch's inserts can never evict an entry between the
        moment one batch decided it was a hit and the moment it reads it.
        """
        pins = list(fingerprints)
        with self._lock:
            for fingerprint in pins:
                self._pins[fingerprint] = self._pins.get(fingerprint, 0) + 1
        try:
            yield
        finally:
            with self._lock:
                for fingerprint in pins:
                    remaining = self._pins.get(fingerprint, 0) - 1
                    if remaining > 0:
                        self._pins[fingerprint] = remaining
                    else:
                        self._pins.pop(fingerprint, None)
                # Deferred evictions happen now that the pins are gone.
                self._evict_over_cap()

    # -- mutation ------------------------------------------------------------
    def put(self, result: JobResult, certificates: Iterable = ()) -> None:
        """Record one successful outcome with its dual certificates.

        Failed results are not stored (a timeout under one budget must not
        answer for a healthy re-run); certificates may be
        :class:`OutcomeCertificate` values or their wire dicts (as returned
        by pool workers).
        """
        if not result.ok:
            return
        payloads = [
            cert.to_json_dict() if isinstance(cert, OutcomeCertificate) else dict(cert)
            for cert in certificates
        ]
        record = {
            "version": OUTCOME_SCHEMA_VERSION,
            "kind": "analysis_outcome",
            "result": result.to_json_dict(),
            "certificates": payloads,
        }
        line = canonical_json(record)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                payload = line + "\n"
                if self._needs_newline:
                    payload = "\n" + payload
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
                self._needs_newline = False
            self._file_lines += 1
            self._entries.pop(result.fingerprint, None)
            self._entries[result.fingerprint] = {
                "result": result,
                "certificates": payloads,
            }
            self._evict_over_cap()
            self._maybe_compact()

    def _touch(self, fingerprint: str, entry: dict) -> None:
        """Refresh recency on a hit.  Callers hold ``self._lock``."""
        if self.max_entries is None:
            return
        self._entries.pop(fingerprint, None)
        self._entries[fingerprint] = entry

    def _evict_over_cap(self) -> None:
        """Drop LRU unpinned entries beyond ``max_entries``.  Callers hold the lock.

        Pinned fingerprints (in-flight batches) are skipped, so the store may
        transiently exceed the cap; the overshoot is reclaimed when the pins
        are released.
        """
        if self.max_entries is None or len(self._entries) <= self.max_entries:
            return
        for fingerprint in list(self._entries):
            if len(self._entries) <= self.max_entries:
                break
            if fingerprint in self._pins:
                continue
            del self._entries[fingerprint]
            self._evictions += 1
            obs_metrics.counter(
                "repro_outcome_store_evictions_total",
                "Outcome-store entries evicted by the LRU cap.",
            ).inc()

    def _maybe_compact(self) -> None:
        """Rewrite the log when dead lines outnumber live entries.

        Callers hold ``self._lock``.  Atomic: write a temp file in the same
        directory, fsync, then ``os.replace`` — a kill mid-compaction leaves
        either the old log or the new one, never a mix.
        """
        live = len(self._entries)
        if self._file_lines <= max(2 * live, live + 64):
            return
        tmp_path = self.path + ".compact"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for entry in self._entries.values():
                record = {
                    "version": OUTCOME_SCHEMA_VERSION,
                    "kind": "analysis_outcome",
                    "result": entry["result"].to_json_dict(),
                    "certificates": entry["certificates"],
                }
                handle.write(canonical_json(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        self._file_lines = live
        self._needs_newline = False
