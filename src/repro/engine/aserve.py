"""The asyncio serving surface: one event loop, thousands of parked waiters.

The threaded ``BaseHTTPRequestHandler`` front end spent one OS thread per
parked long poll, which capped a replica at a few hundred concurrent
``?wait=`` requests.  :class:`AsyncAnalysisServer` replaces it with a single
``asyncio.start_server`` loop (stdlib only — no new dependencies): a parked
waiter is a coroutine awaiting a future, so holding 500+ of them costs
kilobytes, not megabytes of stack.

The engine side stays threaded — batches still run under the service's
batcher thread and ``threading.Condition`` — so the bridge is explicit:
the server registers one result listener with
:meth:`~repro.engine.service.AnalysisService.add_result_listener`, and every
terminal transition crosses into the loop via
``loop.call_soon_threadsafe``, which resolves the parked futures for the
finished fingerprints.  No polling on either side.

Surface compatibility: the class exposes ``server_address``,
``serve_forever()``, ``shutdown()`` and ``server_close()`` with the
semantics of ``socketserver`` — ``serve_forever`` runs the loop in the
calling thread, ``shutdown`` stops it from any thread, ``server_close``
releases the socket — so every existing fixture and script drives it
unchanged.

Beyond the ``/v1`` JSON routes (same handlers, same envelopes) the async
surface adds ``GET /v1/stream``: an RFC 6455 WebSocket speaking
newline-free JSON text frames —

* client → server ``{"op": "subscribe", "fingerprints": [...]}`` and
  ``{"op": "submit", "jobs": [<job payload>, ...]}`` (submit auto-subscribes
  to every submitted fingerprint);
* server → client ``{"type": "submitted", "jobs": [...]}``,
  ``{"type": "result", "job": <status entry>}`` pushed as each job finishes
  (at most once per fingerprint), ``{"type": "stopped"}`` when the service
  shuts down, and ``{"type": "error", "error": <envelope>}`` for bad ops.

The retired unversioned endpoints (``POST /jobs``, ``GET /jobs/<fp>``,
``/healthz``) answer **410 Gone** with a structured envelope naming the
``/v1`` successor.
"""

from __future__ import annotations

import asyncio
import base64
import contextlib
import hashlib
import json
import math
import threading
import time
from urllib.parse import parse_qs, urlparse

from ..errors import (
    BatchLimitExceeded,
    EngineError,
    JobNotFoundError,
    ReproError,
    error_envelope,
)
from ..obs import metrics as obs_metrics

__all__ = ["AsyncAnalysisServer", "read_http_request", "send_http_response"]

#: Reason phrases for the status codes this surface emits.
_REASONS = {
    101: "Switching Protocols",
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    410: "Gone",
    413: "Payload Too Large",
    500: "Internal Server Error",
}

#: Largest request body accepted (a 1024-job batch is well under this).
_MAX_BODY_BYTES = 64 * 1024 * 1024

#: RFC 6455 magic GUID for the Sec-WebSocket-Accept digest.
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

_WS_TEXT = 0x1
_WS_CLOSE = 0x8
_WS_PING = 0x9
_WS_PONG = 0xA


def _parked_gauge():
    return obs_metrics.gauge(
        "repro_async_parked_waiters",
        "Coroutines parked on the asyncio surface awaiting a result "
        "(long polls + WebSocket subscriptions).",
    )


def _route_label(path: str, api_version: str) -> str:
    """Low-cardinality endpoint label for the latency histograms."""
    prefix = f"/{api_version}"
    if path.startswith(prefix):
        sub = path[len(prefix):]
        if sub.startswith("/jobs"):
            return f"{prefix}/jobs/{{fingerprint}}"
        return f"{prefix}{sub}" if sub else prefix
    if path.startswith("/jobs"):
        return "/jobs"
    if path == "/healthz":
        return "/healthz"
    return "other"


async def read_http_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict, bytes] | None:
    """One HTTP/1.1 request off a stream: (method, target, headers, body).

    Returns None at EOF (client closed between requests); header names are
    lower-cased.  Shared by the serving surface and the replica router.
    """
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) < 2:
        raise EngineError(f"malformed request line {line!r}")
    method, target = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
        if len(headers) > 256:
            raise EngineError("too many request headers")
    length = int(headers.get("content-length", 0) or 0)
    if length > _MAX_BODY_BYTES:
        raise EngineError(f"request body of {length} bytes exceeds the limit")
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


async def send_http_response(
    writer: asyncio.StreamWriter,
    code: int,
    body: bytes,
    content_type: str,
    *,
    keep_alive: bool = True,
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> None:
    """One HTTP/1.1 response with an explicit Content-Length."""
    lines = [
        f"HTTP/1.1 {code} {_REASONS.get(code, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    writer.write(head + body)
    await writer.drain()


def _ws_accept_key(key: str) -> str:
    digest = hashlib.sha1((key + _WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def _ws_frame(opcode: int, payload: bytes) -> bytes:
    """One unmasked (server-to-client) frame with FIN set."""
    header = bytearray([0x80 | opcode])
    length = len(payload)
    if length < 126:
        header.append(length)
    elif length < 1 << 16:
        header.append(126)
        header += length.to_bytes(2, "big")
    else:
        header.append(127)
        header += length.to_bytes(8, "big")
    return bytes(header) + payload


async def _ws_read_frame(reader: asyncio.StreamReader) -> tuple[int, bytes]:
    """One client frame, unmasked; raises IncompleteReadError at EOF."""
    first = await reader.readexactly(2)
    fin = bool(first[0] & 0x80)
    opcode = first[0] & 0x0F
    masked = bool(first[1] & 0x80)
    length = first[1] & 0x7F
    if length == 126:
        length = int.from_bytes(await reader.readexactly(2), "big")
    elif length == 127:
        length = int.from_bytes(await reader.readexactly(8), "big")
    if length > _MAX_BODY_BYTES:
        raise EngineError(f"WebSocket frame of {length} bytes exceeds the limit")
    if not fin:
        # Control of the protocol stays simple: the ops this surface speaks
        # are small JSON texts, so fragmentation is rejected, not buffered.
        raise EngineError("fragmented WebSocket frames are not supported")
    mask = await reader.readexactly(4) if masked else b""
    payload = await reader.readexactly(length)
    if masked:
        payload = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
    return opcode, payload


class _WsConnection:
    """Per-WebSocket state: the outbound event queue and live subscriptions."""

    def __init__(self):
        self.events: asyncio.Queue = asyncio.Queue()
        self.subscribed: set[str] = set()


class AsyncAnalysisServer:
    """Serve an :class:`~repro.engine.service.AnalysisService` over asyncio.

    Binds synchronously in the constructor (``port 0`` = ephemeral, so
    ``server_address`` is final immediately); ``serve_forever()`` then runs
    the loop in whatever thread calls it.
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0):
        from .service import API_VERSION

        self.service = service
        self.api_version = API_VERSION
        self._loop = asyncio.new_event_loop()
        #: fingerprint -> futures parked by HTTP long polls (loop thread only).
        self._parked: dict[str, set[asyncio.Future]] = {}
        #: fingerprint -> WebSocket connections awaiting its result.
        self._subs: dict[str, set[_WsConnection]] = {}
        self._connections: set[_WsConnection] = set()
        self._closed = False
        self._serving = threading.Event()
        self._server = self._loop.run_until_complete(
            asyncio.start_server(self._handle_client, host, port)
        )
        self.server_address = self._server.sockets[0].getsockname()
        service.add_result_listener(self._on_results)

    # -- socketserver-compatible lifecycle ----------------------------------
    def serve_forever(self) -> None:
        """Run the event loop until :meth:`shutdown` (from any thread)."""
        asyncio.set_event_loop(self._loop)
        self._serving.set()
        try:
            self._loop.run_forever()
        finally:
            self._serving.clear()

    def shutdown(self) -> None:
        """Stop :meth:`serve_forever` from another thread (idempotent)."""
        with contextlib.suppress(RuntimeError):
            self._loop.call_soon_threadsafe(self._loop.stop)

    def server_close(self) -> None:
        """Release the socket and the loop.  Call after :meth:`shutdown`."""
        if self._closed:
            return
        self._closed = True
        self.service.remove_result_listener(self._on_results)
        if self._loop.is_running():  # shutdown not awaited; last resort
            self.shutdown()
            deadline = time.monotonic() + 5.0
            while self._loop.is_running() and time.monotonic() < deadline:
                time.sleep(0.01)
        self._server.close()
        tasks = asyncio.all_tasks(self._loop)
        for task in tasks:
            task.cancel()
        with contextlib.suppress(RuntimeError):
            if tasks:
                self._loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True)
                )
            self._loop.run_until_complete(self._server.wait_closed())
            self._loop.run_until_complete(self._loop.shutdown_asyncgens())
            self._loop.close()

    # -- the thread -> loop result bridge ------------------------------------
    def _on_results(self, fingerprints: list[str]) -> None:
        """Service callback (batcher/submitter thread): hop into the loop."""
        with contextlib.suppress(RuntimeError):  # loop already closed
            self._loop.call_soon_threadsafe(self._wake, list(fingerprints))

    def _wake(self, fingerprints: list[str]) -> None:
        """Resolve parked futures and push WebSocket events (loop thread)."""
        if not fingerprints:  # service stop: release everything
            for futures in self._parked.values():
                for future in futures:
                    if not future.done():
                        future.set_result(None)
            self._parked.clear()
            for connection in list(self._connections):
                connection.events.put_nowait({"type": "stopped"})
            self._subs.clear()
            return
        for fingerprint in fingerprints:
            for future in self._parked.pop(fingerprint, ()):
                if not future.done():
                    future.set_result(None)
            connections = self._subs.pop(fingerprint, None)
            if not connections:
                continue
            entry = self.service.status(fingerprint)
            if entry is None:
                continue
            for connection in connections:
                connection.subscribed.discard(fingerprint)
                connection.events.put_nowait({"type": "result", "job": entry})

    async def _park(self, fingerprint: str, timeout: float) -> None:
        """Await a result notification for ``fingerprint`` (or the timeout).

        The future is registered *before* the caller re-reads the status, so
        a result landing between the read and the await still wakes us.
        """
        future = self._loop.create_future()
        self._parked.setdefault(fingerprint, set()).add(future)
        gauge = _parked_gauge()
        gauge.inc()
        try:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(future, timeout)
        finally:
            gauge.dec()
            waiters = self._parked.get(fingerprint)
            if waiters is not None:
                waiters.discard(future)
                if not waiters:
                    self._parked.pop(fingerprint, None)

    async def _await_entry(self, fingerprint: str, seconds: float) -> dict | None:
        """The async twin of ``AnalysisService.wait_for``."""
        service = self.service
        deadline = self._loop.time() + max(0.0, seconds)
        terminal = tuple(self.service.terminal_statuses)
        while True:
            future = self._loop.create_future()
            self._parked.setdefault(fingerprint, set()).add(future)
            # Status is read only after the future is registered: a terminal
            # transition in between fires _wake and resolves this future, so
            # the wakeup cannot be lost.
            entry = service.status(fingerprint)
            remaining = deadline - self._loop.time()
            if (
                entry is None
                or entry["status"] in terminal
                or remaining <= 0
                or service.stopped
            ):
                self._unpark(fingerprint, future)
                return entry
            gauge = _parked_gauge()
            gauge.inc()
            try:
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(future, remaining)
            finally:
                gauge.dec()
                self._unpark(fingerprint, future)

    def _unpark(self, fingerprint: str, future: asyncio.Future) -> None:
        waiters = self._parked.get(fingerprint)
        if waiters is not None:
            waiters.discard(future)
            if not waiters:
                self._parked.pop(fingerprint, None)

    # -- HTTP plumbing -------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                if (
                    method == "GET"
                    and headers.get("upgrade", "").lower() == "websocket"
                ):
                    await self._serve_websocket(reader, writer, target, headers)
                    break
                keep_alive = await self._dispatch(method, target, headers, body, writer)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            EngineError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _read_request(self, reader) -> tuple[str, str, dict, bytes] | None:
        return await read_http_request(reader)

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        code: int,
        body: bytes,
        content_type: str,
        *,
        keep_alive: bool = True,
        extra_headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        await send_http_response(
            writer,
            code,
            body,
            content_type,
            keep_alive=keep_alive,
            extra_headers=extra_headers,
        )

    async def _send_json(
        self, writer, code: int, payload: dict, *, keep_alive: bool = True,
        extra_headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        await self._send(
            writer,
            code,
            json.dumps(payload).encode("utf-8"),
            "application/json",
            keep_alive=keep_alive,
            extra_headers=extra_headers,
        )

    async def _send_error(self, writer, exc: BaseException, status: int) -> None:
        await self._send_json(writer, status, error_envelope(exc, status=status))

    async def _send_gone(self, writer, successor: str) -> None:
        """410 Gone for a retired unversioned endpoint, pointing at /v1."""
        envelope = error_envelope(
            EngineError(
                f"this endpoint was retired; use {successor} "
                f"(API {self.api_version})"
            ),
            status=410,
        )
        await self._send_json(
            writer,
            410,
            envelope,
            extra_headers=(("Link", f'<{successor}>; rel="successor-version"'),),
        )

    async def _dispatch(self, method, target, headers, body, writer) -> bool:
        parsed = urlparse(target)
        path = parsed.path.rstrip("/")
        endpoint = _route_label(path, self.api_version)
        in_flight = obs_metrics.gauge(
            "repro_http_in_flight", "HTTP requests currently being handled."
        )
        in_flight.inc()
        started = time.perf_counter()
        try:
            await self._route(method, path, parse_qs(parsed.query), body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            return False
        except Exception as exc:  # a handler bug must not kill the connection task
            with contextlib.suppress(Exception):
                await self._send_error(writer, exc, 500)
            return False
        finally:
            in_flight.dec()
            obs_metrics.histogram(
                "repro_http_request_seconds",
                "HTTP request latency by endpoint and method.",
                {"endpoint": endpoint, "method": method},
            ).observe(time.perf_counter() - started)
        return headers.get("connection", "").lower() != "close"

    async def _route(self, method, path, query, body, writer) -> None:
        prefix = f"/{self.api_version}"
        if path.startswith(prefix):
            sub = path[len(prefix):]
            if method == "GET":
                await self._v1_get(sub, query, writer)
            elif method == "POST":
                await self._v1_post(sub, body, writer)
            else:
                await self._send_error(
                    writer, EngineError(f"method {method} not allowed"), 405
                )
            return
        # The unversioned surface is retired: every route answers 410 Gone
        # with an envelope naming its /v1 successor.
        if path == "/healthz":
            await self._send_gone(writer, f"{prefix}/healthz")
            return
        if path == "/jobs" or path.startswith("/jobs/"):
            successor = (
                f"{prefix}/batches" if method == "POST" else f"{prefix}/jobs/<fingerprint>"
            )
            await self._send_gone(writer, successor)
            return
        await self._send_error(writer, EngineError(f"unknown path {path!r}"), 404)

    async def _v1_get(self, sub: str, query: dict, writer) -> None:
        service = self.service
        if sub == "/capabilities":
            await self._send_json(writer, 200, service.capabilities())
            return
        if sub == "/healthz":
            await self._send_json(writer, 200, service.healthz())
            return
        if sub == "/metrics":
            await self._send(
                writer,
                200,
                service.render_metrics().encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
            return
        if sub.startswith("/jobs/"):
            fingerprint = sub[len("/jobs/"):]
            wait = query.get("wait")
            if wait is not None:
                try:
                    requested = float(wait[0])
                    if not math.isfinite(requested):
                        # NaN slips through min/max clamps and would park
                        # the coroutine on a nonsense deadline.
                        raise ValueError("wait must be finite")
                    seconds = min(max(requested, 0.0), service.max_wait_seconds)
                except (TypeError, ValueError):
                    await self._send_error(
                        writer, EngineError(f"invalid wait parameter {wait[0]!r}"), 400
                    )
                    return
                entry = await self._await_entry(fingerprint, seconds)
            else:
                entry = service.status(fingerprint)
            if entry is None:
                await self._send_error(
                    writer,
                    JobNotFoundError(f"unknown fingerprint {fingerprint!r}"),
                    404,
                )
            else:
                await self._send_json(writer, 200, entry)
            return
        await self._send_error(writer, EngineError(f"unknown path {sub!r}"), 404)

    async def _v1_post(self, sub: str, body: bytes, writer) -> None:
        service = self.service
        if sub != "/batches":
            await self._send_error(writer, EngineError(f"unknown path {sub!r}"), 404)
            return
        try:
            payload = json.loads(body or b"null")
        except (ValueError, json.JSONDecodeError) as exc:
            await self._send_error(writer, EngineError(f"invalid JSON body: {exc}"), 400)
            return
        if not isinstance(payload, dict) or not isinstance(payload.get("jobs"), list):
            await self._send_error(
                writer, EngineError("body must be {'jobs': [<job payload>, ...]}"), 400
            )
            return
        submissions = payload["jobs"]
        if not submissions:
            await self._send_error(
                writer, EngineError("batch must contain at least one job"), 400
            )
            return
        try:
            entries = service.submit_payloads(submissions)
        except BatchLimitExceeded as exc:
            await self._send_error(writer, exc, 413)
            return
        except ReproError as exc:
            await self._send_error(writer, exc, 400)
            return
        await self._send_json(
            writer, 202, {"jobs": entries, "batch": {"submitted": len(entries)}}
        )

    # -- WebSocket -----------------------------------------------------------
    async def _serve_websocket(self, reader, writer, target, headers) -> None:
        parsed = urlparse(target)
        if parsed.path.rstrip("/") != f"/{self.api_version}/stream":
            await self._send_error(
                writer, EngineError(f"no WebSocket endpoint at {parsed.path!r}"), 404
            )
            return
        key = headers.get("sec-websocket-key")
        if not key:
            await self._send_error(
                writer, EngineError("missing Sec-WebSocket-Key header"), 400
            )
            return
        handshake = (
            "HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {_ws_accept_key(key)}\r\n\r\n"
        )
        writer.write(handshake.encode("latin-1"))
        await writer.drain()
        connection = _WsConnection()
        self._connections.add(connection)
        connections_gauge = obs_metrics.gauge(
            "repro_ws_connections", "Open WebSocket connections on /v1/stream."
        )
        connections_gauge.inc()
        pusher = self._loop.create_task(self._ws_push_loop(connection, writer))
        try:
            await self._ws_read_loop(connection, reader, writer)
        finally:
            connections_gauge.dec()
            self._connections.discard(connection)
            for fingerprint in list(connection.subscribed):
                subscribers = self._subs.get(fingerprint)
                if subscribers is not None:
                    subscribers.discard(connection)
                    if not subscribers:
                        self._subs.pop(fingerprint, None)
            pusher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await pusher

    async def _ws_push_loop(self, connection: _WsConnection, writer) -> None:
        """Drain the event queue into text frames; one task per connection."""
        gauge = _parked_gauge()
        while True:
            gauge.inc()
            try:
                event = await connection.events.get()
            finally:
                gauge.dec()
            frame = _ws_frame(_WS_TEXT, json.dumps(event).encode("utf-8"))
            writer.write(frame)
            await writer.drain()

    async def _ws_read_loop(self, connection, reader, writer) -> None:
        service = self.service
        terminal = tuple(service.terminal_statuses)
        while True:
            try:
                opcode, payload = await _ws_read_frame(reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            if opcode == _WS_CLOSE:
                with contextlib.suppress(ConnectionError):
                    writer.write(_ws_frame(_WS_CLOSE, payload[:125]))
                    await writer.drain()
                return
            if opcode == _WS_PING:
                writer.write(_ws_frame(_WS_PONG, payload[:125]))
                await writer.drain()
                continue
            if opcode != _WS_TEXT:
                continue
            try:
                message = json.loads(payload.decode("utf-8"))
                if not isinstance(message, dict):
                    raise EngineError("WebSocket ops must be JSON objects")
                op = message.get("op")
                if op == "subscribe":
                    fingerprints = message.get("fingerprints")
                    if not isinstance(fingerprints, list):
                        raise EngineError(
                            "subscribe needs {'fingerprints': [<fp>, ...]}"
                        )
                    self._ws_subscribe(connection, fingerprints, terminal)
                elif op == "submit":
                    jobs = message.get("jobs")
                    if not isinstance(jobs, list) or not jobs:
                        raise EngineError("submit needs {'jobs': [<payload>, ...]}")
                    entries = service.submit_payloads(jobs)
                    connection.events.put_nowait(
                        {"type": "submitted", "jobs": entries}
                    )
                    self._ws_subscribe(
                        connection,
                        [entry["fingerprint"] for entry in entries],
                        terminal,
                    )
                else:
                    raise EngineError(f"unknown WebSocket op {op!r}")
            except ReproError as exc:
                connection.events.put_nowait(
                    {"type": "error", "error": error_envelope(exc, status=400)}
                )
            except (ValueError, UnicodeDecodeError) as exc:
                connection.events.put_nowait(
                    {
                        "type": "error",
                        "error": error_envelope(
                            EngineError(f"invalid WebSocket payload: {exc}"),
                            status=400,
                        ),
                    }
                )

    def _ws_subscribe(
        self, connection: _WsConnection, fingerprints: list, terminal: tuple
    ) -> None:
        """Register interest; already-terminal jobs are pushed immediately.

        Registration happens before the status read (same lost-wakeup
        discipline as :meth:`_await_entry`): a result landing in between
        fires :meth:`_wake`, which both pushes the event and clears the
        subscription, and the duplicate push is prevented by the
        ``subscribed`` set check.
        """
        service = self.service
        for fingerprint in fingerprints:
            fingerprint = str(fingerprint)
            if fingerprint in connection.subscribed:
                continue
            connection.subscribed.add(fingerprint)
            self._subs.setdefault(fingerprint, set()).add(connection)
            entry = service.status(fingerprint)
            if entry is None:
                connection.subscribed.discard(fingerprint)
                subscribers = self._subs.get(fingerprint)
                if subscribers is not None:
                    subscribers.discard(connection)
                    if not subscribers:
                        self._subs.pop(fingerprint, None)
                connection.events.put_nowait(
                    {
                        "type": "error",
                        "error": error_envelope(
                            JobNotFoundError(
                                f"unknown fingerprint {fingerprint!r}"
                            ),
                            status=404,
                        ),
                    }
                )
                continue
            if entry["status"] in terminal and fingerprint in connection.subscribed:
                connection.subscribed.discard(fingerprint)
                subscribers = self._subs.get(fingerprint)
                if subscribers is not None:
                    subscribers.discard(connection)
                    if not subscribers:
                        self._subs.pop(fingerprint, None)
                connection.events.put_nowait({"type": "result", "job": entry})
