"""Executor for :class:`~repro.engine.spec.ComparisonJob`.

Comparison jobs reuse every piece of engine plumbing the analysis family
already has — content-addressed dedupe, the outcome store (with dual
certificates re-verified on warm hits), worker sharding, the shared
persistent bound cache — and differ only in what one execution does:

* **channels mode** routes the pair through the process-wide metric registry
  (:mod:`repro.metrics`); a certified metric's
  :class:`~repro.sdp.diamond.DiamondNormBound` certificate is harvested into
  the outcome store like any per-gate bound;
* **A/B mode** runs the full certified Gleipnir analysis under each of the
  two noise models (sequentially, sharing ``cache_dir`` so the second run
  warms from the first where the models overlap) and reports the drift
  ``|bound_a - bound_b|`` with both sides' certificates harvested.

Every executed comparison increments
``repro_metric_jobs_total{metric,certified}`` so ``/v1/metrics`` exposes the
per-metric traffic mix.
"""

from __future__ import annotations

import time

from ..core.analyzer import GleipnirAnalyzer
from ..errors import ResourceLimitExceeded
from ..metrics import get_metric
from ..obs import metrics as obs_metrics
from .outcomes import OutcomeCertificate
from .pool import (
    _harvest_certificates,
    _prepared_config,
    _wall_clock_budget,
    job_result_from_analysis,
)
from .spec import ComparisonJob, JobResult

__all__ = ["execute_comparison", "execute_comparison_record"]


def _count_metric_job(metric: str, certified: bool) -> None:
    obs_metrics.counter(
        "repro_metric_jobs_total",
        "Comparison jobs executed, by metric and certification outcome.",
        {"metric": metric, "certified": "true" if certified else "false"},
    ).inc()


def _failure(
    job: ComparisonJob, fingerprint: str, status: str, started: float, exc: Exception
) -> tuple[JobResult, list]:
    message = str(exc) if status == "timeout" else f"{type(exc).__name__}: {exc}"
    return (
        JobResult(
            fingerprint=fingerprint,
            name=job.name,
            status=status,
            elapsed_seconds=time.perf_counter() - started,
            metric=job.metric,
            error=message,
        ),
        [],
    )


def execute_comparison_record(
    job: ComparisonJob,
    *,
    cache_dir: str | None = None,
    fingerprint: str | None = None,
    collect_certificates: bool = False,
) -> tuple[JobResult, list[OutcomeCertificate]]:
    """Run one comparison to a :class:`JobResult` plus its dual certificates.

    Mirrors :func:`~repro.engine.pool.execute_job_record`: failures (budget,
    solver, malformed metric) are captured as ``timeout``/``error`` results
    with empty certificate lists, never raised, so one bad comparison cannot
    take down a sweep.
    """
    if fingerprint is None:
        fingerprint = job.fingerprint()
    started = time.perf_counter()
    # Metric resolution failures (unknown name, program metric on a channel
    # pair) are job errors like any other — captured, not raised.
    try:
        metric = get_metric(job.metric)
        if job.mode == "channels":
            result, certificates = _run_channels(
                job, fingerprint, metric, cache_dir, collect_certificates
            )
        else:
            result, certificates = _run_ab(
                job, fingerprint, metric, cache_dir, collect_certificates
            )
    except ResourceLimitExceeded as exc:
        result, certificates = _failure(job, fingerprint, "timeout", started, exc)
    except Exception as exc:
        result, certificates = _failure(job, fingerprint, "error", started, exc)
    _count_metric_job(job.metric, result.ok and result.metric_tier == "certified")
    return result, certificates


def execute_comparison(
    job: ComparisonJob, *, cache_dir: str | None = None, fingerprint: str | None = None
) -> JobResult:
    """Run one comparison to a :class:`JobResult`, capturing failures."""
    return execute_comparison_record(job, cache_dir=cache_dir, fingerprint=fingerprint)[0]


def _run_channels(
    job: ComparisonJob,
    fingerprint: str,
    metric,
    cache_dir: str | None,
    collect_certificates: bool,
) -> tuple[JobResult, list[OutcomeCertificate]]:
    """Channel-pair comparison through the metric registry."""
    config = _prepared_config(job, cache_dir)
    started = time.perf_counter()
    with _wall_clock_budget(config.guard.max_seconds):
        value = metric.compute(job.channel_a, job.channel_b, config=config.sdp)
    elapsed = time.perf_counter() - started
    bound = value.bound
    solves = 0
    if bound is not None:
        solves = 1 if getattr(bound, "method", "") not in ("exact-zero", "noiseless") else 0
    result = JobResult(
        fingerprint=fingerprint,
        name=job.name,
        status="ok",
        error_bound=float(value.value),
        elapsed_seconds=elapsed,
        sdp_solves=solves,
        noise_model=f"{job.channel_a.name}|{job.channel_b.name}",
        metric=value.metric,
        metric_tier=value.tier,
    )
    certificates: list[OutcomeCertificate] = []
    if collect_certificates and bound is not None:
        if (
            getattr(bound, "certificate", None) is not None
            and getattr(bound, "choi", None) is not None
            and bound.method not in ("noiseless", "exact-zero")
        ):
            certificates.append(OutcomeCertificate.from_bound(bound))
    return result, certificates


def _run_ab(
    job: ComparisonJob,
    fingerprint: str,
    metric,
    cache_dir: str | None,
    collect_certificates: bool,
) -> tuple[JobResult, list[OutcomeCertificate]]:
    """Noise-model A/B diff: two full certified analyses, one drift record."""
    if metric.kind != "program":
        raise_kind = type(metric).__name__
        from ..errors import MetricError

        raise MetricError(
            f"metric {job.metric!r} ({raise_kind}) compares channel pairs; "
            "noise-model A/B jobs need a program-level metric such as "
            "'bound_drift'"
        )
    config = _prepared_config(job, cache_dir)
    started = time.perf_counter()
    sides = []
    certificates: list[OutcomeCertificate] = []
    # One budget covers both sides: the job is one unit of work to the
    # engine's guard, however many analyses it runs internally.
    with _wall_clock_budget(config.guard.max_seconds):
        for model in (job.noise_model_a, job.noise_model_b):
            analyzer = GleipnirAnalyzer(model, config=config)
            analysis = analyzer.analyze(
                job.program,
                initial_bits=job.initial_bits,
                num_qubits=job.num_qubits,
                program_name=job.name,
            )
            sides.append(analysis)
            if collect_certificates:
                certificates.extend(_harvest_certificates(analyzer))
    analysis_a, analysis_b = sides
    value_a = float(analysis_a.error_bound)
    value_b = float(analysis_b.error_bound)
    # Reuse the canonical flattening for the aggregate counters, then overlay
    # the comparison-specific fields.
    base_a = job_result_from_analysis(fingerprint, job.name, analysis_a)
    base_b = job_result_from_analysis(fingerprint, job.name, analysis_b)
    result = JobResult(
        fingerprint=fingerprint,
        name=job.name,
        status="ok",
        error_bound=abs(value_a - value_b),
        num_gates=base_a.num_gates,
        num_branches=base_a.num_branches,
        elapsed_seconds=time.perf_counter() - started,
        sdp_solves=base_a.sdp_solves + base_b.sdp_solves,
        sdp_cache_hits=base_a.sdp_cache_hits + base_b.sdp_cache_hits,
        sdp_dominance_hits=base_a.sdp_dominance_hits + base_b.sdp_dominance_hits,
        scheduled_solves=base_a.scheduled_solves + base_b.scheduled_solves,
        mps_walks=base_a.mps_walks + base_b.mps_walks,
        mps_width=base_a.mps_width,
        noise_model=f"{job.noise_model_a.name}|{job.noise_model_b.name}",
        metric=job.metric,
        metric_tier=metric.tier,
        value_a=value_a,
        value_b=value_b,
    )
    return result, certificates
