"""The serving front-end: submit analysis jobs over HTTP, poll by fingerprint.

Installed as ``gleipnir-serve`` (see pyproject.toml)::

    gleipnir-serve --port 8780 --workers 4 --store results.jsonl --cache-dir .cache/bounds

API (JSON over stdlib HTTP, no extra dependencies):

* ``POST /jobs`` — body is one job payload (see
  :meth:`repro.engine.spec.AnalysisJob.to_json_dict`) or ``{"jobs": [...]}``.
  Returns 202 with ``{"jobs": [{"fingerprint", "name", "status"}, ...]}``.
  Submissions are *coalesced*: a batcher thread collects everything that
  arrives within ``batch_window`` seconds (up to ``max_batch``) and hands it
  to the engine as one batch, so concurrent clients share dedupe and the
  warm bound cache.
* ``GET /jobs/<fingerprint>`` — ``{"fingerprint", "name", "status",
  "result"}`` where ``status`` is ``queued | running | done | failed`` and
  ``result`` is the flat :class:`~repro.engine.spec.JobResult` dict once
  finished.
* ``GET /healthz`` — liveness plus queue statistics.

Duplicate submissions (same fingerprint) — including re-submissions of jobs
already completed in the attached result store — are answered without
re-execution; the fingerprint in the response is the handle for polling.
"""

from __future__ import annotations

import argparse
import json
import queue
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import ReproError
from .pool import AnalysisEngine
from .spec import AnalysisJob
from .store import ResultStore

__all__ = ["AnalysisService", "make_server", "main"]


class AnalysisService:
    """Coalesces job submissions into engine batches; tracks status by fingerprint."""

    def __init__(
        self,
        engine: AnalysisEngine,
        *,
        batch_window: float = 0.05,
        max_batch: int = 32,
        max_tracked: int = 4096,
    ):
        self.engine = engine
        self.batch_window = float(batch_window)
        self.max_batch = int(max_batch)
        #: In-memory status entries kept before finished ones are evicted
        #: (oldest first); evicted fingerprints are still answerable from the
        #: attached result store, so a long-running server stays bounded.
        self.max_tracked = int(max_tracked)
        self._queue: queue.Queue[tuple[str, AnalysisJob]] = queue.Queue()
        self._status: dict[str, dict] = {}
        self._lock = threading.Lock()
        self._running = False
        self._thread: threading.Thread | None = None
        self.batches_run = 0

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._thread = threading.Thread(target=self._loop, name="engine-batcher", daemon=True)
        self._thread.start()

    def stop(self, *, timeout: float = 10.0) -> None:
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    # -- submission --------------------------------------------------------
    def submit_payload(self, payload: dict) -> dict:
        """Validate one job payload and enqueue it; returns its status entry.

        Raises :class:`~repro.errors.EngineError` (or another
        :class:`~repro.errors.ReproError`) on malformed payloads — the HTTP
        layer maps those to a 400 response.
        """
        return self.submit_job(AnalysisJob.from_json_dict(payload))

    def submit_payloads(self, payloads: list[dict]) -> list[dict]:
        """Validate *every* payload before enqueuing *any* (all-or-nothing).

        A 400 response for a batch must mean nothing from that batch runs;
        validating lazily would execute the leading valid jobs and then
        reject the request.
        """
        jobs = [AnalysisJob.from_json_dict(payload) for payload in payloads]
        return [self.submit_job(job) for job in jobs]

    def submit_job(self, job: AnalysisJob) -> dict:
        """Enqueue an already-validated job; returns its status entry."""
        fingerprint = job.fingerprint()
        with self._lock:
            entry = self._status.get(fingerprint)
            if entry is not None and entry["status"] in ("queued", "running", "done"):
                return dict(entry)
            store = self.engine.store
            if store is not None and store.completed(fingerprint):
                entry = self._track(
                    self._entry(fingerprint, job.name, "done", store.get(fingerprint))
                )
                return dict(entry)
            entry = self._track(self._entry(fingerprint, job.name, "queued", None))
        self._queue.put((fingerprint, job))
        return dict(entry)

    def _track(self, entry: dict) -> dict:
        """Insert a status entry, evicting the oldest finished ones over the cap.

        Callers hold ``self._lock``.  Only ``done``/``failed`` entries are
        evicted (they remain answerable from the result store); in-flight
        entries are never dropped.
        """
        self._status[entry["fingerprint"]] = entry
        if len(self._status) > self.max_tracked:
            for fingerprint, tracked in list(self._status.items()):
                if len(self._status) <= self.max_tracked:
                    break
                if tracked["status"] in ("done", "failed"):
                    del self._status[fingerprint]
        return entry

    @staticmethod
    def _entry(fingerprint: str, name: str, status: str, result) -> dict:
        return {
            "fingerprint": fingerprint,
            "name": name,
            "status": status,
            "result": result.to_json_dict() if result is not None else None,
        }

    # -- queries -----------------------------------------------------------
    def status(self, fingerprint: str) -> dict | None:
        with self._lock:
            entry = self._status.get(fingerprint)
            if entry is not None:
                return dict(entry)
        # Evicted (or never-submitted-here) fingerprints: the result store
        # still answers for anything that finished.
        store = self.engine.store
        if store is not None:
            result = store.get(fingerprint)
            if result is not None:
                return self._entry(
                    fingerprint, result.name, "done" if result.ok else "failed", result
                )
        return None

    def stats(self) -> dict:
        with self._lock:
            counts: dict[str, int] = {}
            for entry in self._status.values():
                counts[entry["status"]] = counts.get(entry["status"], 0) + 1
        return {
            "status": "ok",
            "jobs": counts,
            "batches_run": self.batches_run,
            "workers": self.engine.workers,
            "queue_depth": self._queue.qsize(),
        }

    def wait(self, fingerprint: str, *, timeout: float = 60.0) -> dict:
        """Block until a submitted fingerprint finishes (tests and CLIs)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            entry = self.status(fingerprint)
            if entry is not None and entry["status"] in ("done", "failed"):
                return entry
            time.sleep(0.01)
        raise TimeoutError(f"job {fingerprint} did not finish within {timeout:g}s")

    # -- batcher -----------------------------------------------------------
    def _drain_batch(self) -> list[tuple[str, AnalysisJob]]:
        """One coalescing window: the first job blocks, the rest are gathered."""
        try:
            batch = [self._queue.get(timeout=0.1)]
        except queue.Empty:
            return []
        deadline = time.monotonic() + self.batch_window
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                batch.append(self._queue.get(timeout=remaining))
            except queue.Empty:
                break
        return batch

    def _loop(self) -> None:
        while self._running:
            batch = self._drain_batch()
            if not batch:
                continue
            with self._lock:
                for fingerprint, _ in batch:
                    self._status[fingerprint]["status"] = "running"
            try:
                report = self.engine.run([job for _, job in batch], resume=True)
            except Exception as exc:  # engine must never kill the batcher
                with self._lock:
                    for fingerprint, job in batch:
                        entry = self._track(self._entry(fingerprint, job.name, "failed", None))
                        entry["error"] = f"{type(exc).__name__}: {exc}"
                continue
            with self._lock:
                for (fingerprint, job), result in zip(batch, report.results):
                    status = "done" if result.ok else "failed"
                    self._track(self._entry(fingerprint, job.name, status, result))
            self.batches_run += 1


def make_server(
    service: AnalysisService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """An HTTP server bound to ``host:port`` (port 0 = ephemeral) for ``service``."""

    class Handler(BaseHTTPRequestHandler):
        def log_message(self, format: str, *args) -> None:  # quiet by default
            pass

        def _send_json(self, code: int, payload: dict) -> None:
            body = json.dumps(payload).encode()
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:
            path = self.path.split("?", 1)[0].rstrip("/")
            if path == "/healthz":
                self._send_json(200, service.stats())
                return
            if path.startswith("/jobs/"):
                fingerprint = path[len("/jobs/"):]
                entry = service.status(fingerprint)
                if entry is None:
                    self._send_json(404, {"error": f"unknown fingerprint {fingerprint!r}"})
                else:
                    self._send_json(200, entry)
                return
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

        def do_POST(self) -> None:
            path = self.path.split("?", 1)[0].rstrip("/")
            if path != "/jobs":
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
                return
            try:
                length = int(self.headers.get("Content-Length", 0))
                payload = json.loads(self.rfile.read(length) or b"null")
            except (ValueError, json.JSONDecodeError) as exc:
                self._send_json(400, {"error": f"invalid JSON body: {exc}"})
                return
            if isinstance(payload, dict) and "jobs" in payload:
                submissions = payload["jobs"]
            else:
                submissions = [payload]
            if not isinstance(submissions, list) or not submissions:
                self._send_json(400, {"error": "body must be a job or {'jobs': [...]}"})
                return
            try:
                entries = service.submit_payloads(submissions)
            except ReproError as exc:
                self._send_json(400, {"error": str(exc)})
                return
            self._send_json(202, {"jobs": entries})

    return ThreadingHTTPServer((host, port), Handler)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gleipnir-serve",
        description="Serve Gleipnir analysis jobs over HTTP (submit, batch, poll).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8780)
    parser.add_argument("--workers", type=int, default=1, help="process-pool size")
    parser.add_argument("--store", default=None, help="JSONL result store path (enables resume)")
    parser.add_argument("--cache-dir", default=None, help="shared on-disk bound cache directory")
    parser.add_argument(
        "--batch-window", type=float, default=0.05, help="coalescing window in seconds"
    )
    parser.add_argument("--max-batch", type=int, default=32, help="max jobs per engine batch")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    engine = AnalysisEngine(
        workers=args.workers,
        store=ResultStore(args.store) if args.store else None,
        cache_dir=args.cache_dir,
    )
    service = AnalysisService(engine, batch_window=args.batch_window, max_batch=args.max_batch)
    service.start()
    server = make_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    print(f"gleipnir-serve listening on http://{host}:{port} (workers={args.workers})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
