"""The serving front-end: submit analysis jobs over HTTP, await results.

Installed as ``gleipnir-serve`` (see pyproject.toml)::

    gleipnir-serve --port 8780 --workers 4 --store results.jsonl --cache-dir .cache/bounds

The **versioned** API (JSON over stdlib HTTP, no extra dependencies) lives
under ``/v1/`` and is what :class:`repro.api.Client` speaks:

* ``POST /v1/batches`` — body ``{"jobs": [<job payload>, ...]}`` (see
  :meth:`repro.engine.spec.AnalysisJob.to_json_dict`).  Returns 202 with
  ``{"jobs": [{"fingerprint", "name", "status", "result"}, ...], "batch":
  {"submitted": n}}``.  Submissions are *coalesced*: a batcher thread
  collects everything that arrives within ``batch_window`` seconds (up to
  ``max_batch``) and hands it to the engine as one batch, so concurrent
  clients share dedupe and the warm bound cache.  Batches larger than
  ``max_submit`` jobs are rejected with 413.
* ``GET /v1/jobs/<fingerprint>`` — the job's status entry, where ``status``
  is ``queued | running | done | failed`` and ``result`` is the flat
  :class:`~repro.engine.spec.JobResult` dict once finished.  404 for unknown
  fingerprints.
* ``GET /v1/jobs/<fingerprint>?wait=<seconds>`` — **result push via long
  poll**: the request blocks (server-side, on a condition variable — no
  polling anywhere) until the job finishes or the wait window closes, then
  returns the latest entry.  A completed job therefore needs exactly one
  request after submission.
* ``GET /v1/capabilities`` — service discovery: API versions, job schema
  version, server limits (batch sizes, wait window), worker count.
* ``GET /v1/healthz`` — liveness: version, uptime, queue depth, workers,
  result/outcome store sizes.  The legacy unversioned ``/healthz`` serves
  the same payload with a ``Deprecation`` header.
* ``GET /v1/metrics`` — Prometheus text exposition of the process-wide
  :mod:`repro.obs.metrics` registry: per-endpoint latency histograms,
  in-flight/parked-coroutine gauges, engine/outcome/cache/tape/backend
  counters, and per-solve-class SDP solve histograms (see
  ``docs/observability.md``).
* ``GET /v1/stream`` — a WebSocket (RFC 6455, stdlib implementation) for
  multi-job workloads: subscribe to fingerprints and/or submit batches, and
  results are **pushed** as each job finishes — see
  :mod:`repro.engine.aserve` for the frame protocol.

The HTTP front end is a single-threaded **asyncio** server
(:class:`~repro.engine.aserve.AsyncAnalysisServer`): a parked long poll or
WebSocket subscription is a coroutine awaiting a future, bridged to the
engine's ``threading.Condition`` world through result listeners and
``call_soon_threadsafe``, so one replica holds thousands of concurrent
waiters without one thread each.

Errors on ``/v1`` are **structured envelopes** mapped from the
:class:`~repro.errors.ReproError` hierarchy::

    {"error": {"type": "EngineError", "message": "...", "status": 400,
               "repro_error": true}}

so :class:`repro.api.Client` re-raises the exact exception class.

The historical unversioned endpoints (``POST /jobs``, ``GET /jobs/<fp>``,
``/healthz``) are **retired**: they answer ``410 Gone`` with a structured
envelope naming the ``/v1`` successor.

For horizontal scale, ``gleipnir-serve --replicas N`` starts N replica
processes behind a fingerprint-sharding router — see
:mod:`repro.engine.replicas`.

Duplicate submissions (same fingerprint) — including re-submissions of jobs
already completed in the attached result store — are answered without
re-execution; the fingerprint in the response is the handle for waiting.
"""

from __future__ import annotations

import argparse
import queue
import sys
import threading
import time

from ..errors import BatchLimitExceeded, StorageBackendError
from ..metrics import metric_capabilities
from ..obs import metrics as obs_metrics
from ..version import __version__
from .backends import SUPPORTED_SCHEMES
from .outcomes import OutcomeStore
from .pool import AnalysisEngine
from .spec import (
    JOB_SCHEMA_VERSION,
    AnalysisJob,
    ComparisonJob,
    job_from_json_dict,
)
from .store import ResultStore

__all__ = ["AnalysisService", "API_VERSION", "TERMINAL_STATUSES", "make_server", "main"]

#: The one wire-format version this service speaks (bump on breaking changes).
API_VERSION = "v1"

#: Upper bound on one long-poll wait window; clients re-issue for longer waits.
MAX_WAIT_SECONDS = 60.0

#: The job statuses that mean "no further transition will happen" — the one
#: definition every surface (service, facade, client) shares.
TERMINAL_STATUSES = ("done", "failed")

_FINISHED = TERMINAL_STATUSES


class AnalysisService:
    """Coalesces job submissions into engine batches; tracks status by fingerprint."""

    #: Shared with serving surfaces so they need not import module constants.
    max_wait_seconds = MAX_WAIT_SECONDS
    terminal_statuses = TERMINAL_STATUSES

    def __init__(
        self,
        engine: AnalysisEngine,
        *,
        batch_window: float = 0.05,
        max_batch: int = 32,
        max_tracked: int = 4096,
        max_submit: int = 1024,
        resume: bool = True,
    ):
        self.engine = engine
        self.batch_window = float(batch_window)
        self.max_batch = int(max_batch)
        #: Answer re-submissions from the attached result store (serving
        #: default).  The facade's streaming path sets this to the session's
        #: resume flag so as_completed and analyze_batch agree about whether
        #: stored results are reused.
        self.resume = bool(resume)
        #: In-memory status entries kept before finished ones are evicted
        #: (oldest first); evicted fingerprints are still answerable from the
        #: attached result store, so a long-running server stays bounded.
        self.max_tracked = int(max_tracked)
        #: Largest number of jobs one submission may carry (413 beyond).
        self.max_submit = int(max_submit)
        self._queue: queue.Queue[tuple[str, AnalysisJob | ComparisonJob]] = queue.Queue()
        self._status: dict[str, dict] = {}
        # One condition guards the status map and is notified whenever a job
        # reaches a terminal state, so waiters (long-poll handlers, the
        # facade's as_completed streaming) block instead of busy-polling.
        self._cond = threading.Condition()
        self._lock = self._cond
        #: Callbacks fired (with the finished fingerprints, or [] on stop)
        #: whenever jobs reach a terminal state — the bridge that lets an
        #: asyncio serving surface park coroutines on threaded results.
        self._result_listeners: list = []
        self._running = False
        self._stopped = False
        self._thread: threading.Thread | None = None
        self.batches_run = 0
        self._started_monotonic = time.monotonic()

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` ran — waiters return immediately from then on."""
        return self._stopped

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._stopped = False
        self._thread = threading.Thread(target=self._loop, name="engine-batcher", daemon=True)
        self._thread.start()

    def stop(self, *, timeout: float = 10.0) -> None:
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        # Release any long-poll waiters instead of leaving them to time out:
        # the flag makes wait_for/wait_any return their current view on wakeup
        # (no batcher is left to finish the work they were waiting on).
        with self._cond:
            self._stopped = True
            self._notify_finished([])

    # -- result listeners ----------------------------------------------------
    def add_result_listener(self, listener) -> None:
        """Register ``listener(fingerprints)`` for terminal transitions.

        Called with the fingerprints that just finished — or ``[]`` when the
        service stops and every waiter should be released.  Listeners fire
        under the service lock and from engine threads, so they must be quick
        and non-blocking; ``loop.call_soon_threadsafe`` qualifies.
        """
        with self._lock:
            if listener not in self._result_listeners:
                self._result_listeners.append(listener)

    def remove_result_listener(self, listener) -> None:
        with self._lock:
            if listener in self._result_listeners:
                self._result_listeners.remove(listener)

    def _notify_finished(self, fingerprints: list[str]) -> None:
        """Wake condition waiters and fire listeners.  Callers hold the lock."""
        self._cond.notify_all()
        for listener in list(self._result_listeners):
            try:
                listener(list(fingerprints))
            except Exception:  # a broken listener must not kill the batcher
                pass

    # -- submission --------------------------------------------------------
    def submit_payload(self, payload: dict) -> dict:
        """Validate one job payload and enqueue it; returns its status entry.

        Raises :class:`~repro.errors.EngineError` (or another
        :class:`~repro.errors.ReproError`) on malformed payloads — the HTTP
        layer maps those to a 400 response.
        """
        return self.submit_job(job_from_json_dict(payload))

    def submit_payloads(self, payloads: list[dict]) -> list[dict]:
        """Validate *every* payload before enqueuing *any* (all-or-nothing).

        A 400 response for a batch must mean nothing from that batch runs;
        validating lazily would execute the leading valid jobs and then
        reject the request.
        """
        if len(payloads) > self.max_submit:
            raise BatchLimitExceeded(
                f"batch of {len(payloads)} jobs exceeds the per-submission "
                f"limit of {self.max_submit}"
            )
        jobs = [job_from_json_dict(payload) for payload in payloads]
        return [self.submit_job(job) for job in jobs]

    def submit_job(self, job: AnalysisJob | ComparisonJob) -> dict:
        """Enqueue an already-validated job; returns its status entry."""
        fingerprint = job.fingerprint()
        with self._lock:
            entry = self._status.get(fingerprint)
            if entry is not None and entry["status"] in ("queued", "running", "done"):
                return dict(entry)
            # Warm hit: the whole-outcome store answers without touching the
            # queue, the batcher, or the pool — the submission is "done" the
            # moment it arrives.
            outcomes = self.engine.outcomes
            if outcomes is not None:
                cached = outcomes.get(fingerprint)
                if cached is not None:
                    entry = self._track(
                        self._entry(fingerprint, job.name, "done", cached)
                    )
                    # A WebSocket client may have subscribed to this
                    # fingerprint before submitting it; warm hits must reach
                    # those listeners like any other terminal transition.
                    self._notify_finished([fingerprint])
                    return dict(entry)
            store = self.engine.store
            if self.resume and store is not None and store.completed(fingerprint):
                entry = self._track(
                    self._entry(fingerprint, job.name, "done", store.get(fingerprint))
                )
                self._notify_finished([fingerprint])
                return dict(entry)
            entry = self._track(self._entry(fingerprint, job.name, "queued", None))
        self._queue.put((fingerprint, job))
        return dict(entry)

    def _track(self, entry: dict) -> dict:
        """Insert a status entry, evicting the oldest finished ones over the cap.

        Callers hold ``self._lock``.  Only ``done``/``failed`` entries are
        evicted (they remain answerable from the result store); in-flight
        entries are never dropped.
        """
        self._status[entry["fingerprint"]] = entry
        if len(self._status) > self.max_tracked:
            for fingerprint, tracked in list(self._status.items()):
                if len(self._status) <= self.max_tracked:
                    break
                if tracked["status"] in _FINISHED:
                    del self._status[fingerprint]
        return entry

    @staticmethod
    def _entry(fingerprint: str, name: str, status: str, result) -> dict:
        return {
            "fingerprint": fingerprint,
            "name": name,
            "status": status,
            "result": result.to_json_dict() if result is not None else None,
        }

    # -- queries -----------------------------------------------------------
    def status(self, fingerprint: str) -> dict | None:
        with self._lock:
            entry = self._status.get(fingerprint)
            if entry is not None:
                return dict(entry)
        # Evicted (or never-submitted-here) fingerprints: the result store
        # still answers for anything that finished.
        store = self.engine.store
        if store is not None:
            result = store.get(fingerprint)
            if result is not None:
                return self._entry(
                    fingerprint, result.name, "done" if result.ok else "failed", result
                )
        return None

    def capabilities(self) -> dict:
        """Service discovery payload for ``GET /v1/capabilities``."""
        return {
            "api": {"version": API_VERSION, "versions": [API_VERSION]},
            "job_schema_version": JOB_SCHEMA_VERSION,
            "server": {"name": "gleipnir-serve", "version": __version__},
            "engine": self.engine.stats(),
            "job_kinds": ["analysis_job", "comparison_job"],
            "metrics": metric_capabilities(),
            "storage_schemes": list(SUPPORTED_SCHEMES),
            "limits": {
                "max_batch_jobs": self.max_submit,
                "engine_batch_jobs": self.max_batch,
                "batch_window_seconds": self.batch_window,
                "max_wait_seconds": MAX_WAIT_SECONDS,
            },
            "endpoints": {
                "submit": f"POST /{API_VERSION}/batches",
                "job": f"GET /{API_VERSION}/jobs/<fingerprint>",
                "wait": f"GET /{API_VERSION}/jobs/<fingerprint>?wait=<seconds>",
                "stream": f"GET /{API_VERSION}/stream (WebSocket)",
                "capabilities": f"GET /{API_VERSION}/capabilities",
                "healthz": f"GET /{API_VERSION}/healthz",
                "metrics": f"GET /{API_VERSION}/metrics",
            },
            "retired_endpoints": ["POST /jobs", "GET /jobs/<fingerprint>", "GET /healthz"],
        }

    def stats(self) -> dict:
        with self._lock:
            counts: dict[str, int] = {}
            for entry in self._status.values():
                counts[entry["status"]] = counts.get(entry["status"], 0) + 1
        return {
            "status": "ok",
            "jobs": counts,
            "batches_run": self.batches_run,
            "workers": self.engine.workers,
            "queue_depth": self._queue.qsize(),
            "engine": self.engine.stats(),
        }

    def healthz(self) -> dict:
        """The ``GET /v1/healthz`` payload: liveness + capacity at a glance."""
        stats = self.stats()
        engine = self.engine
        return {
            "status": "ok",
            "version": __version__,
            "api_version": API_VERSION,
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "queue_depth": stats["queue_depth"],
            "workers": engine.workers,
            "batches_run": stats["batches_run"],
            "jobs": stats["jobs"],
            "result_store_entries": (
                len(engine.store) if engine.store is not None else None
            ),
            "outcome_store_entries": (
                len(engine.outcomes) if engine.outcomes is not None else None
            ),
        }

    def render_metrics(self) -> str:
        """The ``GET /v1/metrics`` body: Prometheus text exposition.

        Point-in-time service gauges (queue depth, tracked jobs per status)
        are refreshed into the registry at scrape time; counters and
        latency histograms accumulate as requests and batches flow.
        """
        registry = obs_metrics.get_registry()
        stats = self.stats()
        registry.gauge(
            "repro_service_queue_depth", "Jobs waiting for an engine batch."
        ).set(stats["queue_depth"])
        registry.gauge(
            "repro_service_uptime_seconds", "Seconds since service start."
        ).set(time.monotonic() - self._started_monotonic)
        registry.counter(
            "repro_service_batches_run_total", "Engine batches completed."
        ).value = float(stats["batches_run"])
        for status, count in stats["jobs"].items():
            registry.gauge(
                "repro_service_jobs",
                "Tracked job status entries, by status.",
                {"status": status},
            ).set(count)
        coefficients = (stats["engine"].get("costmodel") or {}).get("coefficients") or {}
        for solve_class, fitted in coefficients.items():
            labels = {"solve_class": solve_class, "source": fitted["source"]}
            registry.gauge(
                "repro_costmodel_per_instance_seconds",
                "Fitted marginal seconds per SDP instance, by solve class.",
                labels,
            ).set(fitted["per_instance_seconds"])
            registry.gauge(
                "repro_costmodel_setup_seconds",
                "Fitted per-group setup seconds, by solve class.",
                labels,
            ).set(fitted["setup_seconds"])
        return registry.render_prometheus()

    # -- waiting -----------------------------------------------------------
    def wait_for(self, fingerprint: str, *, timeout: float) -> dict | None:
        """Block until ``fingerprint`` finishes or ``timeout`` elapses.

        Returns the latest status entry (possibly still ``queued``/``running``
        at timeout), or None when the fingerprint is unknown to both the
        in-memory map and the result store.  Waiting uses the service's
        condition variable — notified by the batcher on every result — so
        there is no sleep loop on either side of the HTTP connection.
        """
        deadline = time.monotonic() + max(0.0, float(timeout))
        entry = self.status(fingerprint)
        while True:
            if entry is not None and entry["status"] in _FINISHED:
                return entry
            remaining = deadline - time.monotonic()
            if remaining <= 0 or entry is None:
                return entry
            with self._cond:
                # Re-check under the lock: a result recorded between the
                # status() read above and acquiring the lock would otherwise
                # be a lost wakeup.
                current = self._status.get(fingerprint)
                if current is not None and current["status"] in _FINISHED:
                    return dict(current)
                if self._stopped:
                    return dict(current) if current is not None else entry
                self._cond.wait(remaining)
            entry = self.status(fingerprint)

    def wait(self, fingerprint: str, *, timeout: float = 60.0) -> dict:
        """Block until a submitted fingerprint finishes (tests and CLIs)."""
        entry = self.wait_for(fingerprint, timeout=timeout)
        if entry is None or entry["status"] not in _FINISHED:
            raise TimeoutError(f"job {fingerprint} did not finish within {timeout:g}s")
        return entry

    def wait_any(
        self, fingerprints: set[str] | frozenset[str], *, timeout: float = 60.0
    ) -> str | None:
        """A fingerprint from ``fingerprints`` that has finished (None on timeout).

        Powers completion-order streaming (:meth:`repro.api.AnalysisSession.
        as_completed`): the caller removes the returned fingerprint from its
        pending set and calls again.
        """
        deadline = time.monotonic() + max(0.0, float(timeout))
        while True:
            with self._cond:
                for fingerprint in fingerprints:
                    entry = self._status.get(fingerprint)
                    if entry is not None and entry["status"] in _FINISHED:
                        return fingerprint
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._stopped:
                    break
                self._cond.wait(remaining)
        # Last chance: fingerprints answerable only from the result store.
        for fingerprint in fingerprints:
            entry = self.status(fingerprint)
            if entry is not None and entry["status"] in _FINISHED:
                return fingerprint
        return None

    # -- batcher -----------------------------------------------------------
    def _drain_batch(self) -> list[tuple[str, AnalysisJob | ComparisonJob]]:
        """One coalescing window: the first job blocks, the rest are gathered."""
        try:
            batch = [self._queue.get(timeout=0.1)]
        except queue.Empty:
            return []
        deadline = time.monotonic() + self.batch_window
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                batch.append(self._queue.get(timeout=remaining))
            except queue.Empty:
                break
        return batch

    def _loop(self) -> None:
        while self._running:
            batch = self._drain_batch()
            if not batch:
                continue
            with self._lock:
                for fingerprint, _ in batch:
                    self._status[fingerprint]["status"] = "running"
            try:
                report = self.engine.run([job for _, job in batch], resume=self.resume)
            except Exception as exc:  # engine must never kill the batcher
                with self._lock:
                    for fingerprint, job in batch:
                        entry = self._track(self._entry(fingerprint, job.name, "failed", None))
                        entry["error"] = f"{type(exc).__name__}: {exc}"
                    self._notify_finished([fingerprint for fingerprint, _ in batch])
                continue
            with self._lock:
                for (fingerprint, job), result in zip(batch, report.results):
                    status = "done" if result.ok else "failed"
                    self._track(self._entry(fingerprint, job.name, status, result))
                self._notify_finished([fingerprint for fingerprint, _ in batch])
            self.batches_run += 1


def make_server(service: AnalysisService, host: str = "127.0.0.1", port: int = 0):
    """An :class:`~repro.engine.aserve.AsyncAnalysisServer` bound to ``host:port``.

    Port 0 binds an ephemeral port; ``server_address`` is final on return.
    The returned object keeps the ``socketserver`` lifecycle surface
    (``serve_forever`` / ``shutdown`` / ``server_close``), so callers and
    fixtures written against the old threaded server drive it unchanged —
    but every parked long poll is now a coroutine, not a thread.
    """
    from .aserve import AsyncAnalysisServer

    return AsyncAnalysisServer(service, host, port)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gleipnir-serve",
        description="Serve Gleipnir analysis jobs over HTTP (submit, batch, await).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8780)
    parser.add_argument("--workers", type=int, default=1, help="process-pool size")
    parser.add_argument(
        "--store",
        default=None,
        help="result store path or URL (jsonl path, sqlite:///..., memory://); "
        "enables resume",
    )
    parser.add_argument("--cache-dir", default=None, help="shared on-disk bound cache directory")
    parser.add_argument(
        "--outcomes",
        default=None,
        help="whole-outcome store path or URL (jsonl path, sqlite:///..., "
        "memory://); warm hits answer without the pool",
    )
    parser.add_argument(
        "--outcomes-max-entries",
        type=int,
        default=None,
        help="LRU cap of the whole-outcome store (default: unbounded)",
    )
    parser.add_argument(
        "--batch-window", type=float, default=0.05, help="coalescing window in seconds"
    )
    parser.add_argument("--max-batch", type=int, default=32, help="max jobs per engine batch")
    parser.add_argument(
        "--max-submit", type=int, default=1024, help="max jobs in one POST /v1/batches"
    )
    parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=0.0,
        help="cross-job SDP fusion window in milliseconds (0 disables fusion)",
    )
    parser.add_argument(
        "--batch-window-max-classes",
        type=int,
        default=4096,
        help="max solve classes pooled by one fusion window",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=0,
        help="run N sharded replica processes behind a fingerprint router "
        "(0 = single process)",
    )
    parser.add_argument(
        "--shard-index",
        type=int,
        default=None,
        help="this replica's shard index (set by the --replicas supervisor)",
    )
    parser.add_argument(
        "--shard-count",
        type=int,
        default=None,
        help="total shard count (set by the --replicas supervisor)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.replicas and args.replicas > 1:
        from .replicas import serve_replicas

        return serve_replicas(args)
    if args.shard_index is not None:
        # Visible on this replica's /v1/metrics so a smoke test (or an
        # operator) can confirm which shard answered.
        obs_metrics.gauge(
            "repro_replica_shard", "This replica's shard index."
        ).set(args.shard_index)
        if args.shard_count is not None:
            obs_metrics.gauge(
                "repro_replica_shard_count", "Total replica count of this deployment."
            ).set(args.shard_count)
    try:
        engine = AnalysisEngine(
            workers=args.workers,
            store=ResultStore(args.store) if args.store else None,
            cache_dir=args.cache_dir,
            outcomes=(
                OutcomeStore(args.outcomes, max_entries=args.outcomes_max_entries)
                if args.outcomes
                else None
            ),
            batch_window_ms=args.batch_window_ms,
            batch_window_max_classes=args.batch_window_max_classes,
        )
    except StorageBackendError as exc:
        # A typo'd --store/--outcomes scheme (redis://...) is an operator
        # error, not a crash: one line naming what would work, exit 2.
        print(f"gleipnir-serve: {exc}", file=sys.stderr)
        return 2
    service = AnalysisService(
        engine,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
        max_submit=args.max_submit,
    )
    service.start()
    server = make_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    print(
        f"gleipnir-serve listening on http://{host}:{port} "
        f"(api {API_VERSION}, workers={args.workers})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
