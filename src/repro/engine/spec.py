"""Declarative, content-addressed analysis jobs.

An :class:`AnalysisJob` bundles everything one Gleipnir analysis needs — the
program, the noise model, the input state, and the :class:`AnalysisConfig` —
into a value that serializes to canonical JSON.  Canonical means: plain dicts
of primitives, rule tables in sorted order, and ``json.dumps(sort_keys=True)``
for the textual form, so two structurally identical jobs always produce the
same bytes and therefore the same SHA-256 **fingerprint**.

The fingerprint is the job's address everywhere in the engine: the process
pool dedupes on it, the :class:`~repro.engine.store.ResultStore` keys results
by it, and the serving front-end reports status under it.  Only fields that
can change the *certified bound* enter the fingerprint; execution knobs
(worker counts, cache paths, derivation collection, resource budgets) do not,
so re-running a sweep with different parallelism or budgets still finds its
prior results.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from collections.abc import Sequence

from ..circuits.circuit import Circuit
from ..circuits.program import Program
from ..circuits.serialize import program_from_json_dict, program_to_json_dict
from ..config import AnalysisConfig, ResourceGuard, SDPConfig
from ..errors import EngineError, MetricError
from ..linalg.channels import QuantumChannel
from ..noise.model import NoiseModel

__all__ = [
    "AnalysisJob",
    "ComparisonJob",
    "JobResult",
    "canonical_json",
    "config_to_json_dict",
    "config_from_json_dict",
    "job_from_json",
    "job_from_json_dict",
]

#: Schema version of the job payload; bump on incompatible format changes.
JOB_SCHEMA_VERSION = 1


def canonical_json(payload: dict) -> str:
    """The canonical textual form: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def config_to_json_dict(config: AnalysisConfig) -> dict:
    """An :class:`AnalysisConfig` as a plain dict (all fields, nested)."""
    return dataclasses.asdict(config)


def config_from_json_dict(payload: dict) -> AnalysisConfig:
    """Inverse of :func:`config_to_json_dict`."""
    try:
        data = dict(payload)
        sdp = SDPConfig(**data.pop("sdp", {}))
        guard = ResourceGuard(**data.pop("guard", {}))
        return AnalysisConfig(sdp=sdp, guard=guard, **data)
    except TypeError as exc:
        raise EngineError(f"malformed config payload: {exc}") from exc


def _semantic_config_dict(config: AnalysisConfig) -> dict:
    """The subset of the configuration that can change the certified bound.

    The MPS width changes the predicate strength; the SDP mode, iteration
    cap, tolerance, and cache quantisation change which dual certificate is
    found; the noise convention changes the analysed channel.  Everything
    else — scheduler on/off, worker counts, cache paths, derivation
    collection, resource budgets — changes *when or whether* the same bound
    is computed, never its value, and is excluded so fingerprints survive
    re-runs under different execution settings.
    """
    return {
        "mps_width": config.mps_width,
        "noise_after_gate": config.noise_after_gate,
        "sdp": {
            "mode": config.sdp.mode,
            "max_iterations": config.sdp.max_iterations,
            "tolerance": config.sdp.tolerance,
            "cache": config.sdp.cache,
            "cache_decimals": config.sdp.cache_decimals,
            "dominance_cache": config.sdp.dominance_cache,
        },
    }


@dataclasses.dataclass
class AnalysisJob:
    """One declarative analysis request.

    Attributes:
        program: the program AST to analyse.
        noise_model: the (declarative) noise model; factory-backed models are
            rejected at serialization time.
        config: analysis configuration (a private deep copy is not taken —
            the engine copies before mutating per-worker fields).
        initial_bits: computational-basis input state (None = all zeros).
        num_qubits: register size (None = inferred from the program).
        name: label used in reports and the result store.
    """

    program: Program
    noise_model: NoiseModel
    config: AnalysisConfig = dataclasses.field(default_factory=AnalysisConfig)
    initial_bits: tuple[int, ...] | None = None
    num_qubits: int | None = None
    name: str = "job"

    @classmethod
    def from_circuit(
        cls,
        circuit: Circuit | Program,
        noise_model: NoiseModel,
        *,
        config: AnalysisConfig | None = None,
        initial_bits: Sequence[int] | None = None,
        name: str | None = None,
    ) -> "AnalysisJob":
        """Build a job from a circuit (or program), mirroring ``analyze_program``."""
        if isinstance(circuit, Circuit):
            program = circuit.to_program()
            num_qubits = circuit.num_qubits
            default_name = circuit.name
        else:
            program = circuit
            num_qubits = None
            default_name = "job"
        return cls(
            program=program,
            noise_model=noise_model,
            config=config or AnalysisConfig(),
            initial_bits=tuple(int(b) for b in initial_bits) if initial_bits is not None else None,
            num_qubits=num_qubits,
            name=name or default_name,
        )

    # -- serialization -------------------------------------------------------
    def to_json_dict(self) -> dict:
        return {
            "version": JOB_SCHEMA_VERSION,
            "kind": "analysis_job",
            "name": self.name,
            "program": program_to_json_dict(self.program),
            "noise_model": self.noise_model.to_json_dict(),
            "config": config_to_json_dict(self.config),
            "initial_bits": list(self.initial_bits) if self.initial_bits is not None else None,
            "num_qubits": self.num_qubits,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "AnalysisJob":
        if not isinstance(payload, dict):
            raise EngineError(f"job payload must be a dict, got {type(payload).__name__}")
        if payload.get("kind") != "analysis_job":
            raise EngineError(f"not an analysis job payload: kind={payload.get('kind')!r}")
        version = payload.get("version")
        if version != JOB_SCHEMA_VERSION:
            raise EngineError(
                f"unsupported job schema version {version!r} (supported: {JOB_SCHEMA_VERSION})"
            )
        try:
            initial_bits = payload.get("initial_bits")
            num_qubits = payload.get("num_qubits")
            return cls(
                program=program_from_json_dict(payload["program"]),
                noise_model=NoiseModel.from_json_dict(payload["noise_model"]),
                config=config_from_json_dict(payload.get("config", {})),
                initial_bits=(
                    tuple(int(b) for b in initial_bits) if initial_bits is not None else None
                ),
                num_qubits=int(num_qubits) if num_qubits is not None else None,
                name=str(payload.get("name", "job")),
            )
        except KeyError as exc:
            raise EngineError(f"job payload missing field {exc}") from exc

    def to_json(self) -> str:
        return canonical_json(self.to_json_dict())

    @classmethod
    def from_json(cls, text: str) -> "AnalysisJob":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise EngineError(f"job payload is not valid JSON: {exc}") from exc
        return cls.from_json_dict(payload)

    # -- identity ------------------------------------------------------------
    def fingerprint(self) -> str:
        """Content address of this job (SHA-256 over the canonical form).

        Stable across processes, insensitive to dict/rule ordering, and
        independent of execution knobs (see :func:`_semantic_config_dict`).
        Memoised on the instance: jobs are declarative requests, never
        mutated after construction, and re-serializing the whole program on
        every warm engine pass would dominate the outcome-store hit path.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        payload = {
            "version": JOB_SCHEMA_VERSION,
            "program": program_to_json_dict(self.program),
            "noise_model": self.noise_model.to_json_dict(),
            "config": _semantic_config_dict(self.config),
            "initial_bits": list(self.initial_bits) if self.initial_bits is not None else None,
            "num_qubits": self.num_qubits,
        }
        digest = hashlib.sha256(canonical_json(payload).encode()).hexdigest()
        self.__dict__["_fingerprint"] = digest
        return digest


@dataclasses.dataclass
class ComparisonJob:
    """One declarative comparison request — two channels, or two noise models.

    The second job family the engine executes.  Two mutually exclusive modes:

    * **channels** — compare two arbitrary same-arity
      :class:`~repro.linalg.channels.QuantumChannel` objects under a
      registered channel metric (``diamond_norm``, ``trace_norm``,
      ``process_fidelity``, ...);
    * **ab** — diff two :class:`~repro.noise.model.NoiseModel`\\ s over one
      program ("how much does this calibration drift cost?"): the engine runs
      the full certified analysis under each model and reports the drift
      between the two bounds, with both dual certificate sets harvested.

    Like :class:`AnalysisJob`, a job is content-addressed by the SHA-256 of
    its canonical JSON (``kind`` included, so the two families can never
    collide), which is what lets dedupe, the outcome cache, sharding, and
    replicas treat comparisons exactly like analyses.
    """

    metric: str = "diamond_norm"
    channel_a: QuantumChannel | None = None
    channel_b: QuantumChannel | None = None
    program: Program | None = None
    noise_model_a: NoiseModel | None = None
    noise_model_b: NoiseModel | None = None
    config: AnalysisConfig = dataclasses.field(default_factory=AnalysisConfig)
    initial_bits: tuple[int, ...] | None = None
    num_qubits: int | None = None
    name: str = "comparison"

    def __post_init__(self) -> None:
        channels = self.channel_a is not None or self.channel_b is not None
        ab = (
            self.program is not None
            or self.noise_model_a is not None
            or self.noise_model_b is not None
        )
        if channels and ab:
            raise MetricError(
                "a comparison job is either two channels or a program with two "
                "noise models, not both"
            )
        if channels:
            if self.channel_a is None or self.channel_b is None:
                raise MetricError("channel comparisons need both channel_a and channel_b")
        elif ab:
            if (
                self.program is None
                or self.noise_model_a is None
                or self.noise_model_b is None
            ):
                raise MetricError(
                    "noise-model A/B comparisons need a program plus both "
                    "noise_model_a and noise_model_b"
                )
        else:
            raise MetricError(
                "empty comparison job: provide two channels or a program with "
                "two noise models"
            )
        if not str(self.metric):
            raise MetricError("comparison jobs need a metric name")

    @property
    def mode(self) -> str:
        """``"channels"`` or ``"ab"`` (validated at construction)."""
        return "channels" if self.channel_a is not None else "ab"

    @classmethod
    def from_channels(
        cls,
        channel_a: QuantumChannel,
        channel_b: QuantumChannel,
        *,
        metric: str = "diamond_norm",
        config: AnalysisConfig | None = None,
        name: str | None = None,
    ) -> "ComparisonJob":
        """A channel-pair comparison under a registered metric."""
        return cls(
            metric=metric,
            channel_a=channel_a,
            channel_b=channel_b,
            config=config or AnalysisConfig(),
            name=name or f"{metric}({channel_a.name},{channel_b.name})",
        )

    @classmethod
    def from_noise_models(
        cls,
        circuit: Circuit | Program,
        noise_model_a: NoiseModel,
        noise_model_b: NoiseModel,
        *,
        metric: str = "bound_drift",
        config: AnalysisConfig | None = None,
        initial_bits: Sequence[int] | None = None,
        name: str | None = None,
    ) -> "ComparisonJob":
        """A noise-model A/B comparison over one program."""
        if isinstance(circuit, Circuit):
            program = circuit.to_program()
            num_qubits = circuit.num_qubits
            default_name = f"{metric}({circuit.name})"
        else:
            program = circuit
            num_qubits = None
            default_name = metric
        return cls(
            metric=metric,
            program=program,
            noise_model_a=noise_model_a,
            noise_model_b=noise_model_b,
            config=config or AnalysisConfig(),
            initial_bits=(
                tuple(int(b) for b in initial_bits) if initial_bits is not None else None
            ),
            num_qubits=num_qubits,
            name=name or default_name,
        )

    # -- serialization -------------------------------------------------------
    def to_json_dict(self) -> dict:
        payload = {
            "version": JOB_SCHEMA_VERSION,
            "kind": "comparison_job",
            "name": self.name,
            "metric": self.metric,
            "mode": self.mode,
            "config": config_to_json_dict(self.config),
            "initial_bits": list(self.initial_bits) if self.initial_bits is not None else None,
            "num_qubits": self.num_qubits,
        }
        if self.mode == "channels":
            payload["channel_a"] = self.channel_a.to_json_dict()
            payload["channel_b"] = self.channel_b.to_json_dict()
        else:
            payload["program"] = program_to_json_dict(self.program)
            payload["noise_model_a"] = self.noise_model_a.to_json_dict()
            payload["noise_model_b"] = self.noise_model_b.to_json_dict()
        return payload

    @classmethod
    def from_json_dict(cls, payload: dict) -> "ComparisonJob":
        if not isinstance(payload, dict):
            raise EngineError(f"job payload must be a dict, got {type(payload).__name__}")
        if payload.get("kind") != "comparison_job":
            raise EngineError(f"not a comparison job payload: kind={payload.get('kind')!r}")
        version = payload.get("version")
        if version != JOB_SCHEMA_VERSION:
            raise EngineError(
                f"unsupported job schema version {version!r} (supported: {JOB_SCHEMA_VERSION})"
            )
        try:
            initial_bits = payload.get("initial_bits")
            num_qubits = payload.get("num_qubits")
            common = dict(
                metric=str(payload["metric"]),
                config=config_from_json_dict(payload.get("config", {})),
                initial_bits=(
                    tuple(int(b) for b in initial_bits) if initial_bits is not None else None
                ),
                num_qubits=int(num_qubits) if num_qubits is not None else None,
                name=str(payload.get("name", "comparison")),
            )
            if payload.get("mode") == "channels":
                return cls(
                    channel_a=QuantumChannel.from_json_dict(payload["channel_a"]),
                    channel_b=QuantumChannel.from_json_dict(payload["channel_b"]),
                    **common,
                )
            return cls(
                program=program_from_json_dict(payload["program"]),
                noise_model_a=NoiseModel.from_json_dict(payload["noise_model_a"]),
                noise_model_b=NoiseModel.from_json_dict(payload["noise_model_b"]),
                **common,
            )
        except KeyError as exc:
            raise EngineError(f"job payload missing field {exc}") from exc

    def to_json(self) -> str:
        return canonical_json(self.to_json_dict())

    @classmethod
    def from_json(cls, text: str) -> "ComparisonJob":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise EngineError(f"job payload is not valid JSON: {exc}") from exc
        return cls.from_json_dict(payload)

    # -- identity ------------------------------------------------------------
    def fingerprint(self) -> str:
        """Content address (SHA-256 over the canonical form, ``kind`` included).

        Same exclusion rule as :meth:`AnalysisJob.fingerprint`: the label and
        execution knobs stay out, so re-submitting the same comparison under
        different parallelism or names still hits the caches.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        payload = {
            "version": JOB_SCHEMA_VERSION,
            "kind": "comparison_job",
            "metric": self.metric,
            "mode": self.mode,
            "config": _semantic_config_dict(self.config),
            "initial_bits": list(self.initial_bits) if self.initial_bits is not None else None,
            "num_qubits": self.num_qubits,
        }
        if self.mode == "channels":
            payload["channel_a"] = self.channel_a.to_json_dict()
            payload["channel_b"] = self.channel_b.to_json_dict()
        else:
            payload["program"] = program_to_json_dict(self.program)
            payload["noise_model_a"] = self.noise_model_a.to_json_dict()
            payload["noise_model_b"] = self.noise_model_b.to_json_dict()
        digest = hashlib.sha256(canonical_json(payload).encode()).hexdigest()
        self.__dict__["_fingerprint"] = digest
        return digest


#: Payload ``kind`` -> job class, for :func:`job_from_json_dict`.
JOB_KINDS = {
    "analysis_job": AnalysisJob,
    "comparison_job": ComparisonJob,
}


def job_from_json_dict(payload: dict) -> "AnalysisJob | ComparisonJob":
    """Deserialize any job payload, dispatching on its ``kind`` field.

    Payloads without a ``kind`` are treated as analysis jobs (the only family
    that existed before comparisons), so pre-dispatch clients keep working.
    """
    if not isinstance(payload, dict):
        raise EngineError(f"job payload must be a dict, got {type(payload).__name__}")
    kind = payload.get("kind", "analysis_job")
    cls = JOB_KINDS.get(kind)
    if cls is None:
        supported = ", ".join(sorted(JOB_KINDS))
        raise EngineError(f"unknown job kind {kind!r} (supported: {supported})")
    if "kind" not in payload:
        payload = {**payload, "kind": "analysis_job"}
    return cls.from_json_dict(payload)


def job_from_json(text: str) -> "AnalysisJob | ComparisonJob":
    """:func:`job_from_json_dict` over a canonical-JSON string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise EngineError(f"job payload is not valid JSON: {exc}") from exc
    return job_from_json_dict(payload)


@dataclasses.dataclass
class JobResult:
    """The JSON-serializable outcome of one executed job.

    A deliberately flat record (no derivation tree, no numpy arrays) so it
    crosses process boundaries cheaply and appends to the JSONL store as one
    line.  ``status`` is ``"ok"``, ``"timeout"`` (the per-job
    :class:`~repro.config.ResourceGuard` budget fired), or ``"error"``.
    """

    fingerprint: str
    name: str
    status: str = "ok"
    error_bound: float | None = None
    final_delta: float | None = None
    num_gates: int = 0
    num_branches: int = 0
    elapsed_seconds: float = 0.0
    sdp_solves: int = 0
    sdp_cache_hits: int = 0
    sdp_dominance_hits: int = 0
    scheduled_solves: int = 0
    mps_walks: int = 0
    mps_width: int = 0
    noise_model: str = ""
    tape_steps_reused: int = 0
    #: Comparison-job fields: the metric name and certification tier, plus the
    #: per-side bounds of a noise-model A/B diff (``error_bound`` then holds
    #: the drift ``|value_a - value_b|``).  Empty/None on analysis jobs.
    metric: str = ""
    metric_tier: str = ""
    value_a: float | None = None
    value_b: float | None = None
    error: str | None = None
    #: Structured per-phase breakdown (``repro.obs`` span totals): wall-clock
    #: seconds per analysis phase plus per-solve-class solve timings — the
    #: training data for a cross-job cost model.  Always present on executed
    #: jobs; empty on legacy store records.
    timings: dict = dataclasses.field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json_dict(cls, payload: dict) -> "JobResult":
        try:
            known = {field.name for field in dataclasses.fields(cls)}
            return cls(**{key: value for key, value in payload.items() if key in known})
        except TypeError as exc:
            raise EngineError(f"malformed result payload: {exc}") from exc
