"""Per-solve-class SDP cost model and cost-aware chunk packing.

The bound scheduler used to spread pending solve classes over its worker
threads with a stride over a shape-sorted order — an even *count* per worker,
not an even *cost*.  Template shapes differ by orders of magnitude (a dim16
constrained problem costs far more per ADMM iteration than a dim4 one), so a
chunk that happens to collect the large shapes finishes long after the rest.

This module replaces the stride with a fitted cost model:

* every batched solve records one ``{"solve_class", "count", "seconds"}``
  event (see :func:`repro.sdp.diamond.constrained_diamond_norms_batch`), and
  those events are persisted with each :class:`~repro.engine.spec.JobResult`
  through the result/outcome stores — the training data;
* :class:`SolveCostModel` fits, per solve class, ``seconds ≈ setup +
  per_instance · count`` by least squares over the observed events (with a
  total-ratio fallback when the counts do not vary enough to identify an
  intercept);
* classes never seen before fall back to a **dim³ prior**: ADMM iteration
  cost is dominated by dense eigendecompositions of the ``big``-dimensional
  blocks, so predicted seconds scale as ``big**3`` parsed from the class
  label (``dim16_constrained`` → 16³) — only the *relative* ordering matters
  for packing, so the prior's absolute scale is inconsequential;
* :func:`lpt_pack` packs items into worker bins by predicted cost
  (longest-processing-time-first greedy), which is deterministic under fixed
  costs and keeps the makespan within 4/3 of optimal.

The packing only chooses *which thread solves which class*; per-element
bounds are independent of batch composition (the documented property of the
batched kernel), so any packing yields bit-identical certified bounds.

A process-wide model instance (:func:`global_model`) accumulates
observations across analyses: the scheduler feeds it after every batched
solve phase and the engine warms it from an attached result store, so the
second batch of a serving process already packs by measured costs.
"""

from __future__ import annotations

import dataclasses
import re
import threading

__all__ = [
    "ClassCoefficients",
    "SolveCostModel",
    "COLD_PRIOR_SECONDS_PER_DIM3",
    "PREDICTION_ERROR_BUCKETS",
    "global_model",
    "reset_global_model",
    "lpt_pack",
    "parse_label_big",
]


#: Prior seconds per instance per unit of ``big³`` for never-observed classes.
#: Only the big³ *shape* matters (packing compares predictions against each
#: other); the absolute scale is a rough fit of the batched ADMM kernel on a
#: commodity core.
COLD_PRIOR_SECONDS_PER_DIM3 = 2e-6

#: ``big`` assumed when a class label does not parse (foreign labels keep a
#: small positive cost instead of breaking the packing).
_FALLBACK_BIG = 4

#: Histogram buckets for the predicted-vs-actual *relative error* of the
#: model (``|predicted - actual| / actual``).  The registry's default
#: buckets are latency-shaped; a ratio needs its own grid.
PREDICTION_ERROR_BUCKETS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0)

#: Observations retained per class (oldest dropped beyond this); enough for
#: a stable fit without unbounded growth in long-lived serving processes.
_MAX_OBSERVATIONS_PER_CLASS = 512

_LABEL_RE = re.compile(r"^dim(\d+)_(constrained|unconstrained)$")


def parse_label_big(label: str) -> int:
    """The template dimension ``big`` encoded in a solve-class label.

    Labels come from :func:`repro.sdp.diamond.solve_class_label`
    (``dim{big}_{constrained|unconstrained}``); anything else gets the
    fallback dimension so the prior stays positive.
    """
    match = _LABEL_RE.match(str(label))
    if match is None:
        return _FALLBACK_BIG
    return max(1, int(match.group(1)))


@dataclasses.dataclass(frozen=True)
class ClassCoefficients:
    """Fitted (or prior) cost coefficients of one solve class.

    ``seconds ≈ setup_seconds + per_instance_seconds * count``.  ``source``
    records how the numbers were obtained: ``"fitted"`` (least squares over
    varied counts), ``"ratio"`` (total seconds / total count — counts did
    not vary enough to identify an intercept), or ``"prior"`` (the cold dim³
    fallback, zero observations).
    """

    setup_seconds: float
    per_instance_seconds: float
    observations: int
    source: str

    def predict(self, count: int) -> float:
        return self.setup_seconds + self.per_instance_seconds * max(0, int(count))

    def to_json_dict(self) -> dict:
        return dataclasses.asdict(self)


def _prior_coefficients(label: str) -> ClassCoefficients:
    big = parse_label_big(label)
    return ClassCoefficients(
        setup_seconds=0.0,
        per_instance_seconds=COLD_PRIOR_SECONDS_PER_DIM3 * float(big) ** 3,
        observations=0,
        source="prior",
    )


class SolveCostModel:
    """Predict per-solve-class seconds from recorded timing events.

    Thread-safe: the scheduler's worker threads observe concurrently with
    the engine thread reading coefficients.  Fits are computed lazily and
    cached until the next observation of that class.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: dict[str, list[tuple[int, float]]] = {}
        self._fits: dict[str, ClassCoefficients] = {}

    # -- training ------------------------------------------------------------
    def observe(self, label: str, count: int, seconds: float) -> None:
        """Record one solved template group (one timing event)."""
        count = int(count)
        seconds = float(seconds)
        if count <= 0 or seconds < 0.0:
            return
        with self._lock:
            events = self._events.setdefault(str(label), [])
            events.append((count, seconds))
            if len(events) > _MAX_OBSERVATIONS_PER_CLASS:
                del events[: len(events) - _MAX_OBSERVATIONS_PER_CLASS]
            self._fits.pop(str(label), None)

    def observe_events(self, events) -> None:
        """Record a batch of ``{"solve_class", "count", "seconds"}`` events."""
        for event in events or ():
            try:
                self.observe(event["solve_class"], event["count"], event["seconds"])
            except (KeyError, TypeError, ValueError):
                continue  # foreign/legacy event shapes train nothing

    def ingest_timings(self, timings: dict | None) -> None:
        """Train from one :class:`~repro.engine.spec.JobResult` timings dict."""
        if isinstance(timings, dict):
            self.observe_events(timings.get("solve_classes"))

    def warm_from_results(self, results) -> int:
        """Train from stored job results (e.g. ``ResultStore.results().values()``).

        Returns the number of results that carried solve-class events — the
        cold-start path of a resumed serving process.
        """
        warmed = 0
        for result in results:
            timings = getattr(result, "timings", None)
            if isinstance(timings, dict) and timings.get("solve_classes"):
                self.ingest_timings(timings)
                warmed += 1
        return warmed

    # -- prediction ----------------------------------------------------------
    def _fit(self, label: str) -> ClassCoefficients:
        events = self._events.get(label)
        if not events:
            return _prior_coefficients(label)
        total_count = sum(count for count, _ in events)
        total_seconds = sum(seconds for _, seconds in events)
        ratio = ClassCoefficients(
            setup_seconds=0.0,
            per_instance_seconds=total_seconds / max(total_count, 1),
            observations=len(events),
            source="ratio",
        )
        counts = {count for count, _ in events}
        if len(events) < 2 or len(counts) < 2:
            return ratio
        # Least squares for seconds = setup + per_instance * count.  Closed
        # form (no numpy import: this module must stay importable from the
        # scheduler without pulling the SDP stack).
        n = float(len(events))
        sum_c = float(sum(count for count, _ in events))
        sum_s = float(total_seconds)
        sum_cc = float(sum(count * count for count, _ in events))
        sum_cs = float(sum(count * seconds for count, seconds in events))
        denominator = n * sum_cc - sum_c * sum_c
        if denominator <= 0.0:
            return ratio
        slope = (n * sum_cs - sum_c * sum_s) / denominator
        intercept = (sum_s - slope * sum_c) / n
        if slope <= 0.0 or intercept < 0.0:
            # A non-physical fit (negative marginal cost, or negative setup
            # from noise) packs worse than the plain ratio.
            return ratio
        return ClassCoefficients(
            setup_seconds=intercept,
            per_instance_seconds=slope,
            observations=len(events),
            source="fitted",
        )

    def coefficients_for(self, label: str) -> ClassCoefficients:
        """The current coefficients of one class (fitting lazily)."""
        label = str(label)
        with self._lock:
            cached = self._fits.get(label)
            if cached is None:
                cached = self._fit(label)
                if cached.source != "prior":
                    self._fits[label] = cached
            return cached

    def predict(self, label: str, count: int = 1) -> float:
        """Predicted wall-clock seconds to solve ``count`` instances of a class."""
        return self.coefficients_for(label).predict(count)

    def coefficients(self) -> dict[str, dict]:
        """Every observed class's coefficients (for ``stats()``/metrics)."""
        with self._lock:
            labels = sorted(self._events)
        return {label: self.coefficients_for(label).to_json_dict() for label in labels}


# ---------------------------------------------------------------------------
# Process-wide model
# ---------------------------------------------------------------------------

_GLOBAL_MODEL = SolveCostModel()
_GLOBAL_LOCK = threading.Lock()


def global_model() -> SolveCostModel:
    """The process-wide cost model shared by scheduler and engine."""
    return _GLOBAL_MODEL


def reset_global_model() -> SolveCostModel:
    """Replace the process-wide model with a fresh one (tests)."""
    global _GLOBAL_MODEL
    with _GLOBAL_LOCK:
        _GLOBAL_MODEL = SolveCostModel()
    return _GLOBAL_MODEL


# ---------------------------------------------------------------------------
# Packing
# ---------------------------------------------------------------------------

def lpt_pack(costs: list[float], bins: int) -> list[list[int]]:
    """Pack item indices into ``bins`` lists by longest-processing-time first.

    Items are taken in decreasing cost (ties broken by index, so the packing
    is deterministic under fixed costs) and each is assigned to the currently
    least-loaded bin (ties again by bin index).  Every index appears in
    exactly one bin; with ``len(costs) >= bins`` every bin is non-empty.
    Within a bin, indices are returned ascending — callers preserve their
    collection order inside each chunk.
    """
    bins = max(1, int(bins))
    packed: list[list[int]] = [[] for _ in range(bins)]
    if not costs:
        return packed
    loads = [0.0] * bins
    order = sorted(range(len(costs)), key=lambda index: (-float(costs[index]), index))
    for index in order:
        target = min(range(bins), key=lambda b: (loads[b], b))
        packed[target].append(index)
        # A zero-cost floor keeps degenerate (all-zero) predictions spreading
        # round-robin instead of piling into bin 0.
        loads[target] += max(float(costs[index]), 1e-12)
    for chunk in packed:
        chunk.sort()
    return packed
