"""The in-memory backends: tests, ephemeral replicas, and warm-only caches.

``memory://`` opens a fresh private backend (nothing survives the instance);
``memory://<name>`` opens a process-wide **shared** backend under that name,
so two facades — say a service's engine and a test asserting against it —
observe the same entries, and "reopening" the same URL behaves like reloading
a file.  Nothing ever touches disk; a process exit discards everything,
which is exactly what an ephemeral serving replica wants.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable

from ..spec import JobResult
from .base import OutcomeBackend, ResultBackend

__all__ = [
    "MemoryOutcomeBackend",
    "MemoryResultBackend",
    "reset_shared_memory",
]

#: name -> {"results": dict, "outcomes": dict}; shared stores by URL name.
_SHARED: dict[str, dict] = {}
_SHARED_LOCK = threading.Lock()


def _shared_map(name: str, kind: str) -> dict:
    with _SHARED_LOCK:
        return _SHARED.setdefault(name, {"results": {}, "outcomes": {}})[kind]


def reset_shared_memory() -> None:
    """Drop every named ``memory://`` store (test isolation)."""
    with _SHARED_LOCK:
        _SHARED.clear()


class MemoryResultBackend(ResultBackend):
    """A dict of results; named instances share one dict process-wide."""

    name = "memory"

    def __init__(self, tag: str = ""):
        self.location = f"memory://{tag}"
        self._results: dict[str, JobResult] = (
            _shared_map(tag, "results") if tag else {}
        )

    def get(self, fingerprint: str) -> JobResult | None:
        return self._results.get(fingerprint)

    def contains(self, fingerprint: str) -> bool:
        return fingerprint in self._results

    def count(self) -> int:
        return len(self._results)

    def results(self) -> dict[str, JobResult]:
        return dict(self._results)

    def put_many(self, results: Iterable[JobResult]) -> None:
        for result in results:
            self._results[result.fingerprint] = result


class MemoryOutcomeBackend(OutcomeBackend):
    """A dict of outcome entries; insertion order doubles as recency order."""

    name = "memory"

    def __init__(self, tag: str = ""):
        self.location = f"memory://{tag}"
        self._entries: dict[str, dict] = _shared_map(tag, "outcomes") if tag else {}

    def get_entry(self, fingerprint: str, *, touch: bool = True) -> dict | None:
        entry = self._entries.get(fingerprint)
        if entry is not None and touch:
            self._entries.pop(fingerprint, None)
            self._entries[fingerprint] = entry
        return entry

    def put_entry(
        self, fingerprint: str, result: JobResult, certificates: list[dict]
    ) -> None:
        self._entries.pop(fingerprint, None)
        self._entries[fingerprint] = {"result": result, "certificates": certificates}

    def delete(self, fingerprint: str) -> bool:
        return self._entries.pop(fingerprint, None) is not None

    def evict_lru(self, max_entries: int, pinned: frozenset[str]) -> int:
        evicted = 0
        for fingerprint in list(self._entries):
            if len(self._entries) <= max_entries:
                break
            if fingerprint in pinned:
                continue
            del self._entries[fingerprint]
            evicted += 1
        return evicted

    def count(self) -> int:
        return len(self._entries)

    def contains(self, fingerprint: str) -> bool:
        return fingerprint in self._entries
