"""Backend protocols and URL-style backend selection.

A *backend* is the storage engine behind one of the two persistence facades:

* :class:`ResultBackend` holds the latest :class:`~repro.engine.spec.JobResult`
  per fingerprint (the resumable sweep log behind
  :class:`~repro.engine.store.ResultStore`);
* :class:`OutcomeBackend` holds whole outcome *entries* — a successful result
  plus the raw (wire-dict) dual certificates behind it, in recency order —
  behind :class:`~repro.engine.outcomes.OutcomeStore`.

The facades own policy (locking, LRU caps, pinning, certificate verification,
hit/miss accounting); backends own mechanism (how bytes reach disk, how
recency is tracked, what eviction and compaction mean for that medium).
Backends therefore do **not** need to be thread-safe: every call arrives
under the owning facade's lock.

Backends are selected by URL-style paths on the existing ``--store`` /
``--outcomes`` flags:

================  =====================================================
URL               backend
================  =====================================================
``results.jsonl``  JSONL file (bare paths keep their historical meaning)
``jsonl://p``      JSONL file at ``p`` (explicit form)
``sqlite:///p``    SQLite database at relative path ``p`` (WAL mode)
``sqlite:////p``   SQLite database at absolute path ``/p``
``memory://``      fresh private in-memory backend
``memory://name``  process-wide shared in-memory backend called ``name``
================  =====================================================
"""

from __future__ import annotations

import abc
from collections.abc import Iterable

from ...errors import EngineError, StorageBackendError
from ...obs import metrics as obs_metrics
from ..spec import JobResult

__all__ = [
    "OutcomeBackend",
    "ResultBackend",
    "SUPPORTED_SCHEMES",
    "count_backend_op",
    "parse_storage_url",
]

#: Every URL scheme the backend registry can open (advertised in errors and
#: capability payloads; bare paths additionally mean JSONL).
SUPPORTED_SCHEMES = ("jsonl", "sqlite", "memory")


def parse_storage_url(url: str) -> tuple[str, str]:
    """Split a storage URL into ``(scheme, location)``.

    Bare paths (no recognised scheme) are JSONL, which keeps every
    pre-backend ``--store results.jsonl`` invocation meaning exactly what it
    always did.  ``sqlite://`` follows the SQLAlchemy convention: three
    slashes for a relative path, four for an absolute one.
    """
    url = str(url)
    if url.startswith("memory://"):
        return "memory", url[len("memory://") :]
    if url.startswith("sqlite://"):
        location = url[len("sqlite://") :]
        if location.startswith("/"):
            location = location[1:]
        if not location:
            raise EngineError(
                "sqlite:// URLs need a database path, e.g. sqlite:///results.db"
            )
        return "sqlite", location
    if url.startswith("jsonl://"):
        location = url[len("jsonl://") :]
        if not location:
            raise EngineError("jsonl:// URLs need a file path, e.g. jsonl://results.jsonl")
        return "jsonl", location
    if "://" in url:
        scheme = url.split("://", 1)[0]
        supported = ", ".join(f"{name}://" for name in SUPPORTED_SCHEMES)
        raise StorageBackendError(
            f"unknown storage backend scheme {scheme!r} "
            f"(supported: {supported}, or a bare JSONL path)",
            scheme=scheme,
            supported=SUPPORTED_SCHEMES,
        )
    return "jsonl", url


def count_backend_op(backend: str, op: str) -> None:
    """One backend operation into the metric registry."""
    obs_metrics.counter(
        "repro_backend_ops_total",
        "Storage backend operations, by backend scheme and operation.",
        {"backend": backend, "op": op},
    ).inc()


class ResultBackend(abc.ABC):
    """Storage engine behind :class:`~repro.engine.store.ResultStore`.

    Calls arrive serialized (the facade holds its lock); implementations own
    durability and the later-lines-win / latest-record-wins semantics.
    """

    #: Backend scheme label used in ``repro_backend_ops_total``.
    name: str = "abstract"
    #: Human-readable storage location (file path, database path, or tag).
    location: str = ""

    @abc.abstractmethod
    def get(self, fingerprint: str) -> JobResult | None:
        """The latest result recorded for ``fingerprint``, or None."""

    @abc.abstractmethod
    def contains(self, fingerprint: str) -> bool:
        """Whether any result is recorded for ``fingerprint``."""

    @abc.abstractmethod
    def count(self) -> int:
        """Number of fingerprints with a recorded result."""

    @abc.abstractmethod
    def results(self) -> dict[str, JobResult]:
        """The full latest-result-per-fingerprint map.

        May materialise every record; callers treat it as a snapshot, not a
        hot-path primitive.
        """

    @abc.abstractmethod
    def put_many(self, results: Iterable[JobResult]) -> None:
        """Durably record results; later writes supersede earlier ones."""

    @property
    def skipped_lines(self) -> int:
        """Unparseable records tolerated at load (0 for structured backends)."""
        return 0

    def close(self) -> None:
        """Release held resources (connections, registry references)."""


class OutcomeBackend(abc.ABC):
    """Storage engine behind :class:`~repro.engine.outcomes.OutcomeStore`.

    An *entry* is ``{"result": JobResult, "certificates": [raw dict, ...]}``
    — certificates stay in their wire form so the blind-lookup hot path never
    pays base64 decoding.  Backends track recency (a ``get_entry`` with
    ``touch=True`` makes the entry most-recent) so the facade's LRU policy
    works without the backend knowing the cap.
    """

    name: str = "abstract"
    location: str = ""

    @abc.abstractmethod
    def get_entry(self, fingerprint: str, *, touch: bool = True) -> dict | None:
        """The stored entry for ``fingerprint`` (refreshing recency), or None."""

    @abc.abstractmethod
    def put_entry(
        self, fingerprint: str, result: JobResult, certificates: list[dict]
    ) -> None:
        """Durably record one entry as the most recent; later puts win."""

    @abc.abstractmethod
    def delete(self, fingerprint: str) -> bool:
        """Drop one entry (failed verification); True when it existed."""

    @abc.abstractmethod
    def evict_lru(self, max_entries: int, pinned: frozenset[str]) -> int:
        """Evict least-recently-used unpinned entries down to ``max_entries``.

        Returns the number evicted.  Pinned fingerprints are skipped, so the
        store may transiently stay over the cap until pins are released.
        """

    @abc.abstractmethod
    def count(self) -> int:
        """Number of live entries."""

    @abc.abstractmethod
    def contains(self, fingerprint: str) -> bool:
        """Whether a live entry exists for ``fingerprint``."""

    @property
    def skipped_lines(self) -> int:
        """Unparseable records tolerated at load (0 for structured backends)."""
        return 0

    def compact(self) -> None:
        """Reclaim dead storage if the medium accumulates any (no-op default)."""

    def close(self) -> None:
        """Release held resources (connections, registry references)."""
