"""The SQLite backends: WAL-journaled stores that never load fully into memory.

Every lookup is a point query and every write is one transaction, so a
service fronting a store of millions of outcomes starts instantly and keeps a
bounded resident set — the JSONL backends' load-everything-at-init cost is
exactly what this backend removes.  ``PRAGMA journal_mode=WAL`` lets
concurrent readers (other threads via their own handles, other processes,
``sqlite3`` CLI inspection) proceed while this process appends.

Durability: WAL + ``synchronous=NORMAL`` persists committed transactions
across process crashes (the same discipline the JSONL backends' per-append
fsync buys), and a kill mid-transaction rolls back to the previous committed
state — structurally incapable of the torn trailing line JSONL heals around,
which is why ``skipped_lines`` is always 0 here.

Recency for the outcome LRU is a monotonically increasing ``recency`` column
maintained under the owning facade's lock; eviction is a single indexed
``ORDER BY recency`` scan.
"""

from __future__ import annotations

import json
import os
import sqlite3
from collections.abc import Iterable

from ...errors import EngineError
from ...obs import metrics as obs_metrics
from ..spec import JobResult, canonical_json
from .base import OutcomeBackend, ResultBackend
from .jsonl import entry_from_outcome_record, outcome_record_line

__all__ = ["SqliteOutcomeBackend", "SqliteResultBackend"]


def _open_connections_gauge():
    return obs_metrics.gauge(
        "repro_backend_sqlite_open_connections",
        "SQLite backend connections currently open in this process.",
    )


class _SqliteBackendMixin:
    """Connection lifecycle shared by both SQLite backends."""

    def _connect(self, path: str, schema: str) -> sqlite3.Connection:
        self.location = str(path)
        parent = os.path.dirname(os.path.abspath(self.location))
        os.makedirs(parent, exist_ok=True)
        # The owning facade serializes all access under its lock, so one
        # connection crossing threads is safe; check_same_thread would only
        # reject the service batcher thread writing what a handler read.
        connection = sqlite3.connect(self.location, check_same_thread=False)
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=NORMAL")
        connection.execute(schema)
        connection.commit()
        self._closed = False
        _open_connections_gauge().inc()
        return connection

    def close(self) -> None:
        if getattr(self, "_closed", True):
            return
        self._closed = True
        self._connection.close()
        _open_connections_gauge().dec()


class SqliteResultBackend(_SqliteBackendMixin, ResultBackend):
    """One row per fingerprint; ``INSERT OR REPLACE`` is later-lines-win."""

    name = "sqlite"

    _SCHEMA = (
        "CREATE TABLE IF NOT EXISTS results ("
        " fingerprint TEXT PRIMARY KEY,"
        " ok INTEGER NOT NULL,"
        " payload TEXT NOT NULL)"
    )

    def __init__(self, path: str):
        self._connection = self._connect(path, self._SCHEMA)

    def get(self, fingerprint: str) -> JobResult | None:
        row = self._connection.execute(
            "SELECT payload FROM results WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        if row is None:
            return None
        try:
            return JobResult.from_json_dict(json.loads(row[0]))
        except (json.JSONDecodeError, EngineError) as exc:
            raise EngineError(
                f"corrupt result row for fingerprint {fingerprint!r}: {exc}"
            ) from exc

    def contains(self, fingerprint: str) -> bool:
        row = self._connection.execute(
            "SELECT 1 FROM results WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        return row is not None

    def count(self) -> int:
        return int(self._connection.execute("SELECT COUNT(*) FROM results").fetchone()[0])

    def results(self) -> dict[str, JobResult]:
        snapshot: dict[str, JobResult] = {}
        for fingerprint, payload in self._connection.execute(
            "SELECT fingerprint, payload FROM results"
        ):
            try:
                snapshot[fingerprint] = JobResult.from_json_dict(json.loads(payload))
            except (json.JSONDecodeError, EngineError):
                continue
        return snapshot

    def put_many(self, results: Iterable[JobResult]) -> None:
        rows = [
            (
                result.fingerprint,
                1 if result.ok else 0,
                canonical_json(result.to_json_dict()),
            )
            for result in results
        ]
        with self._connection:  # one transaction per batch, like one fsync
            self._connection.executemany(
                "INSERT OR REPLACE INTO results (fingerprint, ok, payload)"
                " VALUES (?, ?, ?)",
                rows,
            )


class SqliteOutcomeBackend(_SqliteBackendMixin, OutcomeBackend):
    """One row per outcome; an indexed ``recency`` column carries LRU order."""

    name = "sqlite"

    _SCHEMA = (
        "CREATE TABLE IF NOT EXISTS outcomes ("
        " fingerprint TEXT PRIMARY KEY,"
        " record TEXT NOT NULL,"
        " recency INTEGER NOT NULL)"
    )

    def __init__(self, path: str):
        self._connection = self._connect(path, self._SCHEMA)
        self._connection.execute(
            "CREATE INDEX IF NOT EXISTS outcomes_recency ON outcomes(recency)"
        )
        self._connection.commit()
        row = self._connection.execute("SELECT MAX(recency) FROM outcomes").fetchone()
        self._recency = int(row[0] or 0)

    def _next_recency(self) -> int:
        self._recency += 1
        return self._recency

    def get_entry(self, fingerprint: str, *, touch: bool = True) -> dict | None:
        row = self._connection.execute(
            "SELECT record FROM outcomes WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        if row is None:
            return None
        try:
            entry = entry_from_outcome_record(json.loads(row[0]))
        except (json.JSONDecodeError, EngineError):
            # A corrupt row behaves like the JSONL loader's skipped line: the
            # lookup misses and the row is dropped so it cannot mask a
            # recomputation forever.
            with self._connection:
                self._connection.execute(
                    "DELETE FROM outcomes WHERE fingerprint = ?", (fingerprint,)
                )
            return None
        if touch:
            with self._connection:
                self._connection.execute(
                    "UPDATE outcomes SET recency = ? WHERE fingerprint = ?",
                    (self._next_recency(), fingerprint),
                )
        return entry

    def put_entry(
        self, fingerprint: str, result: JobResult, certificates: list[dict]
    ) -> None:
        with self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO outcomes (fingerprint, record, recency)"
                " VALUES (?, ?, ?)",
                (
                    fingerprint,
                    outcome_record_line(result, certificates),
                    self._next_recency(),
                ),
            )

    def delete(self, fingerprint: str) -> bool:
        with self._connection:
            cursor = self._connection.execute(
                "DELETE FROM outcomes WHERE fingerprint = ?", (fingerprint,)
            )
        return cursor.rowcount > 0

    def evict_lru(self, max_entries: int, pinned: frozenset[str]) -> int:
        over = self.count() - max_entries
        if over <= 0:
            return 0
        victims = []
        for (fingerprint,) in self._connection.execute(
            "SELECT fingerprint FROM outcomes ORDER BY recency ASC"
        ):
            if fingerprint in pinned:
                continue
            victims.append(fingerprint)
            if len(victims) >= over:
                break
        if victims:
            with self._connection:
                self._connection.executemany(
                    "DELETE FROM outcomes WHERE fingerprint = ?",
                    [(victim,) for victim in victims],
                )
        return len(victims)

    def count(self) -> int:
        return int(
            self._connection.execute("SELECT COUNT(*) FROM outcomes").fetchone()[0]
        )

    def contains(self, fingerprint: str) -> bool:
        row = self._connection.execute(
            "SELECT 1 FROM outcomes WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        return row is not None
