"""Pluggable storage backends for the engine's persistence facades.

:class:`~repro.engine.store.ResultStore` and
:class:`~repro.engine.outcomes.OutcomeStore` keep their public surfaces; this
package supplies the storage engines behind them, selected by URL-style
paths on the existing ``--store`` / ``--outcomes`` flags (bare paths remain
JSONL — see :func:`parse_storage_url` for the full table):

* :mod:`~repro.engine.backends.jsonl` — the historical append-only line logs
  (healing, atomic compaction);
* :mod:`~repro.engine.backends.sqlite` — WAL-journaled SQLite, point queries
  instead of load-everything-at-init, concurrent readers;
* :mod:`~repro.engine.backends.memory` — process-local dicts for tests and
  ephemeral serving replicas (``memory://name`` shares by name).
"""

from ...errors import EngineError
from .base import (
    SUPPORTED_SCHEMES,
    OutcomeBackend,
    ResultBackend,
    count_backend_op,
    parse_storage_url,
)
from .jsonl import JsonlOutcomeBackend, JsonlResultBackend
from .memory import (
    MemoryOutcomeBackend,
    MemoryResultBackend,
    reset_shared_memory,
)
from .sqlite import SqliteOutcomeBackend, SqliteResultBackend

__all__ = [
    "OutcomeBackend",
    "ResultBackend",
    "SUPPORTED_SCHEMES",
    "count_backend_op",
    "open_outcome_backend",
    "open_result_backend",
    "parse_storage_url",
    "reset_shared_memory",
    "JsonlOutcomeBackend",
    "JsonlResultBackend",
    "MemoryOutcomeBackend",
    "MemoryResultBackend",
    "SqliteOutcomeBackend",
    "SqliteResultBackend",
]

_RESULT_BACKENDS = {
    "jsonl": JsonlResultBackend,
    "sqlite": SqliteResultBackend,
    "memory": MemoryResultBackend,
}

_OUTCOME_BACKENDS = {
    "jsonl": JsonlOutcomeBackend,
    "sqlite": SqliteOutcomeBackend,
    "memory": MemoryOutcomeBackend,
}


def open_result_backend(url: str) -> ResultBackend:
    """The :class:`ResultBackend` a storage URL (or bare JSONL path) names."""
    scheme, location = parse_storage_url(url)
    try:
        return _RESULT_BACKENDS[scheme](location)
    except EngineError:
        raise
    except Exception as exc:
        raise EngineError(f"cannot open result backend {url!r}: {exc}") from exc


def open_outcome_backend(url: str) -> OutcomeBackend:
    """The :class:`OutcomeBackend` a storage URL (or bare JSONL path) names."""
    scheme, location = parse_storage_url(url)
    try:
        return _OUTCOME_BACKENDS[scheme](location)
    except EngineError:
        raise
    except Exception as exc:
        raise EngineError(f"cannot open outcome backend {url!r}: {exc}") from exc
