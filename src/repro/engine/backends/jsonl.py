"""The JSONL backends: append-only line logs with healing and compaction.

These carry the exact on-disk discipline the pre-backend stores had, so every
existing ``results.jsonl`` / ``outcomes.jsonl`` file keeps loading:

* one record per line, appends are single ``write`` calls followed by one
  flush + fsync, so a kill leaves at worst one truncated trailing line;
* the loader skips unparseable lines (``skipped_lines`` counts them) and the
  next append heals a missing trailing newline before writing;
* later lines win, so re-recording a fingerprint supersedes its old record;
* the outcome log is compacted (atomic temp-file rewrite + ``os.replace``)
  once dead lines outnumber live entries 2:1.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable

from ...errors import EngineError
from ..spec import JobResult, canonical_json
from .base import OutcomeBackend, ResultBackend

__all__ = ["JsonlOutcomeBackend", "JsonlResultBackend"]

#: Schema version of one outcome record; bump on incompatible format changes.
OUTCOME_SCHEMA_VERSION = 1


class _JsonlLog:
    """Shared line-log mechanics: load, heal, append, atomic rewrite."""

    def __init__(self, path: str):
        self.path = str(path)
        self.skipped_lines = 0
        self.file_lines = 0
        self.needs_newline = False
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)

    def lines(self) -> list[str]:
        """Every non-empty line currently on disk (sets the healing flag)."""
        self.needs_newline = False
        if not os.path.exists(self.path):
            return []
        with open(self.path, "r", encoding="utf-8") as handle:
            content = handle.read()
        # A kill can leave the file without a trailing newline; the next
        # append must not concatenate onto the truncated record.
        self.needs_newline = bool(content) and not content.endswith("\n")
        return [line.strip() for line in content.splitlines() if line.strip()]

    def append(self, lines: list[str]) -> None:
        """One durable append: a single write, one flush, one fsync."""
        payload = "".join(line + "\n" for line in lines)
        with open(self.path, "a", encoding="utf-8") as handle:
            if self.needs_newline:
                payload = "\n" + payload
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
            # Only after the healing newline is durably on disk: a failed
            # write must leave the flag set so a retry still heals the
            # truncated tail instead of gluing onto it.
            self.needs_newline = False
        self.file_lines += len(lines)

    def rewrite(self, lines: Iterable[str]) -> None:
        """Atomically replace the log: temp file + fsync + ``os.replace``.

        A kill mid-rewrite leaves either the old log or the new one, never a
        mix.
        """
        tmp_path = self.path + ".compact"
        count = 0
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
                count += 1
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        self.file_lines = count
        self.needs_newline = False


class JsonlResultBackend(ResultBackend):
    """JSONL-backed latest-result-per-fingerprint map (fully in memory)."""

    name = "jsonl"

    def __init__(self, path: str):
        self.location = str(path)
        self._log = _JsonlLog(path)
        self._results: dict[str, JobResult] = {}
        for line in self._log.lines():
            self._log.file_lines += 1
            try:
                result = JobResult.from_json_dict(json.loads(line))
            except (json.JSONDecodeError, EngineError):
                # Truncated trailing line after a kill, or foreign junk:
                # skip rather than fail the whole sweep.
                self._log.skipped_lines += 1
                continue
            self._results[result.fingerprint] = result

    @property
    def skipped_lines(self) -> int:
        return self._log.skipped_lines

    def get(self, fingerprint: str) -> JobResult | None:
        return self._results.get(fingerprint)

    def contains(self, fingerprint: str) -> bool:
        return fingerprint in self._results

    def count(self) -> int:
        return len(self._results)

    def results(self) -> dict[str, JobResult]:
        return dict(self._results)

    def put_many(self, results: Iterable[JobResult]) -> None:
        results = list(results)
        lines = [canonical_json(result.to_json_dict()) for result in results]
        self._log.append(lines)
        for result in results:
            self._results[result.fingerprint] = result


def outcome_record_line(result: JobResult, certificates: list[dict]) -> str:
    """One serialized outcome record (shared by append and compaction)."""
    return canonical_json(
        {
            "version": OUTCOME_SCHEMA_VERSION,
            "kind": "analysis_outcome",
            "result": result.to_json_dict(),
            "certificates": certificates,
        }
    )


def entry_from_outcome_record(record: dict) -> dict:
    """Validate one parsed outcome record into a live entry.

    Shared with the SQLite backend, which stores the same record shape one
    row per fingerprint.
    """
    if not isinstance(record, dict):
        raise EngineError("outcome record must be a dict")
    if record.get("kind") != "analysis_outcome":
        raise EngineError(f"not an outcome record: kind={record.get('kind')!r}")
    if record.get("version") != OUTCOME_SCHEMA_VERSION:
        raise EngineError(f"unsupported outcome schema {record.get('version')!r}")
    result = JobResult.from_json_dict(record.get("result") or {})
    if not result.ok or not result.fingerprint:
        raise EngineError("outcome records must carry a successful result")
    certificates = record.get("certificates") or []
    if not isinstance(certificates, list):
        raise EngineError("certificates must be a list")
    return {"result": result, "certificates": certificates}


class JsonlOutcomeBackend(OutcomeBackend):
    """JSONL-backed outcome entries; dict insertion order doubles as recency."""

    name = "jsonl"

    def __init__(self, path: str):
        self.location = str(path)
        self._log = _JsonlLog(path)
        # fingerprint -> {"result": JobResult, "certificates": [raw dict, ...]}
        # Insertion order doubles as recency order (hits re-insert at the end).
        self._entries: dict[str, dict] = {}
        for line in self._log.lines():
            self._log.file_lines += 1
            try:
                entry = entry_from_outcome_record(json.loads(line))
            except (json.JSONDecodeError, EngineError):
                # Truncated trailing line after a kill, or foreign junk:
                # skip rather than fail the whole store.
                self._log.skipped_lines += 1
                continue
            fingerprint = entry["result"].fingerprint
            self._entries.pop(fingerprint, None)  # later lines win, LRU-fresh
            self._entries[fingerprint] = entry

    @property
    def skipped_lines(self) -> int:
        return self._log.skipped_lines

    def get_entry(self, fingerprint: str, *, touch: bool = True) -> dict | None:
        entry = self._entries.get(fingerprint)
        if entry is not None and touch:
            self._entries.pop(fingerprint, None)
            self._entries[fingerprint] = entry
        return entry

    def put_entry(
        self, fingerprint: str, result: JobResult, certificates: list[dict]
    ) -> None:
        self._log.append([outcome_record_line(result, certificates)])
        self._entries.pop(fingerprint, None)
        self._entries[fingerprint] = {"result": result, "certificates": certificates}

    def delete(self, fingerprint: str) -> bool:
        return self._entries.pop(fingerprint, None) is not None

    def evict_lru(self, max_entries: int, pinned: frozenset[str]) -> int:
        evicted = 0
        for fingerprint in list(self._entries):
            if len(self._entries) <= max_entries:
                break
            if fingerprint in pinned:
                continue
            del self._entries[fingerprint]
            evicted += 1
        return evicted

    def count(self) -> int:
        return len(self._entries)

    def contains(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def compact(self) -> None:
        """Rewrite the log when dead lines outnumber live entries 2:1."""
        live = len(self._entries)
        if self._log.file_lines <= max(2 * live, live + 64):
            return
        self._log.rewrite(
            outcome_record_line(entry["result"], entry["certificates"])
            for entry in self._entries.values()
        )
