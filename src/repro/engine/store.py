"""A resumable result store keyed by job fingerprint, over pluggable backends.

The facade keeps the surface every caller (engine, service, experiment
drivers) has always used — ``get``/``completed``/``results``/``missing``/
``put``/``put_many`` under one lock — and delegates storage to a
:class:`~repro.engine.backends.base.ResultBackend` selected by URL
(``results.jsonl`` or ``jsonl://…`` for the historical append-only line log,
``sqlite:///…`` for WAL-journaled SQLite, ``memory://…`` for tests and
ephemeral replicas — see :mod:`repro.engine.backends`).

``resume`` semantics (used by the engine and the ``--resume`` experiment
flag): a job whose fingerprint maps to an ``ok`` record is not re-executed;
failed, timed-out, or unknown fingerprints run again.  Later writes for a
fingerprint supersede earlier ones on every backend — including replacing a
``timeout``/``error`` record with an ``ok`` one once the job is given a
larger budget.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable

from .backends import ResultBackend, count_backend_op, open_result_backend
from .spec import JobResult

__all__ = ["ResultStore"]


class ResultStore:
    """Map from job fingerprint to the latest :class:`JobResult`.

    Args:
        path: a storage URL (``jsonl://``, ``sqlite:///``, ``memory://``) or
            a bare JSONL file path, or an already-open
            :class:`~repro.engine.backends.base.ResultBackend`.
    """

    def __init__(self, path: str | ResultBackend):
        if isinstance(path, ResultBackend):
            self._backend = path
        else:
            self._backend = open_result_backend(path)
        self.path = self._backend.location
        self._lock = threading.Lock()

    @property
    def backend(self) -> ResultBackend:
        """The storage engine behind this facade."""
        return self._backend

    def close(self) -> None:
        """Release backend resources (idempotent)."""
        with self._lock:
            self._backend.close()

    # -- queries -------------------------------------------------------------
    # Every read takes the lock: the service batcher thread calls put() while
    # request handlers read, and an unlocked read racing a mutation is
    # exactly the kind of bug that only fires under load.
    def __len__(self) -> int:
        with self._lock:
            return self._backend.count()

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return self._backend.contains(fingerprint)

    @property
    def skipped_lines(self) -> int:
        """Records the loader could not parse (diagnostics only)."""
        return self._backend.skipped_lines

    def get(self, fingerprint: str) -> JobResult | None:
        with self._lock:
            result = self._backend.get(fingerprint)
        count_backend_op(self._backend.name, "result_get")
        return result

    def completed(self, fingerprint: str) -> bool:
        """Whether the store holds a successful result for this fingerprint."""
        with self._lock:
            result = self._backend.get(fingerprint)
        return result is not None and result.ok

    def results(self) -> dict[str, JobResult]:
        """A snapshot of the latest result per fingerprint."""
        with self._lock:
            return self._backend.results()

    def missing(self, fingerprints: Iterable[str]) -> list[str]:
        """The fingerprints that still need (re-)execution under resume."""
        snapshot = self.results()  # one locked snapshot, not a lock per query
        return [
            fp
            for fp in fingerprints
            if fp not in snapshot or not snapshot[fp].ok
        ]

    # -- mutation ------------------------------------------------------------
    def put(self, result: JobResult) -> None:
        """Record one result; later writes supersede earlier ones."""
        self.put_many([result])

    def put_many(self, results: Iterable[JobResult]) -> None:
        """Record many results with one backend write (one append/transaction)."""
        results = list(results)
        if not results:
            return
        with self._lock:
            self._backend.put_many(results)
        count_backend_op(self._backend.name, "result_put")
