"""A resumable, append-only result store keyed by job fingerprint.

The store is a JSONL file: one :class:`~repro.engine.spec.JobResult` per
line.  Appends are atomic at the line level (single ``write`` + flush), so a
sweep killed mid-run leaves at worst one truncated trailing line, which the
loader skips.  Later lines win, so re-running a job simply supersedes its
earlier record — including replacing a ``timeout``/``error`` record with an
``ok`` one once the job is given a larger budget.

``resume`` semantics (used by the engine and the ``--resume`` experiment
flag): a job whose fingerprint maps to an ``ok`` record is not re-executed;
failed, timed-out, or unknown fingerprints run again.
"""

from __future__ import annotations

import json
import os
import threading
from collections.abc import Iterable

from ..errors import EngineError
from .spec import JobResult, canonical_json

__all__ = ["ResultStore"]


class ResultStore:
    """JSONL-backed map from job fingerprint to the latest :class:`JobResult`."""

    def __init__(self, path: str):
        self.path = str(path)
        self._lock = threading.Lock()
        self._results: dict[str, JobResult] = {}
        self._skipped_lines = 0
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._load()

    def _load(self) -> None:
        self._needs_newline = False
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            content = handle.read()
        # A kill can leave the file without a trailing newline; the next
        # append must not concatenate onto the truncated record.
        self._needs_newline = bool(content) and not content.endswith("\n")
        for line in content.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                result = JobResult.from_json_dict(json.loads(line))
            except (json.JSONDecodeError, EngineError):
                # Truncated trailing line after a kill, or foreign junk:
                # skip rather than fail the whole sweep.
                self._skipped_lines += 1
                continue
            self._results[result.fingerprint] = result

    # -- queries -------------------------------------------------------------
    # Every read takes the lock: the service batcher thread calls put() while
    # request handlers read, and an unlocked dict read racing a mutation is
    # exactly the kind of bug that only fires under load.
    def __len__(self) -> int:
        with self._lock:
            return len(self._results)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._results

    @property
    def skipped_lines(self) -> int:
        """Lines the loader could not parse (diagnostics only)."""
        return self._skipped_lines

    def get(self, fingerprint: str) -> JobResult | None:
        with self._lock:
            return self._results.get(fingerprint)

    def completed(self, fingerprint: str) -> bool:
        """Whether the store holds a successful result for this fingerprint."""
        with self._lock:
            result = self._results.get(fingerprint)
        return result is not None and result.ok

    def results(self) -> dict[str, JobResult]:
        """A snapshot of the latest result per fingerprint."""
        with self._lock:
            return dict(self._results)

    def missing(self, fingerprints: Iterable[str]) -> list[str]:
        """The fingerprints that still need (re-)execution under resume."""
        snapshot = self.results()  # one locked snapshot, not a lock per query
        return [
            fp
            for fp in fingerprints
            if fp not in snapshot or not snapshot[fp].ok
        ]

    # -- mutation ------------------------------------------------------------
    def put(self, result: JobResult) -> None:
        """Record one result: append a line, then update the in-memory map."""
        self.put_many([result])

    def put_many(self, results: Iterable[JobResult]) -> None:
        """Record many results with one append and one flush/fsync.

        All lines are written in a single ``write`` call, so the append keeps
        the line-level atomicity contract (a kill can truncate at most the
        tail of the payload, which the loader heals) while paying the fsync
        latency once per batch instead of once per result.
        """
        results = list(results)
        if not results:
            return
        lines = [canonical_json(result.to_json_dict()) for result in results]
        payload = "".join(line + "\n" for line in lines)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                if self._needs_newline:
                    payload = "\n" + payload
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
                # Only after the healing newline is durably on disk: a failed
                # write must leave the flag set so a retry still heals the
                # truncated tail instead of gluing onto it.
                self._needs_newline = False
            for result in results:
                self._results[result.fingerprint] = result
