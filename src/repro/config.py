"""Global configuration objects for the Gleipnir reproduction.

The analysis pipeline has several knobs (MPS width, SDP tolerances, caching,
resource guards).  They are collected in :class:`AnalysisConfig` so the
end-to-end analyzer, the experiment harness, and the benchmarks share a single
notion of "how much effort to spend".

Nothing in this module performs computation; it only carries parameters.
"""

from __future__ import annotations

import dataclasses
import os

from .errors import ResourceLimitExceeded

#: Default MPS bond dimension used by the paper's evaluation (Section 7.1).
DEFAULT_MPS_WIDTH = 128

#: Default bit-flip probability of the paper's sample noise model (Section 7.1).
DEFAULT_BIT_FLIP_PROBABILITY = 1e-4


@dataclasses.dataclass
class SDPConfig:
    """Parameters of the semidefinite-programming engine (Section 6).

    Attributes:
        mode: ``"certified"`` runs the ADMM solver and repairs its dual into a
            feasible certificate (tight, default); ``"fast"`` optimises a
            restricted dual family analytically (looser but much cheaper);
            ``"auto"`` uses the certified mode for 1- and 2-qubit channels and
            falls back to fast mode above that.
        max_iterations: ADMM iteration cap per solve.
        tolerance: relative primal/dual residual tolerance for ADMM.
        cache: reuse SDP results for repeated (channel, predicate) pairs.
        cache_decimals: number of decimals used when fingerprinting the
            predicate for the cache key.  Coarser keys give more cache hits at
            the price of slightly looser (but still sound) bounds, because the
            cached predicate distance is rounded *up*.
        dominance_cache: let the bound cache answer a lookup with a bound
            certified for a *weaker* predicate (same rounded ρ̂, larger δ),
            which is sound by the Weaken rule.
        cache_max_entries: size cap of the in-memory bound cache (None =
            unbounded).  Beyond the cap the least-recently-used entries are
            compacted away (whole predicate groups, so the dominance layer
            can never substitute a looser sibling for an evicted exact
            entry), which keeps long-running services (many noise models,
            many predicates) memory-bounded; evicted bounds are simply
            recomputed — or reloaded from the persistent store — on the next
            request.  An execution knob: not part of job fingerprints; every
            answer remains a certified sound bound and, in exact arithmetic,
            is never looser than the unbounded cache's.
        persistent_cache_path: directory for an on-disk bound store shared
            across runs (None disables).  Entries carry their full dual
            certificate and are re-verified before use.
    """

    mode: str = "certified"
    max_iterations: int = 1500
    tolerance: float = 3e-6
    cache: bool = True
    cache_decimals: int = 6
    dominance_cache: bool = True
    cache_max_entries: int | None = None
    persistent_cache_path: str | None = None

    def validate(self) -> None:
        if self.mode not in ("certified", "fast", "auto"):
            raise ValueError(f"unknown SDP mode {self.mode!r}")
        if self.max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        if not 0 < self.tolerance < 1:
            raise ValueError("tolerance must lie in (0, 1)")
        if self.cache_max_entries is not None and self.cache_max_entries < 1:
            raise ValueError("cache_max_entries must be at least 1 (or None)")


@dataclasses.dataclass
class ResourceGuard:
    """Budget for dense (exponential) computations.

    The paper's full-simulation baseline times out after 24 hours for programs
    with 20 or more qubits.  Rather than spending that wall-clock time, the
    dense density-matrix simulator consults this guard and raises
    :class:`repro.errors.ResourceLimitExceeded` when the requested computation
    would exceed the budget, which the experiment harness reports as a
    timeout, exactly like Table 2 does.
    """

    max_dense_qubits: int = 14
    max_statevector_qubits: int = 24
    max_seconds: float | None = None

    def check_dense_qubits(self, num_qubits: int, *, what: str = "density matrix") -> None:
        """Raise if a dense 4**n object would exceed the budget."""
        if num_qubits > self.max_dense_qubits:
            raise ResourceLimitExceeded(
                f"{what} simulation of {num_qubits} qubits exceeds the configured "
                f"budget of {self.max_dense_qubits} qubits "
                f"(2^{2 * num_qubits} complex entries)"
            )

    def check_statevector_qubits(self, num_qubits: int) -> None:
        """Raise if a dense 2**n state vector would exceed the budget."""
        if num_qubits > self.max_statevector_qubits:
            raise ResourceLimitExceeded(
                f"state-vector simulation of {num_qubits} qubits exceeds the configured "
                f"budget of {self.max_statevector_qubits} qubits"
            )


@dataclasses.dataclass
class AnalysisConfig:
    """Top-level configuration of the Gleipnir analyzer.

    Attributes:
        mps_width: bond dimension of the MPS approximator (w in the paper).
        sdp: SDP engine configuration.
        guard: resource guard for the dense baselines.
        collect_derivation: record the full derivation tree (per-gate
            judgments); disable for very large sweeps to save memory.
        noise_after_gate: whether the noisy gate is modelled as
            ``noise ∘ U`` (True, default) or ``U ∘ noise``.
        scheduler: run the program-level bound scheduler — a pre-pass that
            collects every quantised (gate, noise, ρ̂, δ) instance of the
            program, dedupes them into unique solve classes, and solves the
            unique set with the batched SDP kernel before the derivation is
            replayed from the solved table.  Requires the SDP cache; ignored
            when ``sdp.cache`` is off.
        scheduler_workers: worker threads for the scheduler's solve phase
            (1 = solve the whole batch in one vectorised run; >1 additionally
            splits the batch across a thread pool).
        tape_memo: let the scheduler reuse memoised replay-tape prefixes —
            near-duplicate programs (shared circuit prefixes, parameter
            sweeps) resume the recorded walk from the last shared step
            instead of re-walking from scratch.  An execution knob: not part
            of job fingerprints, and memoised analyses are bit-identical to
            cold ones (the MPS snapshot is an exact copy, so every downstream
            operation sees the same floats).
    """

    mps_width: int = DEFAULT_MPS_WIDTH
    sdp: SDPConfig = dataclasses.field(default_factory=SDPConfig)
    guard: ResourceGuard = dataclasses.field(default_factory=ResourceGuard)
    collect_derivation: bool = True
    noise_after_gate: bool = True
    scheduler: bool = True
    scheduler_workers: int = 1
    tape_memo: bool = True

    def validate(self) -> None:
        if self.mps_width < 1:
            raise ValueError("mps_width must be at least 1")
        if self.scheduler_workers < 1:
            raise ValueError("scheduler_workers must be at least 1")
        self.sdp.validate()

    def replace(self, **kwargs) -> "AnalysisConfig":
        """Return a copy of this configuration with some fields replaced.

        Nested dataclasses (``sdp``, ``guard``) are deep-copied unless an
        explicit replacement is supplied, so mutating one copy (as the
        analysis engine does for per-worker cache paths) never leaks into
        the original configuration.
        """
        for field in ("sdp", "guard"):
            if field not in kwargs:
                kwargs[field] = dataclasses.replace(getattr(self, field))
        return dataclasses.replace(self, **kwargs)


def full_scale_requested() -> bool:
    """Whether the environment asks for paper-scale experiment runs.

    The benchmark harness runs a reduced but shape-preserving configuration by
    default so that ``pytest benchmarks/`` finishes in minutes.  Setting the
    environment variable ``REPRO_FULL=1`` switches to the configuration used
    in the paper (MPS width 128, all Table 2 rows at full size).
    """
    return os.environ.get("REPRO_FULL", "").strip() in ("1", "true", "yes")
