"""GHZ state preparation circuits (Example 2.1 and Figure 16).

``ghz_circuit(n)`` builds the standard ladder: a Hadamard on qubit 0 followed
by a chain of CNOTs ``(0,1), (1,2), ..., (n-2, n-1)``.  This is the circuit
family used by the qubit-mapping study of Table 3 (GHZ-3 and GHZ-5).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..errors import CircuitError
from ..linalg.states import ghz_state

__all__ = ["ghz_circuit", "ghz_star_circuit", "ideal_ghz_distribution"]


def ghz_circuit(num_qubits: int, *, name: str | None = None) -> Circuit:
    """The standard GHZ ladder circuit (H then a CNOT chain)."""
    if num_qubits < 2:
        raise CircuitError("a GHZ state needs at least two qubits")
    circuit = Circuit(num_qubits, name=name or f"ghz_{num_qubits}")
    circuit.h(0)
    for q in range(num_qubits - 1):
        circuit.cx(q, q + 1)
    return circuit


def ghz_star_circuit(num_qubits: int, *, root: int = 0, name: str | None = None) -> Circuit:
    """A GHZ preparation fanning out from a root qubit (star pattern).

    Useful on devices whose coupling map has a central qubit; included to let
    the mapping experiments compare circuit shapes as well as placements.
    """
    if num_qubits < 2:
        raise CircuitError("a GHZ state needs at least two qubits")
    if not 0 <= root < num_qubits:
        raise CircuitError(f"root {root} outside the register")
    circuit = Circuit(num_qubits, name=name or f"ghz_star_{num_qubits}")
    circuit.h(root)
    for q in range(num_qubits):
        if q != root:
            circuit.cx(root, q)
    return circuit


def ideal_ghz_distribution(num_qubits: int) -> np.ndarray:
    """The ideal measurement distribution of a GHZ state (half 0...0, half 1...1)."""
    probabilities = np.abs(ghz_state(num_qubits)) ** 2
    return probabilities


def ghz_logical_qubits(mapping: Sequence[int]) -> list[int]:
    """Helper naming the logical qubits of a GHZ mapping experiment (identity)."""
    return list(range(len(mapping)))
