"""QAOA max-cut benchmark circuits (Section 7.1).

The Quantum Approximate Optimization Algorithm for max-cut on a graph
``G = (V, E)`` alternates, for ``p`` rounds, a *cost layer*
``exp(-i gamma sum_{(u,v) in E} Z_u Z_v)`` with a *mixer layer*
``exp(-i beta sum_v X_v)``, starting from the uniform superposition.  On NISQ
gate sets the cost layer is compiled edge by edge into the
``CX; RZ(2 gamma); CX`` pattern — the form whose gate counts Table 2 reports.

The generators below produce the graph families used in the paper's
evaluation: a line graph (``QAOA_line_10``), Erdős–Rényi random graphs
(``QAOARandom20``), and random 4-regular graphs (``QAOA4reg_*``, ``QAOA50``,
``QAOA75``, ``QAOA100``).  All randomness is seeded so the benchmark suite is
reproducible.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence

import networkx as nx
import numpy as np

from ..circuits.circuit import Circuit
from ..errors import CircuitError

__all__ = [
    "QAOAParameters",
    "line_graph",
    "ring_graph",
    "random_graph",
    "random_regular_graph",
    "qaoa_maxcut_circuit",
    "qaoa_cost_layer",
    "qaoa_mixer_layer",
    "maxcut_cost_value",
]


@dataclasses.dataclass(frozen=True)
class QAOAParameters:
    """Angles of a depth-p QAOA circuit.

    ``gammas[k]`` is the cost-layer angle and ``betas[k]`` the mixer-layer
    angle of round ``k``.
    """

    gammas: tuple[float, ...]
    betas: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.gammas) != len(self.betas):
            raise CircuitError("QAOA needs one beta per gamma")
        if not self.gammas:
            raise CircuitError("QAOA needs at least one round")

    @property
    def rounds(self) -> int:
        return len(self.gammas)

    @classmethod
    def single_round(cls, gamma: float, beta: float) -> "QAOAParameters":
        return cls((float(gamma),), (float(beta),))

    @classmethod
    def linear_ramp(
        cls, rounds: int, *, gamma_max: float = 0.8, beta_max: float = 0.6
    ) -> "QAOAParameters":
        """The standard linear-ramp initialisation of QAOA angles."""
        if rounds < 1:
            raise CircuitError("rounds must be at least 1")
        steps = np.arange(1, rounds + 1) / rounds
        gammas = tuple(float(gamma_max * s) for s in steps)
        betas = tuple(float(beta_max * (1 - s)) for s in steps)
        return cls(gammas, betas)


# ---------------------------------------------------------------------------
# Graph families
# ---------------------------------------------------------------------------

def line_graph(num_vertices: int) -> nx.Graph:
    """A path graph 0-1-2-...-(n-1)."""
    return nx.path_graph(num_vertices)


def ring_graph(num_vertices: int) -> nx.Graph:
    """A cycle graph."""
    return nx.cycle_graph(num_vertices)


def random_graph(num_vertices: int, edge_probability: float, *, seed: int = 0) -> nx.Graph:
    """An Erdős–Rényi random graph with a fixed seed."""
    return nx.gnp_random_graph(num_vertices, edge_probability, seed=seed)


def random_regular_graph(num_vertices: int, degree: int = 4, *, seed: int = 0) -> nx.Graph:
    """A random d-regular graph (d=4 matches the paper's QAOA4reg benchmarks)."""
    return nx.random_regular_graph(degree, num_vertices, seed=seed)


# ---------------------------------------------------------------------------
# Circuit construction
# ---------------------------------------------------------------------------

def qaoa_cost_layer(circuit: Circuit, edges: Iterable[tuple[int, int]], gamma: float) -> Circuit:
    """Append the compiled cost layer ``prod_(u,v) exp(-i gamma Z_u Z_v)``."""
    for u, v in edges:
        circuit.cx(u, v)
        circuit.rz(2.0 * gamma, v)
        circuit.cx(u, v)
    return circuit


def qaoa_mixer_layer(circuit: Circuit, beta: float, qubits: Sequence[int] | None = None) -> Circuit:
    """Append the mixer layer ``prod_v exp(-i beta X_v)``."""
    targets = range(circuit.num_qubits) if qubits is None else qubits
    for q in targets:
        circuit.rx(2.0 * beta, q)
    return circuit


def qaoa_maxcut_circuit(
    graph: nx.Graph,
    parameters: QAOAParameters,
    *,
    include_initial_layer: bool = True,
    name: str | None = None,
) -> Circuit:
    """The full QAOA max-cut circuit for a graph.

    Args:
        graph: the problem graph; vertices must be integers 0..n-1.
        parameters: the per-round angles.
        include_initial_layer: whether to prepend the Hadamard layer preparing
            the uniform superposition (the paper's circuits include it).
        name: optional circuit name.
    """
    vertices = sorted(graph.nodes)
    if vertices != list(range(len(vertices))):
        raise CircuitError("graph vertices must be labelled 0..n-1")
    num_qubits = len(vertices)
    if num_qubits == 0:
        raise CircuitError("QAOA needs a non-empty graph")
    circuit = Circuit(num_qubits, name=name or f"qaoa_{num_qubits}")
    if include_initial_layer:
        circuit.h_layer()
    edges = sorted(tuple(sorted(edge)) for edge in graph.edges)
    for gamma, beta in zip(parameters.gammas, parameters.betas):
        qaoa_cost_layer(circuit, edges, gamma)
        qaoa_mixer_layer(circuit, beta)
    return circuit


def maxcut_cost_value(graph: nx.Graph, bits: Sequence[int]) -> int:
    """Cut value of an assignment (used to sanity-check the circuits in tests)."""
    bits = [int(b) for b in bits]
    return sum(1 for u, v in graph.edges if bits[u] != bits[v])
