"""The named benchmark suite of Table 2.

Each entry reproduces one row of the paper's Table 2: QAOA max-cut circuits on
line / random / 4-regular graphs from 10 to 100 qubits, and Trotterised Ising
chains with 10 and 45 spins.  Circuits are generated deterministically (fixed
seeds), and every benchmark also has a *reduced* variant used by the default
``pytest benchmarks/`` run so the whole table can be regenerated quickly; the
full paper-scale suite is selected with ``REPRO_FULL=1`` or ``scale="full"``.

Gate counts differ slightly from the paper (the paper does not specify its
exact graph instances); the graph families and edge densities are chosen so
the counts land close to the reported ones.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from ..circuits.circuit import Circuit
from ..errors import ExperimentError
from .ising import IsingParameters, ising_circuit
from .qaoa import (
    QAOAParameters,
    line_graph,
    qaoa_maxcut_circuit,
    random_graph,
    random_regular_graph,
)

__all__ = ["BenchmarkSpec", "table2_benchmarks", "benchmark_by_name", "benchmark_names"]


@dataclasses.dataclass(frozen=True)
class BenchmarkSpec:
    """One named benchmark circuit of the evaluation."""

    name: str
    family: str
    num_qubits: int
    builder: Callable[[], Circuit]
    description: str = ""
    paper_gate_count: int | None = None
    paper_gleipnir_bound: float | None = None
    paper_worst_case_bound: float | None = None

    def build(self) -> Circuit:
        circuit = self.builder()
        return circuit


def _qaoa_line(num_qubits: int, name: str) -> Circuit:
    # Small angles keep the state close to X-basis product states, which is
    # what makes the paper's QAOA_line_10 bound dramatically tighter than the
    # worst case under bit-flip noise.
    params = QAOAParameters.single_round(gamma=0.05, beta=0.2)
    return qaoa_maxcut_circuit(line_graph(num_qubits), params, name=name)


def _qaoa_random(num_qubits: int, num_edges_target: int, seed: int, name: str) -> Circuit:
    # Moderate angles: the cost layer entangles neighbours but local states
    # keep enough purity that the (rho, delta) constraint has bite, landing in
    # the paper's 15-30 % improvement band for the large benchmarks.
    probability = min(0.95, 2.0 * num_edges_target / (num_qubits * (num_qubits - 1)))
    graph = random_graph(num_qubits, probability, seed=seed)
    params = QAOAParameters.single_round(gamma=0.3, beta=0.25)
    return qaoa_maxcut_circuit(graph, params, name=name)


def _qaoa_regular(num_qubits: int, seed: int, name: str) -> Circuit:
    graph = random_regular_graph(num_qubits, 4, seed=seed)
    params = QAOAParameters.single_round(gamma=0.3, beta=0.25)
    return qaoa_maxcut_circuit(graph, params, name=name)


def _ising(num_spins: int, steps: int, name: str) -> Circuit:
    # The quench starts from |+...+> (the transverse-field ground state), so
    # early Trotter steps see X-polarised local states on which bit-flip noise
    # is nearly invisible; later steps entangle the chain and approach the
    # worst case, which is where the overall 15-30 % tightening comes from.
    params = IsingParameters(coupling=1.0, field=1.0, time_step=0.1, steps=steps)
    return ising_circuit(num_spins, params, initial_superposition=True, name=name)


_FULL_SUITE: list[BenchmarkSpec] = [
    BenchmarkSpec(
        name="QAOA_line_10",
        family="qaoa-line",
        num_qubits=10,
        builder=lambda: _qaoa_line(10, "QAOA_line_10"),
        description="QAOA max-cut on a 10-vertex line graph, one round, small angles",
        paper_gate_count=27,
        paper_gleipnir_bound=0.05e-4,
        paper_worst_case_bound=27e-4,
    ),
    BenchmarkSpec(
        name="Isingmodel10",
        family="ising",
        num_qubits=10,
        builder=lambda: _ising(10, 13, "Isingmodel10"),
        description="Trotterised transverse-field Ising chain, 10 spins, 13 steps",
        paper_gate_count=480,
        paper_gleipnir_bound=335.6e-4,
        paper_worst_case_bound=480e-4,
    ),
    BenchmarkSpec(
        name="QAOARandom20",
        family="qaoa-random",
        num_qubits=20,
        builder=lambda: _qaoa_random(20, 40, 20, "QAOARandom20"),
        description="QAOA max-cut on a 20-vertex Erdos-Renyi graph (~40 edges)",
        paper_gate_count=160,
        paper_gleipnir_bound=136.6e-4,
        paper_worst_case_bound=160e-4,
    ),
    BenchmarkSpec(
        name="QAOA4reg_20",
        family="qaoa-4regular",
        num_qubits=20,
        builder=lambda: _qaoa_regular(20, 21, "QAOA4reg_20"),
        description="QAOA max-cut on a random 4-regular graph with 20 vertices",
        paper_gate_count=160,
        paper_gleipnir_bound=138.8e-4,
        paper_worst_case_bound=160e-4,
    ),
    BenchmarkSpec(
        name="QAOA4reg_30",
        family="qaoa-4regular",
        num_qubits=30,
        builder=lambda: _qaoa_regular(30, 31, "QAOA4reg_30"),
        description="QAOA max-cut on a random 4-regular graph with 30 vertices",
        paper_gate_count=240,
        paper_gleipnir_bound=207.0e-4,
        paper_worst_case_bound=240e-4,
    ),
    BenchmarkSpec(
        name="Isingmodel45",
        family="ising",
        num_qubits=45,
        builder=lambda: _ising(45, 13, "Isingmodel45"),
        description="Trotterised transverse-field Ising chain, 45 spins, 13 steps",
        paper_gate_count=2265,
        paper_gleipnir_bound=1739.4e-4,
        paper_worst_case_bound=2265e-4,
    ),
    BenchmarkSpec(
        name="QAOA50",
        family="qaoa-random",
        num_qubits=50,
        builder=lambda: _qaoa_random(50, 100, 50, "QAOA50"),
        description="QAOA max-cut on a 50-vertex random graph (~100 edges)",
        paper_gate_count=399,
        paper_gleipnir_bound=344.1e-4,
        paper_worst_case_bound=399e-4,
    ),
    BenchmarkSpec(
        name="QAOA75",
        family="qaoa-random",
        num_qubits=75,
        builder=lambda: _qaoa_random(75, 149, 75, "QAOA75"),
        description="QAOA max-cut on a 75-vertex random graph (~149 edges)",
        paper_gate_count=597,
        paper_gleipnir_bound=517.2e-4,
        paper_worst_case_bound=597e-4,
    ),
    BenchmarkSpec(
        name="QAOA100",
        family="qaoa-random",
        num_qubits=100,
        builder=lambda: _qaoa_random(100, 159, 100, "QAOA100"),
        description="QAOA max-cut on a 100-vertex random graph (~159 edges)",
        paper_gate_count=677,
        paper_gleipnir_bound=576.7e-4,
        paper_worst_case_bound=677e-4,
    ),
]


_REDUCED_SUITE: list[BenchmarkSpec] = [
    BenchmarkSpec(
        name="QAOA_line_10",
        family="qaoa-line",
        num_qubits=10,
        builder=lambda: _qaoa_line(10, "QAOA_line_10"),
        description="reduced-scale stand-in (same instance; small enough already)",
    ),
    BenchmarkSpec(
        name="Isingmodel10",
        family="ising",
        num_qubits=8,
        builder=lambda: _ising(8, 4, "Isingmodel10"),
        description="reduced Ising chain (8 spins, 4 Trotter steps)",
    ),
    BenchmarkSpec(
        name="QAOARandom20",
        family="qaoa-random",
        num_qubits=12,
        builder=lambda: _qaoa_random(12, 18, 20, "QAOARandom20"),
        description="reduced random-graph QAOA (12 vertices)",
    ),
    BenchmarkSpec(
        name="QAOA4reg_20",
        family="qaoa-4regular",
        num_qubits=12,
        builder=lambda: _qaoa_regular(12, 21, "QAOA4reg_20"),
        description="reduced 4-regular QAOA (12 vertices)",
    ),
    BenchmarkSpec(
        name="QAOA4reg_30",
        family="qaoa-4regular",
        num_qubits=14,
        builder=lambda: _qaoa_regular(14, 31, "QAOA4reg_30"),
        description="reduced 4-regular QAOA (14 vertices)",
    ),
    BenchmarkSpec(
        name="Isingmodel45",
        family="ising",
        num_qubits=16,
        builder=lambda: _ising(16, 5, "Isingmodel45"),
        description="reduced Ising chain (16 spins, 5 Trotter steps)",
    ),
    BenchmarkSpec(
        name="QAOA50",
        family="qaoa-random",
        num_qubits=18,
        builder=lambda: _qaoa_random(18, 30, 50, "QAOA50"),
        description="reduced random-graph QAOA (18 vertices)",
    ),
    BenchmarkSpec(
        name="QAOA75",
        family="qaoa-random",
        num_qubits=20,
        builder=lambda: _qaoa_random(20, 34, 75, "QAOA75"),
        description="reduced random-graph QAOA (20 vertices)",
    ),
    BenchmarkSpec(
        name="QAOA100",
        family="qaoa-random",
        num_qubits=22,
        builder=lambda: _qaoa_random(22, 38, 100, "QAOA100"),
        description="reduced random-graph QAOA (22 vertices)",
    ),
]


def table2_benchmarks(scale: str = "full") -> list[BenchmarkSpec]:
    """The Table 2 benchmark suite at the requested scale (``full``/``reduced``)."""
    if scale == "full":
        return list(_FULL_SUITE)
    if scale in ("reduced", "small"):
        return list(_REDUCED_SUITE)
    raise ExperimentError(f"unknown benchmark scale {scale!r}")


def benchmark_names() -> list[str]:
    return [spec.name for spec in _FULL_SUITE]


def benchmark_by_name(name: str, scale: str = "full") -> BenchmarkSpec:
    for spec in table2_benchmarks(scale):
        if spec.name == name:
            return spec
    raise ExperimentError(f"unknown benchmark {name!r}; known: {benchmark_names()}")
