"""Benchmark program generators: QAOA, Ising model, GHZ, and the Table 2 suite."""

from .qaoa import (
    QAOAParameters,
    line_graph,
    maxcut_cost_value,
    qaoa_cost_layer,
    qaoa_maxcut_circuit,
    qaoa_mixer_layer,
    random_graph,
    random_regular_graph,
    ring_graph,
)
from .ising import IsingParameters, ising_circuit, ising_gate_count, ising_trotter_step
from .ghz import ghz_circuit, ghz_star_circuit, ideal_ghz_distribution
from .library import BenchmarkSpec, benchmark_by_name, benchmark_names, table2_benchmarks

__all__ = [name for name in dir() if not name.startswith("_")]
