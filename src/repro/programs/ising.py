"""Trotterised transverse-field Ising model circuits (Section 7.1).

The Ising Hamiltonian on a chain of ``n`` spins,

``H = -J sum_i Z_i Z_{i+1} - h sum_i X_i``,

is simulated with first-order Trotter steps: each step applies
``exp(-i J dt Z_i Z_{i+1})`` on every chain edge (compiled into
``CX; RZ; CX``) followed by ``exp(-i h dt X_i)`` on every spin.  The paper's
``Isingmodel10`` and ``Isingmodel45`` benchmarks are instances of this family
with enough steps to reach a few hundred / a few thousand gates.
"""

from __future__ import annotations

import dataclasses

from ..circuits.circuit import Circuit
from ..errors import CircuitError

__all__ = ["IsingParameters", "ising_trotter_step", "ising_circuit", "ising_gate_count"]


@dataclasses.dataclass(frozen=True)
class IsingParameters:
    """Physical and discretisation parameters of the simulation.

    Attributes:
        coupling: the ZZ coupling strength J.
        field: the transverse field strength h.
        time_step: the Trotter step size dt.
        steps: number of Trotter steps.
        periodic: close the chain into a ring.
    """

    coupling: float = 1.0
    field: float = 1.0
    time_step: float = 0.1
    steps: int = 10
    periodic: bool = False

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise CircuitError("the Ising simulation needs at least one Trotter step")
        if self.time_step <= 0:
            raise CircuitError("the Trotter step size must be positive")


def _chain_edges(num_spins: int, periodic: bool) -> list[tuple[int, int]]:
    edges = [(i, i + 1) for i in range(num_spins - 1)]
    if periodic and num_spins > 2:
        edges.append((num_spins - 1, 0))
    return edges


def ising_trotter_step(circuit: Circuit, params: IsingParameters) -> Circuit:
    """Append one first-order Trotter step to the circuit."""
    num_spins = circuit.num_qubits
    zz_angle = 2.0 * params.coupling * params.time_step
    x_angle = 2.0 * params.field * params.time_step
    for a, b in _chain_edges(num_spins, params.periodic):
        circuit.cx(a, b)
        circuit.rz(zz_angle, b)
        circuit.cx(a, b)
    for q in range(num_spins):
        circuit.rx(x_angle, q)
    return circuit


def ising_circuit(
    num_spins: int,
    params: IsingParameters | None = None,
    *,
    initial_superposition: bool = False,
    name: str | None = None,
) -> Circuit:
    """The full Trotterised Ising evolution circuit.

    Args:
        num_spins: chain length (one qubit per spin).
        params: simulation parameters (defaults to :class:`IsingParameters()`).
        initial_superposition: start from ``|+...+>`` instead of ``|0...0>``
            (adds a layer of Hadamards).
        name: optional circuit name.
    """
    if num_spins < 2:
        raise CircuitError("the Ising chain needs at least two spins")
    params = params or IsingParameters()
    circuit = Circuit(num_spins, name=name or f"ising_{num_spins}")
    if initial_superposition:
        circuit.h_layer()
    for _ in range(params.steps):
        ising_trotter_step(circuit, params)
    return circuit


def ising_gate_count(num_spins: int, params: IsingParameters) -> int:
    """Gate count of :func:`ising_circuit` without the optional H layer."""
    edges = len(_chain_edges(num_spins, params.periodic))
    per_step = 3 * edges + num_spins
    return per_step * params.steps
