"""Gleipnir: practical, verified error analysis for quantum programs.

A from-scratch reproduction of the PLDI 2021 paper *"Gleipnir: Toward
Practical Error Analysis for Quantum Programs"*.  See README.md for a tour
and DESIGN.md for the system inventory.
"""

from .version import __version__
from .config import AnalysisConfig, ResourceGuard, SDPConfig
from .circuits import Circuit
from .noise import NoiseModel
from .core import (
    AnalysisResult,
    Derivation,
    GleipnirAnalyzer,
    analyze_program,
    exact_error,
    lqr_full_simulation_bound,
    worst_case_bound,
)
from .engine import (
    AnalysisEngine,
    AnalysisJob,
    AnalysisService,
    ComparisonJob,
    JobResult,
    ResultStore,
)
from .api import AnalysisOutcome, AnalysisSession, Client
from .metrics import ChannelMetric, MetricValue, get_metric, registered_metrics
from .mps import MPS, MPSApproximator, approximate_program
from .sdp import (
    DiamondNormBound,
    constrained_diamond_norm,
    diamond_distance,
    gate_error_bound,
    rho_delta_diamond_norm,
)
from .errors import (
    CertificationError,
    CircuitError,
    DerivationCheckError,
    DeviceError,
    EngineError,
    ExperimentError,
    GateError,
    LogicError,
    MetricError,
    MPSError,
    NoiseModelError,
    ReproError,
    ResourceLimitExceeded,
    SDPError,
    SimulationError,
    StorageBackendError,
)

__all__ = [
    "__version__",
    "AnalysisConfig",
    "ResourceGuard",
    "SDPConfig",
    "Circuit",
    "NoiseModel",
    "AnalysisResult",
    "Derivation",
    "GleipnirAnalyzer",
    "analyze_program",
    "exact_error",
    "lqr_full_simulation_bound",
    "worst_case_bound",
    "AnalysisEngine",
    "AnalysisJob",
    "AnalysisService",
    "ComparisonJob",
    "JobResult",
    "ResultStore",
    "AnalysisOutcome",
    "AnalysisSession",
    "Client",
    "ChannelMetric",
    "MetricValue",
    "get_metric",
    "registered_metrics",
    "MPS",
    "MPSApproximator",
    "approximate_program",
    "DiamondNormBound",
    "constrained_diamond_norm",
    "diamond_distance",
    "gate_error_bound",
    "rho_delta_diamond_norm",
    "ReproError",
    "CircuitError",
    "GateError",
    "SimulationError",
    "ResourceLimitExceeded",
    "NoiseModelError",
    "MPSError",
    "SDPError",
    "CertificationError",
    "LogicError",
    "DerivationCheckError",
    "DeviceError",
    "EngineError",
    "ExperimentError",
    "MetricError",
    "StorageBackendError",
]
