"""Matrix Product State representation of pure quantum states (Section 5).

An :class:`MPS` stores an n-qubit pure state as a chain of rank-3 tensors
``A_i`` with shape ``(chi_{i-1}, 2, chi_i)`` and ``chi_0 = chi_n = 1``.  The
class maintains a *mixed canonical form*: every tensor to the left of the
orthogonality ``center`` is left-isometric and every tensor to its right is
right-isometric.  This makes the local SVD truncation performed when applying
2-qubit gates *globally optimal*, so the per-step truncation errors recorded
by :mod:`repro.mps.truncation` are exactly the trace-norm distances the
paper's error accounting sums up.

Supported operations:

* exact single-qubit gate application (never truncates);
* two-site (adjacent) gate application with bond truncation;
* arbitrary-distance 2-qubit gates via an internal swap network
  (swap in, apply, swap back — every swap's truncation is accounted);
* inner products, norms, amplitudes, and conversion to a dense state vector;
* reduced density matrices on one or two (possibly non-adjacent) qubits,
  which feed the (ρ̂, δ)-diamond norm SDP;
* measurement probabilities and projective collapse, for branch support.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import MPSError
from ..linalg.operators import SWAP
from .truncation import TruncationInfo, split_theta

__all__ = ["MPS"]


class MPS:
    """A matrix product state over qubits (physical dimension 2)."""

    def __init__(
        self, tensors: Sequence[np.ndarray], *, center: int = 0, max_bond: int | None = None
    ):
        if not tensors:
            raise MPSError("an MPS needs at least one site")
        self._tensors = [np.asarray(t, dtype=np.complex128) for t in tensors]
        self._validate_shapes()
        self._center = int(center)
        if not 0 <= self._center < len(self._tensors):
            raise MPSError(f"center {center} outside 0..{len(self._tensors) - 1}")
        self.max_bond = int(max_bond) if max_bond is not None else None

    # ------------------------------------------------------------------ setup
    def _validate_shapes(self) -> None:
        for index, tensor in enumerate(self._tensors):
            if tensor.ndim != 3 or tensor.shape[1] != 2:
                raise MPSError(
                    f"site {index} tensor has shape {tensor.shape}, expected (chi, 2, chi')"
                )
        if self._tensors[0].shape[0] != 1 or self._tensors[-1].shape[2] != 1:
            raise MPSError("boundary bond dimensions must be 1")
        for index in range(len(self._tensors) - 1):
            if self._tensors[index].shape[2] != self._tensors[index + 1].shape[0]:
                raise MPSError(
                    f"bond mismatch between sites {index} and {index + 1}: "
                    f"{self._tensors[index].shape[2]} vs {self._tensors[index + 1].shape[0]}"
                )

    @classmethod
    def from_product_state(cls, bits: str | Sequence[int], *, max_bond: int | None = None) -> "MPS":
        """MPS of a computational-basis product state ``|bits>``."""
        values = [int(b) for b in bits]
        if not values:
            raise MPSError("product state needs at least one qubit")
        if any(v not in (0, 1) for v in values):
            raise MPSError(f"bits must be 0/1, got {bits!r}")
        tensors = []
        for value in values:
            tensor = np.zeros((1, 2, 1), dtype=np.complex128)
            tensor[0, value, 0] = 1.0
            tensors.append(tensor)
        return cls(tensors, center=0, max_bond=max_bond)

    @classmethod
    def zero_state(cls, num_qubits: int, *, max_bond: int | None = None) -> "MPS":
        """The all-zeros product state on ``num_qubits`` qubits."""
        return cls.from_product_state([0] * num_qubits, max_bond=max_bond)

    @classmethod
    def from_statevector(
        cls, statevector: np.ndarray, *, max_bond: int | None = None
    ) -> "MPS":
        """Exact (or truncated) MPS of a dense state vector.

        Intended for tests and small inputs; the cost is exponential in the
        number of qubits because the dense vector already is.
        """
        statevector = np.asarray(statevector, dtype=np.complex128).reshape(-1)
        dim = statevector.size
        n = int(round(np.log2(dim)))
        if 2**n != dim:
            raise MPSError(f"state vector length {dim} is not a power of two")
        tensors: list[np.ndarray] = []
        remainder = statevector.reshape(1, -1)
        chi = 1
        for site in range(n - 1):
            matrix = remainder.reshape(chi * 2, -1)
            u, s, vh = np.linalg.svd(matrix, full_matrices=False)
            keep = s.size if max_bond is None else min(s.size, max_bond)
            keep = max(1, int(np.count_nonzero(s[:keep] > 1e-15)) or 1)
            tensors.append(u[:, :keep].reshape(chi, 2, keep))
            remainder = (s[:keep, None] * vh[:keep, :])
            chi = keep
        tensors.append(remainder.reshape(chi, 2, 1))
        mps = cls(tensors, center=n - 1, max_bond=max_bond)
        return mps

    # ------------------------------------------------------------- properties
    @property
    def num_sites(self) -> int:
        return len(self._tensors)

    @property
    def num_qubits(self) -> int:
        return len(self._tensors)

    @property
    def center(self) -> int:
        return self._center

    @property
    def tensors(self) -> list[np.ndarray]:
        """The site tensors (a shallow copy of the list; do not mutate)."""
        return list(self._tensors)

    def bond_dimensions(self) -> list[int]:
        """Internal bond dimensions (length ``num_sites - 1``)."""
        return [self._tensors[i].shape[2] for i in range(self.num_sites - 1)]

    def max_bond_dimension(self) -> int:
        dims = self.bond_dimensions()
        return max(dims) if dims else 1

    def copy(self) -> "MPS":
        clone = MPS([t.copy() for t in self._tensors], center=self._center, max_bond=self.max_bond)
        return clone

    # ------------------------------------------------------------ contraction
    def norm_squared(self) -> float:
        env = np.ones((1, 1), dtype=np.complex128)
        for tensor in self._tensors:
            env = np.einsum("ab,asc,bsd->cd", env, tensor, tensor.conj(), optimize=True)
        return float(env[0, 0].real)

    def norm(self) -> float:
        return float(np.sqrt(max(0.0, self.norm_squared())))

    def normalize(self) -> "MPS":
        """Scale the state to unit norm (in place); returns self."""
        norm = self.norm()
        if norm <= 0:
            raise MPSError("cannot normalise a zero state")
        self._tensors[self._center] = self._tensors[self._center] / norm
        return self

    def inner(self, other: "MPS") -> complex:
        """Inner product ``<self|other>`` (Figure 12/13 contraction)."""
        if other.num_sites != self.num_sites:
            raise MPSError("inner product requires equal numbers of sites")
        env = np.ones((1, 1), dtype=np.complex128)
        for ket, bra in zip(other._tensors, self._tensors):
            env = np.einsum("ab,asc,bsd->cd", env, ket, bra.conj(), optimize=True)
        return complex(env[0, 0])

    def overlap_error(self, other: "MPS") -> float:
        """Trace-norm distance ``|| |self><self| - |other><other| ||_1``.

        Both states are normalised before comparison (the formula
        ``2 sqrt(1 - |<a|b>|^2)`` assumes unit vectors).
        """
        na, nb = self.norm(), other.norm()
        if na <= 0 or nb <= 0:
            raise MPSError("cannot compare zero states")
        overlap = abs(self.inner(other)) / (na * nb)
        overlap = min(1.0, overlap)
        return 2.0 * float(np.sqrt(max(0.0, 1.0 - overlap**2)))

    def to_statevector(self) -> np.ndarray:
        """Dense state vector (exponential; intended for tests/small systems)."""
        if self.num_sites > 26:
            raise MPSError("refusing to densify an MPS with more than 26 qubits")
        psi = np.ones((1, 1), dtype=np.complex128)
        for tensor in self._tensors:
            psi = np.einsum("xa,asb->xsb", psi, tensor, optimize=True)
            psi = psi.reshape(-1, tensor.shape[2])
        return psi.reshape(-1)

    def amplitude(self, bits: str | Sequence[int]) -> complex:
        """Amplitude ``<bits|psi>``."""
        values = [int(b) for b in bits]
        if len(values) != self.num_sites:
            raise MPSError(f"expected {self.num_sites} bits, got {len(values)}")
        env = np.ones((1,), dtype=np.complex128)
        for value, tensor in zip(values, self._tensors):
            env = env @ tensor[:, value, :]
        return complex(env[0])

    # --------------------------------------------------------- canonical form
    def _qr_step_right(self, site: int) -> None:
        """Make site ``site`` left-isometric, pushing weight to ``site + 1``."""
        tensor = self._tensors[site]
        chi_left, _, chi_right = tensor.shape
        matrix = tensor.reshape(chi_left * 2, chi_right)
        q, r = np.linalg.qr(matrix)
        k = q.shape[1]
        self._tensors[site] = q.reshape(chi_left, 2, k)
        self._tensors[site + 1] = np.einsum(
            "kr,rsb->ksb", r, self._tensors[site + 1], optimize=True
        )

    def _qr_step_left(self, site: int) -> None:
        """Make site ``site`` right-isometric, pushing weight to ``site - 1``."""
        tensor = self._tensors[site]
        chi_left, _, chi_right = tensor.shape
        matrix = tensor.reshape(chi_left, 2 * chi_right)
        # LQ decomposition via QR of the conjugate transpose.
        q, r = np.linalg.qr(matrix.conj().T)
        k = q.shape[1]
        self._tensors[site] = q.conj().T.reshape(k, 2, chi_right)
        self._tensors[site - 1] = np.einsum(
            "lsa,ak->lsk", self._tensors[site - 1], r.conj().T, optimize=True
        )

    def canonicalize(self, center: int = 0) -> "MPS":
        """Bring the MPS into mixed canonical form around ``center`` (in place)."""
        if not 0 <= center < self.num_sites:
            raise MPSError(f"center {center} outside 0..{self.num_sites - 1}")
        for site in range(0, center):
            self._qr_step_right(site)
        for site in range(self.num_sites - 1, center, -1):
            self._qr_step_left(site)
        self._center = center
        return self

    def move_center(self, target: int) -> "MPS":
        """Move the orthogonality center to ``target`` one QR step at a time."""
        if not 0 <= target < self.num_sites:
            raise MPSError(f"target {target} outside 0..{self.num_sites - 1}")
        while self._center < target:
            self._qr_step_right(self._center)
            self._center += 1
        while self._center > target:
            self._qr_step_left(self._center)
            self._center -= 1
        return self

    # --------------------------------------------------------- gate application
    def apply_single_qubit_gate(self, matrix: np.ndarray, site: int) -> TruncationInfo:
        """Apply a 1-qubit gate exactly (Figure 10); never truncates."""
        matrix = np.asarray(matrix, dtype=np.complex128)
        if matrix.shape != (2, 2):
            raise MPSError(f"expected a 2x2 gate, got shape {matrix.shape}")
        self._check_site(site)
        self._tensors[site] = np.einsum(
            "st,atb->asb", matrix, self._tensors[site], optimize=True
        )
        return TruncationInfo.zero()

    def apply_two_site_gate(self, matrix: np.ndarray, site: int) -> TruncationInfo:
        """Apply a 2-qubit gate to adjacent sites ``(site, site + 1)`` (Figure 11).

        The gate matrix is given in the usual ``|q_site q_{site+1}>`` ordering.
        Returns the truncation record of the SVD split.
        """
        matrix = np.asarray(matrix, dtype=np.complex128)
        if matrix.shape != (4, 4):
            raise MPSError(f"expected a 4x4 gate, got shape {matrix.shape}")
        if site < 0 or site + 1 >= self.num_sites:
            raise MPSError(f"two-site gate at {site} outside the chain")
        self.move_center(site)
        theta = np.einsum(
            "lsa,atr->lstr", self._tensors[site], self._tensors[site + 1], optimize=True
        )
        gate = matrix.reshape(2, 2, 2, 2)
        theta = np.einsum("abst,lstr->labr", gate, theta, optimize=True)
        max_bond = self.max_bond if self.max_bond is not None else theta.shape[0] * 2
        left, right, info = split_theta(theta, max_bond)
        self._tensors[site] = left
        self._tensors[site + 1] = right
        self._center = site + 1
        return info

    def swap_sites(self, site: int) -> TruncationInfo:
        """Swap the qubits at sites ``site`` and ``site + 1`` (may truncate)."""
        return self.apply_two_site_gate(SWAP, site)

    def apply_gate(self, matrix: np.ndarray, qubits: Sequence[int]) -> list[TruncationInfo]:
        """Apply a 1- or 2-qubit gate on arbitrary (possibly distant) qubits.

        Distant 2-qubit gates are routed with an internal swap network: the
        second operand is swapped next to the first, the gate is applied, and
        the swaps are undone.  Every step's truncation is recorded; the list
        of records is returned in application order.
        """
        qubits = [int(q) for q in qubits]
        matrix = np.asarray(matrix, dtype=np.complex128)
        if len(qubits) == 1:
            self._check_site(qubits[0])
            return [self.apply_single_qubit_gate(matrix, qubits[0])]
        if len(qubits) != 2:
            raise MPSError("MPS gate application supports 1- and 2-qubit gates only")
        a, b = qubits
        self._check_site(a)
        self._check_site(b)
        if a == b:
            raise MPSError("2-qubit gate applied to a single qubit twice")
        if a > b:
            # Reorder operands so a < b; permute the gate accordingly.
            a, b = b, a
            matrix = SWAP @ matrix @ SWAP
        records: list[TruncationInfo] = []
        # Bring qubit at site b next to site a (to position a+1).
        for site in range(b - 1, a, -1):
            records.append(self.swap_sites(site))
        records.append(self.apply_two_site_gate(matrix, a))
        # Undo the routing swaps.
        for site in range(a + 1, b):
            records.append(self.swap_sites(site))
        return records

    def _check_site(self, site: int) -> None:
        if site < 0 or site >= self.num_sites:
            raise MPSError(f"site {site} outside 0..{self.num_sites - 1}")

    # --------------------------------------------------------------- measurement
    def outcome_probability(self, site: int, outcome: int) -> float:
        """Probability of measuring ``outcome`` (0/1) on ``site``."""
        if outcome not in (0, 1):
            raise MPSError("outcome must be 0 or 1")
        rho = self.reduced_density_matrix([site])
        return float(np.real(rho[outcome, outcome]))

    def project(self, site: int, outcome: int) -> float:
        """Collapse ``site`` onto ``outcome``; returns the outcome probability.

        The state is renormalised after the projection.  Used by the MPS
        approximator to support ``if`` statements (Section 5.2, "Supporting
        branches").
        """
        probability = self.outcome_probability(site, outcome)
        if probability <= 1e-15:
            raise MPSError(
                f"cannot project site {site} onto outcome {outcome} of probability ~0"
            )
        tensor = self._tensors[site].copy()
        tensor[:, 1 - outcome, :] = 0.0
        self._tensors[site] = tensor
        # Projection breaks the isometric structure; rebuild it.
        self.canonicalize(self._center)
        self.normalize()
        return probability

    # ----------------------------------------------------- reduced density matrices
    def _left_environment(self, site: int) -> np.ndarray:
        """Environment of sites ``0..site-1`` (ket x bra bond indices)."""
        chi = self._tensors[site].shape[0]
        if site <= self._center:
            return np.eye(chi, dtype=np.complex128)
        env = np.ones((1, 1), dtype=np.complex128)
        for index in range(site):
            tensor = self._tensors[index]
            env = np.einsum("ab,asc,bsd->cd", env, tensor, tensor.conj(), optimize=True)
        return env

    def _right_environment(self, site: int) -> np.ndarray:
        """Environment of sites ``site+1..n-1`` (ket x bra bond indices)."""
        chi = self._tensors[site].shape[2]
        if site >= self._center:
            return np.eye(chi, dtype=np.complex128)
        env = np.ones((1, 1), dtype=np.complex128)
        for index in range(self.num_sites - 1, site, -1):
            tensor = self._tensors[index]
            env = np.einsum("cd,asc,bsd->ab", env, tensor, tensor.conj(), optimize=True)
        return env

    def reduced_density_matrix(self, qubits: Sequence[int]) -> np.ndarray:
        """Local density matrix on one or two qubits, in the given order.

        This is the ρ' fed to the (ρ̂, δ)-diamond norm SDP (Section 6,
        "Computing local density matrix").  The result is normalised to unit
        trace to protect against accumulated floating-point norm drift.
        """
        qubits = [int(q) for q in qubits]
        for q in qubits:
            self._check_site(q)
        # Moving the orthogonality center to the leftmost requested site makes
        # both environments identities, so the contraction below only touches
        # the sites between the requested qubits.
        self.move_center(min(qubits))
        if len(qubits) == 1:
            rho = self._rdm_single(qubits[0])
        elif len(qubits) == 2:
            if qubits[0] == qubits[1]:
                raise MPSError("duplicate qubits in reduced density matrix request")
            i, j = qubits
            if i < j:
                rho = self._rdm_pair(i, j)
            else:
                rho = self._rdm_pair(j, i)
                # Swap the tensor factors back into the requested order.
                rho = rho.reshape(2, 2, 2, 2).transpose(1, 0, 3, 2).reshape(4, 4)
        else:
            raise MPSError("reduced density matrices support 1 or 2 qubits only")
        rho = (rho + rho.conj().T) / 2
        trace = float(np.trace(rho).real)
        if trace <= 0:
            raise MPSError("reduced density matrix has non-positive trace")
        return rho / trace

    def _rdm_single(self, site: int) -> np.ndarray:
        left = self._left_environment(site)
        right = self._right_environment(site)
        tensor = self._tensors[site]
        rho = np.einsum(
            "ab,asc,btd,cd->st", left, tensor, tensor.conj(), right, optimize=True
        )
        return rho

    def _rdm_pair(self, i: int, j: int) -> np.ndarray:
        left = self._left_environment(i)
        right = self._right_environment(j)
        tensor_i = self._tensors[i]
        # T[c, d, s, t]: open ket bond c, bra bond d, ket physical s, bra physical t.
        transfer = np.einsum(
            "ab,asc,btd->cdst", left, tensor_i, tensor_i.conj(), optimize=True
        )
        for index in range(i + 1, j):
            tensor = self._tensors[index]
            transfer = np.einsum(
                "cdst,cue,dug->egst", transfer, tensor, tensor.conj(), optimize=True
            )
        tensor_j = self._tensors[j]
        rho = np.einsum(
            "cdst,cue,dvg,eg->sutv", transfer, tensor_j, tensor_j.conj(), right, optimize=True
        )
        return rho.reshape(4, 4)

    def expectation_single(self, operator: np.ndarray, site: int) -> complex:
        """Expectation value of a single-qubit operator on ``site``."""
        operator = np.asarray(operator, dtype=np.complex128)
        rho = self.reduced_density_matrix([site])
        return complex(np.trace(operator @ rho))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MPS(num_qubits={self.num_sites}, max_bond={self.max_bond}, "
            f"bond_dims={self.bond_dimensions()})"
        )
