"""SVD truncation bookkeeping for the MPS approximator (Section 5.2).

When a 2-qubit gate is applied to an MPS, the two affected site tensors are
contracted, the gate is applied, and the result is split back with an SVD.
If the number of non-negligible singular values exceeds the bond dimension
``w``, the smallest ones are dropped; the resulting *truncation error* is the
trace-norm distance between the states before and after truncation,

``delta = 2 * sqrt(discarded_weight / total_weight)``,

which follows from ``|| |phi><phi| - |psi><psi| ||_1 = 2 sqrt(1 - |<phi|psi>|^2)``
for pure states (Section 5.2).  These per-step errors add up to the sound
approximation bound returned by ``TN(rho0, P)`` (Theorem 5.1).
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["TruncationInfo", "split_theta"]


@dataclasses.dataclass(frozen=True)
class TruncationInfo:
    """Record of one SVD truncation step.

    Attributes:
        discarded_weight: sum of squared singular values that were dropped.
        total_weight: sum of all squared singular values (the squared norm of
            the two-site wavefunction before truncation).
        kept: number of singular values kept (the new bond dimension).
        available: number of non-zero singular values before truncation.
    """

    discarded_weight: float
    total_weight: float
    kept: int
    available: int

    @property
    def trace_norm_error(self) -> float:
        """Trace-norm distance ``|| |before><before| - |after><after| ||_1``."""
        if self.total_weight <= 0:
            return 0.0
        ratio = min(1.0, max(0.0, self.discarded_weight / self.total_weight))
        return 2.0 * float(np.sqrt(ratio))

    @property
    def fidelity(self) -> float:
        """Squared overlap between the states before and after truncation."""
        if self.total_weight <= 0:
            return 1.0
        return max(0.0, 1.0 - self.discarded_weight / self.total_weight)

    @property
    def truncated(self) -> bool:
        return self.discarded_weight > 0.0

    @staticmethod
    def zero() -> "TruncationInfo":
        """A no-op truncation record (exact step)."""
        return TruncationInfo(0.0, 1.0, 0, 0)

    def __add__(self, other: "TruncationInfo") -> "TruncationInfo":  # pragma: no cover
        raise TypeError(
            "TruncationInfo records do not add directly; accumulate their "
            "trace_norm_error values instead (the paper's delta is additive, "
            "the records are not)"
        )


def split_theta(
    theta: np.ndarray, max_bond: int, *, svd_cutoff: float = 1e-14
) -> tuple[np.ndarray, np.ndarray, TruncationInfo]:
    """Split a two-site wavefunction with a truncated SVD.

    Args:
        theta: array of shape ``(chi_left, 2, 2, chi_right)`` holding the
            contracted two-site tensor (gate already applied).
        max_bond: maximum bond dimension ``w`` to keep.
        svd_cutoff: singular values below this relative threshold are treated
            as numerically zero (they do not count as "available").

    Returns:
        ``(left_tensor, right_tensor, info)`` where ``left_tensor`` has shape
        ``(chi_left, 2, k)`` and is left-isometric, ``right_tensor`` has shape
        ``(k, 2, chi_right)`` and carries the singular values (renormalised so
        the state's norm is preserved), and ``info`` records the truncation.
    """
    chi_left, d1, d2, chi_right = theta.shape
    matrix = theta.reshape(chi_left * d1, d2 * chi_right)
    u, s, vh = np.linalg.svd(matrix, full_matrices=False)

    total_weight = float(np.sum(s**2))
    if total_weight <= 0:
        raise ValueError("two-site wavefunction has zero norm")
    scale = s[0] if s[0] > 0 else 1.0
    available = int(np.count_nonzero(s > svd_cutoff * scale))
    available = max(available, 1)

    kept = max(1, min(int(max_bond), available))
    discarded_weight = float(np.sum(s[kept:] ** 2))
    kept_weight = total_weight - discarded_weight

    s_kept = s[:kept]
    # Renormalise so the truncated state keeps the original norm.
    s_kept = s_kept * np.sqrt(total_weight / kept_weight)

    left = u[:, :kept].reshape(chi_left, d1, kept)
    right = (s_kept[:, None] * vh[:kept, :]).reshape(kept, d2, chi_right)
    info = TruncationInfo(
        discarded_weight=discarded_weight,
        total_weight=total_weight,
        kept=kept,
        available=available,
    )
    return left, right, info
