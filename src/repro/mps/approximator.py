"""The tensor-network state approximator ``TN(rho0, P) = (rho_hat, delta)``.

This module drives the MPS machinery over whole programs:

* :class:`MPSApproximator` is the stateful, gate-by-gate interface used by
  the quantum error logic (Section 4): before bounding a gate's error it asks
  for the local predicate ``(rho', delta)``; after bounding it advances the
  MPS through the (ideal) gate and accumulates the truncation error;
* :func:`approximate_program` runs a whole program at once, returning the
  approximated output state(s) and the sound approximation bound δ of
  Theorem 5.1 — including measurement branches, which fork the MPS as
  described in Section 5.2 ("Supporting branches").

The approximator always evolves the *ideal* program: gate noise never enters
here.  Noise is handled exclusively by the (ρ̂, δ)-diamond norm of the gates
(Section 6); δ only accounts for the MPS truncation error.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.program import GateOp, IfMeasure, Program, Seq, Skip
from ..config import DEFAULT_MPS_WIDTH
from ..errors import MPSError
from .mps import MPS
from .truncation import TruncationInfo

__all__ = [
    "LocalPredicate",
    "MPSApproximator",
    "ApproximationBranch",
    "ApproximationResult",
    "approximate_program",
]


@dataclasses.dataclass(frozen=True)
class LocalPredicate:
    """The ``(rho', delta)`` pair used to constrain a gate's diamond norm.

    ``rho_local`` is the reduced density matrix of the approximate state on
    the gate's qubits (in gate operand order); ``delta`` is the accumulated
    trace-norm distance bound between the approximate global state and the
    ideal global state at this point of the program.
    """

    rho_local: np.ndarray
    delta: float
    qubits: tuple[int, ...]


class MPSApproximator:
    """Stateful MPS evolution with sound truncation-error accounting."""

    def __init__(self, mps: MPS, *, delta: float = 0.0):
        self._mps = mps
        self._delta = float(delta)
        self._truncations: list[TruncationInfo] = []

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_product_state(
        cls, bits: str | Sequence[int], *, width: int = DEFAULT_MPS_WIDTH
    ) -> "MPSApproximator":
        return cls(MPS.from_product_state(bits, max_bond=width))

    @classmethod
    def zero_state(cls, num_qubits: int, *, width: int = DEFAULT_MPS_WIDTH) -> "MPSApproximator":
        return cls(MPS.zero_state(num_qubits, max_bond=width))

    @classmethod
    def from_statevector(
        cls, statevector: np.ndarray, *, width: int = DEFAULT_MPS_WIDTH
    ) -> "MPSApproximator":
        mps = MPS.from_statevector(statevector, max_bond=width)
        # Building the MPS from a dense vector may itself truncate; that error
        # must be carried into delta to stay sound.
        exact = MPS.from_statevector(statevector, max_bond=None)
        initial_delta = exact.overlap_error(mps) if mps.max_bond is not None else 0.0
        return cls(mps, delta=initial_delta)

    # -- accessors -------------------------------------------------------------
    @property
    def mps(self) -> MPS:
        return self._mps

    @property
    def delta(self) -> float:
        """Accumulated approximation bound ``delta`` (trace-norm convention)."""
        return min(2.0, self._delta)

    @property
    def width(self) -> int | None:
        return self._mps.max_bond

    @property
    def num_qubits(self) -> int:
        return self._mps.num_qubits

    @property
    def truncation_history(self) -> list[TruncationInfo]:
        return list(self._truncations)

    def copy(self) -> "MPSApproximator":
        clone = MPSApproximator(self._mps.copy(), delta=self._delta)
        clone._truncations = list(self._truncations)
        return clone

    def weaken_to(self, delta: float) -> "MPSApproximator":
        """Raise the accumulated distance bound (never lowers it); returns self.

        Corresponds to using the Weaken rule in reverse: declaring that the
        approximation is only known to be within ``delta`` of the ideal state.
        Used for measurement branches the approximation deems unreachable,
        where ``delta = 2`` makes the predicate vacuous.
        """
        if delta < self._delta:
            raise MPSError("weaken_to cannot decrease the approximation bound")
        self._delta = float(delta)
        return self

    # -- predicates --------------------------------------------------------------
    def local_predicate(self, qubits: Sequence[int]) -> LocalPredicate:
        """The ``(rho', delta)`` predicate for a gate acting on ``qubits``."""
        qubits = tuple(int(q) for q in qubits)
        rho = self._mps.reduced_density_matrix(qubits)
        return LocalPredicate(rho_local=rho, delta=self.delta, qubits=qubits)

    # -- evolution ------------------------------------------------------------------
    def apply_gate_op(self, op: GateOp) -> float:
        """Advance the MPS through one ideal gate; returns the added truncation."""
        return self.apply_gate(op.gate.matrix, op.qubits)

    def apply_gate(self, matrix: np.ndarray, qubits: Sequence[int]) -> float:
        """Apply a gate matrix to the MPS and accumulate its truncation error."""
        records = self._mps.apply_gate(np.asarray(matrix, dtype=np.complex128), list(qubits))
        added = 0.0
        for record in records:
            self._truncations.append(record)
            added += record.trace_norm_error
        self._delta += added
        return added

    def apply_circuit(self, circuit: Circuit | Program) -> float:
        """Apply every gate of a branch-free circuit/program; returns added delta."""
        program = circuit.to_program() if isinstance(circuit, Circuit) else circuit
        added = 0.0
        for op in program.operations():
            added += self.apply_gate_op(op)
        return added

    # -- measurement branching ---------------------------------------------------------
    def branch_on_measurement(self, qubit: int) -> list[tuple[int, float, "MPSApproximator"]]:
        """Fork the approximator on a computational-basis measurement of ``qubit``.

        Returns a list of ``(outcome, probability, approximator)`` tuples for
        the outcomes with non-negligible probability.  Each branch keeps the
        parent's accumulated δ (projections do not increase trace distance,
        see the Meas soundness argument in Appendix A).
        """
        branches: list[tuple[int, float, MPSApproximator]] = []
        for outcome in (0, 1):
            probability = self._mps.outcome_probability(qubit, outcome)
            if probability <= 1e-12:
                continue
            child = self.copy()
            child._mps.project(qubit, outcome)
            branches.append((outcome, probability, child))
        if not branches:
            raise MPSError(f"measurement of qubit {qubit} has no feasible outcome")
        return branches


@dataclasses.dataclass(frozen=True)
class ApproximationBranch:
    """One measurement branch of an approximated program run."""

    outcomes: tuple[tuple[int, int], ...]
    probability: float
    approximator: MPSApproximator

    @property
    def delta(self) -> float:
        return self.approximator.delta


@dataclasses.dataclass(frozen=True)
class ApproximationResult:
    """Output of ``TN(rho0, P)``: approximate state(s) and sound bound δ.

    For branch-free programs there is exactly one branch.  Following the
    paper, the overall approximation bound is the sum of the bounds incurred
    on all branches.
    """

    branches: tuple[ApproximationBranch, ...]

    @property
    def delta(self) -> float:
        return min(2.0, sum(branch.delta for branch in self.branches))

    @property
    def approximator(self) -> MPSApproximator:
        if len(self.branches) != 1:
            raise MPSError(
                "ApproximationResult.approximator is only defined for branch-free runs"
            )
        return self.branches[0].approximator

    @property
    def mps(self) -> MPS:
        return self.approximator.mps

    def num_branches(self) -> int:
        return len(self.branches)


def _run(
    program: Program,
    approximator: MPSApproximator,
    outcomes: tuple[tuple[int, int], ...],
    probability: float,
) -> list[ApproximationBranch]:
    if isinstance(program, Skip):
        return [ApproximationBranch(outcomes, probability, approximator)]
    if isinstance(program, GateOp):
        approximator.apply_gate_op(program)
        return [ApproximationBranch(outcomes, probability, approximator)]
    if isinstance(program, Seq):
        branches = [ApproximationBranch(outcomes, probability, approximator)]
        for part in program.parts:
            next_branches: list[ApproximationBranch] = []
            for branch in branches:
                next_branches.extend(
                    _run(part, branch.approximator, branch.outcomes, branch.probability)
                )
            branches = next_branches
        return branches
    if isinstance(program, IfMeasure):
        results: list[ApproximationBranch] = []
        for outcome, prob, child in approximator.branch_on_measurement(program.qubit):
            subprogram = program.then_branch if outcome == 0 else program.else_branch
            results.extend(
                _run(
                    subprogram,
                    child,
                    outcomes + ((program.qubit, outcome),),
                    probability * prob,
                )
            )
        return results
    raise MPSError(f"unknown program node {type(program).__name__}")


def approximate_program(
    program: Program | Circuit,
    *,
    initial_bits: str | Sequence[int] | None = None,
    num_qubits: int | None = None,
    width: int = DEFAULT_MPS_WIDTH,
) -> ApproximationResult:
    """Run ``TN(rho0, P)`` over a whole program.

    Args:
        program: the program (or circuit) to approximate.
        initial_bits: computational-basis input state (defaults to all zeros).
        num_qubits: register size (inferred if omitted).
        width: MPS bond dimension ``w``.

    Returns:
        An :class:`ApproximationResult` whose ``delta`` soundly bounds the
        trace-norm distance between the approximation and the ideal output
        (per branch; summed over branches as in the paper).
    """
    ast = program.to_program() if isinstance(program, Circuit) else program
    if num_qubits is None:
        num_qubits = program.num_qubits if isinstance(program, Circuit) else ast.num_qubits
    if num_qubits == 0:
        raise MPSError("cannot approximate a program with no qubits")
    if initial_bits is None:
        initial_bits = [0] * num_qubits
    bits = [int(b) for b in initial_bits]
    if len(bits) != num_qubits:
        raise MPSError(f"initial state has {len(bits)} bits for {num_qubits} qubits")
    approximator = MPSApproximator.from_product_state(bits, width=width)
    branches = _run(ast, approximator, (), 1.0)
    return ApproximationResult(tuple(branches))
