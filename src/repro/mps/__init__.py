"""Matrix Product State tensor networks and the TN(rho0, P) approximator."""

from .mps import MPS
from .truncation import TruncationInfo, split_theta
from .approximator import (
    ApproximationBranch,
    ApproximationResult,
    LocalPredicate,
    MPSApproximator,
    approximate_program,
)

__all__ = [
    "MPS",
    "TruncationInfo",
    "split_theta",
    "ApproximationBranch",
    "ApproximationResult",
    "LocalPredicate",
    "MPSApproximator",
    "approximate_program",
]
