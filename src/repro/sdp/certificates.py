"""Dual certificates for the constrained diamond-norm SDPs.

The primal SDP of Eq. (2) maximises ``tr(J(Phi) W)``; its Lagrangian dual is

    minimise    lambda_max( Tr_out(Z) + y * Q ) - y * c
    subject to  Z >= J(Phi),  Z >= 0,  y >= 0,

where ``Q`` is the linear constraint operator (the local density matrix ρ'
for the (ρ̂, δ)-norm, the predicate Q for the (Q, λ)-norm) and ``c`` the
constraint bound.  By weak duality, *every* feasible ``(Z, y)`` yields a sound
upper bound on the constrained diamond norm — this is what makes Gleipnir's
reported bounds verified even though the underlying first-order solver is
approximate.

This module provides:

* :func:`repair_dual_candidate` / :func:`repair_dual_candidates_batch` — turn
  arbitrary Hermitian candidates into exactly feasible ``Z`` (two PSD
  projections; no iteration needed);
* :func:`certified_value` / :func:`certified_values_batch` — the dual
  objective at feasible ``Z`` after a one-dimensional convex minimisation
  over ``y >= 0``;
* :func:`verify_certificate` — an independent feasibility re-check used when
  re-validating derivations.

The batch variants are the certification half of the single-pass pipeline:
every per-element operation (PSD projection, output-trace map, λ_max, the
golden-section search over y) is fused into whole-stack numpy calls whose
per-element results do not depend on what else is in the stack.  The scalar
entry points are literal batch-of-one calls, so certifying candidates one at
a time and certifying them as a batch produce bit-identical bounds.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import CertificationError
from ..linalg.channels import choi_output_trace_map
from ..linalg.decompositions import min_eigenvalue
from .kernel import positive_part_stack

__all__ = [
    "DualCertificate",
    "repair_dual_candidate",
    "repair_dual_candidates_batch",
    "certified_value",
    "certified_values_batch",
    "verify_certificate",
]

#: Fixed iteration count of the vectorised golden-section search over y.
#: The bracket shrinks by the inverse golden ratio per iteration, so 80
#: iterations reduce it by ~1e-17 relative — beyond double precision.  The
#: count is fixed (no data-dependent early exit) so the evaluation points of
#: one element never depend on the rest of the batch.
GOLDEN_SECTION_ITERATIONS = 80

#: Split of the shared-bracket search (``share_bracket=True``): the bracket
#: is first refined on one *pilot* candidate per request (the best candidate
#: at the initial probes), then every candidate polishes independently inside
#: the shared bracket.  40 pilot iterations shrink the bracket by ~4e-9
#: relative and 24 polish iterations by another ~1e-5, so the pilot — almost
#: always the winning candidate — is located to ~1e-13 relative while the
#: per-candidate eigenvalue work drops from 80 full-stack sweeps to 24.
#: Counts are fixed for the same composition-independence reason as above.
GOLDEN_SECTION_SHARED_ITERATIONS = 40
GOLDEN_SECTION_POLISH_ITERATIONS = 24

_INVPHI = (np.sqrt(5.0) - 1.0) / 2.0
_INVPHI2 = (3.0 - np.sqrt(5.0)) / 2.0


@dataclasses.dataclass(frozen=True)
class DualCertificate:
    """A verified dual-feasible point and the bound it certifies.

    Attributes:
        value: the certified upper bound on the constrained diamond norm.
        z: the dual matrix variable (feasible: ``z >= 0`` and ``z >= choi``).
        y: the multiplier of the linear constraint (0 when unconstrained).
        constraint_operator: the operator Q of the linear constraint (or None).
        constraint_bound: the bound c of the linear constraint.
    """

    value: float
    z: np.ndarray
    y: float
    constraint_operator: np.ndarray | None
    constraint_bound: float


def repair_dual_candidates_batch(
    candidates: np.ndarray, chois: np.ndarray
) -> np.ndarray:
    """Project a stack of Hermitian candidates onto the dual feasible set.

    Construction per element: let ``A = (candidate)_+`` (PSD part) and return
    ``Z = A + (choi - A)_+``.  Then ``Z >= 0`` (sum of PSD matrices) and
    ``Z - choi = (choi - A)_+ - (choi - A) = (choi - A)_- >= 0``, so ``Z`` is
    feasible by construction — regardless of how bad the candidate was.

    ``candidates`` has shape ``(..., d, d)``; ``chois`` must broadcast
    against it (e.g. ``(M, 1, d, d)`` against ``(M, C, d, d)`` candidates).
    """
    candidates = np.asarray(candidates, dtype=np.complex128)
    chois = np.asarray(chois, dtype=np.complex128)
    if candidates.shape[-2:] != chois.shape[-2:]:
        raise CertificationError(
            f"candidate shape {candidates.shape[-2:]} does not match "
            f"Choi shape {chois.shape[-2:]}"
        )
    a = positive_part_stack(candidates)
    return a + positive_part_stack(chois - a)


def repair_dual_candidate(candidate: np.ndarray, choi: np.ndarray) -> np.ndarray:
    """Scalar entry point of :func:`repair_dual_candidates_batch`."""
    candidate = np.asarray(candidate, dtype=np.complex128)
    choi = np.asarray(choi, dtype=np.complex128)
    if candidate.shape != choi.shape:
        raise CertificationError(
            f"candidate shape {candidate.shape} does not match Choi shape {choi.shape}"
        )
    return repair_dual_candidates_batch(candidate[None], choi[None])[0]


def _symmetrise_stack(matrices: np.ndarray) -> np.ndarray:
    return (matrices + matrices.conj().swapaxes(-1, -2)) / 2


def _dual_objective(
    z: np.ndarray,
    y: float,
    constraint_operator: np.ndarray | None,
    constraint_bound: float,
) -> float:
    reduced = choi_output_trace_map(z)
    if constraint_operator is None or y == 0.0:
        matrix = reduced
        penalty = 0.0
    else:
        matrix = reduced + y * constraint_operator
        penalty = y * constraint_bound
    eigenvalues = np.linalg.eigvalsh((matrix + matrix.conj().T) / 2)
    return float(eigenvalues.max() - penalty)


def certified_values_batch(
    zs: np.ndarray,
    *,
    constraint_operators: np.ndarray | None = None,
    constraint_bounds: np.ndarray | None = None,
    y_hints: np.ndarray | None = None,
    share_bracket: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Certified dual objectives for a stack of feasible ``Z``, fully fused.

    Args:
        zs: dual matrices, shape ``(..., big, big)``.
        constraint_operators: per-element predicate operators, broadcastable
            to the leading shape plus ``(dim, dim)``; None for a fully
            unconstrained stack.
        constraint_bounds: per-element bounds ``c``; elements with ``c <= 0``
            are treated as unconstrained.
        y_hints: per-element warm starts for the multiplier search (NaN or
            non-positive entries are ignored).
        share_bracket: treat the *last* leading axis of ``zs`` as the
            candidate axis of one request (shape ``(..., C, d, d)``), whose
            candidates share one constraint: the golden-section bracket is
            refined on a per-request pilot candidate and only then polished
            per candidate, cutting the full-stack eigenvalue sweeps from
            :data:`GOLDEN_SECTION_ITERATIONS` to
            :data:`GOLDEN_SECTION_POLISH_ITERATIONS` (plus the cheap pilot
            phase).  Requires the constraint operator and bound of a request
            to be uniform along the candidate axis, as the batch
            certification pass guarantees.

    Returns:
        ``(values, ys)`` — per-element certified bounds and the multipliers
        that achieve them.  When a constraint is active the convex objective
        ``g(y) = λ_max(Tr_out(Z) + y Q) - y c`` is minimised over ``y >= 0``
        with a fixed-iteration golden-section search whose every evaluated
        point is itself a sound bound; the best evaluated point is returned,
        so the result is certified no matter how the search behaves.
    """
    if (constraint_operators is None) != (constraint_bounds is None):
        raise CertificationError(
            "constraint_operators and constraint_bounds must be supplied together"
        )
    zs = np.asarray(zs, dtype=np.complex128)
    lead = zs.shape[:-2]
    reduced = _symmetrise_stack(choi_output_trace_map(zs))
    base = np.linalg.eigvalsh(reduced).max(axis=-1)
    values = base.copy()
    ys = np.zeros(lead, dtype=float)
    if constraint_operators is None or base.size == 0:
        return values, ys

    operators = _symmetrise_stack(np.asarray(constraint_operators, np.complex128))
    operators = np.broadcast_to(operators, lead + operators.shape[-2:])
    bounds = np.broadcast_to(np.asarray(constraint_bounds, dtype=float), lead)
    if share_bracket:
        if zs.ndim < 4:
            raise CertificationError(
                "share_bracket requires a (..., candidates, d, d) stack"
            )
        return _certified_values_shared(
            values, ys, reduced, operators, bounds, y_hints, lead
        )
    active = bounds > 0.0
    if not np.any(active):
        return values, ys

    flat_reduced = reduced[active]
    flat_ops = operators[active]
    flat_bounds = bounds[active]
    flat_base = base[active]

    def objective(y: np.ndarray) -> np.ndarray:
        matrices = flat_reduced + y[:, None, None] * flat_ops
        eigenvalues = np.linalg.eigvalsh(matrices)
        return eigenvalues.max(axis=-1) - y * flat_bounds

    best_value = flat_base.copy()  # value at y = 0
    best_y = np.zeros_like(flat_base)

    def consider(y: np.ndarray, value: np.ndarray, mask: np.ndarray | None = None) -> None:
        nonlocal best_value, best_y
        better = value < best_value
        if mask is not None:
            better &= mask
        best_value = np.where(better, value, best_value)
        best_y = np.where(better, y, best_y)

    # The useful range of y scales like λ_max(Tr_out Z) / c; search a generous
    # bracket around it (g is convex, so golden-section is safe).
    upper = 10.0 * (flat_base / flat_bounds + 1.0)
    if y_hints is not None:
        hints = np.broadcast_to(np.asarray(y_hints, dtype=float), lead)[active]
        valid = np.isfinite(hints) & (hints > 0.0)
        if np.any(valid):
            safe = np.where(valid, hints, 0.0)
            consider(safe, objective(safe), valid)
            upper = np.where(valid, np.maximum(upper, 10.0 * hints), upper)
    upper = np.maximum(upper, 0.0)

    low = np.zeros_like(upper)
    high = upper
    width = high - low
    x1 = low + _INVPHI2 * width
    x2 = low + _INVPHI * width
    f1 = objective(x1)
    f2 = objective(x2)
    consider(x1, f1)
    consider(x2, f2)
    for _ in range(GOLDEN_SECTION_ITERATIONS):
        take_left = f1 < f2
        low = np.where(take_left, low, x1)
        high = np.where(take_left, x2, high)
        width = high - low
        probe = np.where(take_left, low + _INVPHI2 * width, low + _INVPHI * width)
        f_probe = objective(probe)
        x1, x2 = (
            np.where(take_left, probe, x2),
            np.where(take_left, x1, probe),
        )
        f1, f2 = (
            np.where(take_left, f_probe, f2),
            np.where(take_left, f1, f_probe),
        )
        consider(probe, f_probe)

    values[active] = best_value
    ys[active] = best_y
    return values, ys


def _certified_values_shared(
    values: np.ndarray,
    ys: np.ndarray,
    reduced: np.ndarray,
    operators: np.ndarray,
    bounds: np.ndarray,
    y_hints: np.ndarray | None,
    lead: tuple[int, ...],
) -> tuple[np.ndarray, np.ndarray]:
    """The shared-bracket multiplier search of :func:`certified_values_batch`.

    One request = one row of the flattened ``(requests, candidates)`` stack.
    Every evaluated point is itself a sound bound for the candidate it was
    evaluated on, and the best evaluated ``(y, value)`` per candidate is
    returned — the pilot phase only decides *where* the polish phase looks,
    never what is reported.  All arithmetic is per-request, so results are
    independent of which other requests share the batch (the per-gate entry
    points are batches of one through this same code).
    """
    cand = lead[-1]
    r_all = int(np.prod(lead[:-1]))
    dim = operators.shape[-1]
    red = reduced.reshape(r_all, cand, dim, dim)
    ops = operators.reshape(r_all, cand, dim, dim)
    bnds = bounds.reshape(r_all, cand)
    out_values = values.reshape(r_all, cand).copy()
    out_ys = ys.reshape(r_all, cand).copy()

    active = np.any(bnds > 0.0, axis=1)
    if not np.any(active):
        return out_values.reshape(lead), out_ys.reshape(lead)

    flat_reduced = red[active]
    flat_ops = ops[active]
    flat_bounds = bnds[active]
    flat_base = out_values[active]  # λ_max at y = 0
    count = flat_reduced.shape[0]
    rows = np.arange(count)

    def objective(y: np.ndarray) -> np.ndarray:
        matrices = flat_reduced + y[..., None, None] * flat_ops
        eigenvalues = np.linalg.eigvalsh(matrices)
        return eigenvalues.max(axis=-1) - y * flat_bounds

    best_value = flat_base.copy()
    best_y = np.zeros_like(flat_base)

    def consider(y: np.ndarray, value: np.ndarray, mask: np.ndarray | None = None) -> None:
        nonlocal best_value, best_y
        better = value < best_value
        if mask is not None:
            better &= mask
        best_value = np.where(better, value, best_value)
        best_y = np.where(better, y, best_y)

    # The useful range of y scales like λ_max(Tr_out Z) / c; the request's
    # shared bracket must cover every candidate, hence the max over the
    # candidate axis below.
    upper = 10.0 * (flat_base / flat_bounds + 1.0)
    if y_hints is not None:
        hints = np.broadcast_to(np.asarray(y_hints, dtype=float), lead)
        hints = hints.reshape(r_all, cand)[active]
        valid = np.isfinite(hints) & (hints > 0.0)
        if np.any(valid):
            safe = np.where(valid, hints, 0.0)
            consider(safe, objective(safe), valid)
            upper = np.where(valid, np.maximum(upper, 10.0 * hints), upper)
    upper = np.maximum(upper.max(axis=1), 0.0)  # one bracket per request

    low = np.zeros(count)
    high = upper
    width = high - low
    x1 = low + _INVPHI2 * width
    x2 = low + _INVPHI * width
    x1_all = np.broadcast_to(x1[:, None], (count, cand))
    x2_all = np.broadcast_to(x2[:, None], (count, cand))
    f1_all = objective(x1_all)
    f2_all = objective(x2_all)
    consider(x1_all, f1_all)
    consider(x2_all, f2_all)

    # Pilot phase: refine the bracket on the best candidate seen so far.
    pilot = np.argmin(best_value, axis=1)
    pilot_reduced = flat_reduced[rows, pilot]
    pilot_ops = flat_ops[rows, pilot]
    pilot_bounds = flat_bounds[rows, pilot]

    def pilot_objective(y: np.ndarray) -> np.ndarray:
        matrices = pilot_reduced + y[:, None, None] * pilot_ops
        eigenvalues = np.linalg.eigvalsh(matrices)
        return eigenvalues.max(axis=-1) - y * pilot_bounds

    def consider_pilot(y: np.ndarray, value: np.ndarray) -> None:
        better = value < best_value[rows, pilot]
        if np.any(better):
            best_value[rows[better], pilot[better]] = value[better]
            best_y[rows[better], pilot[better]] = y[better]

    f1 = f1_all[rows, pilot]
    f2 = f2_all[rows, pilot]
    for _ in range(GOLDEN_SECTION_SHARED_ITERATIONS):
        take_left = f1 < f2
        low = np.where(take_left, low, x1)
        high = np.where(take_left, x2, high)
        width = high - low
        probe = np.where(take_left, low + _INVPHI2 * width, low + _INVPHI * width)
        f_probe = pilot_objective(probe)
        x1, x2 = (
            np.where(take_left, probe, x2),
            np.where(take_left, x1, probe),
        )
        f1, f2 = (
            np.where(take_left, f_probe, f2),
            np.where(take_left, f1, f_probe),
        )
        consider_pilot(probe, f_probe)

    # Polish phase: every candidate searches the shared bracket on its own.
    low_c = np.broadcast_to(low[:, None], (count, cand))
    high_c = np.broadcast_to(high[:, None], (count, cand))
    width_c = high_c - low_c
    x1_c = low_c + _INVPHI2 * width_c
    x2_c = low_c + _INVPHI * width_c
    f1_c = objective(x1_c)
    f2_c = objective(x2_c)
    consider(x1_c, f1_c)
    consider(x2_c, f2_c)
    for _ in range(GOLDEN_SECTION_POLISH_ITERATIONS):
        take_left = f1_c < f2_c
        low_c = np.where(take_left, low_c, x1_c)
        high_c = np.where(take_left, x2_c, high_c)
        width_c = high_c - low_c
        probe = np.where(
            take_left, low_c + _INVPHI2 * width_c, low_c + _INVPHI * width_c
        )
        f_probe = objective(probe)
        x1_c, x2_c = (
            np.where(take_left, probe, x2_c),
            np.where(take_left, x1_c, probe),
        )
        f1_c, f2_c = (
            np.where(take_left, f_probe, f2_c),
            np.where(take_left, f1_c, f_probe),
        )
        consider(probe, f_probe)

    out_values[active] = best_value
    out_ys[active] = best_y
    return out_values.reshape(lead), out_ys.reshape(lead)


def certified_value(
    z: np.ndarray,
    choi: np.ndarray,
    *,
    constraint_operator: np.ndarray | None = None,
    constraint_bound: float = 0.0,
    y_hint: float | None = None,
) -> DualCertificate:
    """Certified upper bound from a feasible dual matrix ``z``.

    Scalar entry point of :func:`certified_values_batch`: the same fused code
    runs with a batch of one, so one-at-a-time and batched certification
    yield bit-identical values.  Without a constraint (or with a vacuous one,
    ``c <= 0``) the bound is simply ``lambda_max(Tr_out(z))``.
    """
    z = np.asarray(z, dtype=np.complex128)
    use_constraint = constraint_operator is not None and constraint_bound > 0.0
    if not use_constraint:
        values, _ = certified_values_batch(z[None])
        return DualCertificate(float(values[0]), z, 0.0, None, float(constraint_bound))
    operator = np.asarray(constraint_operator, dtype=np.complex128)
    operator = (operator + operator.conj().T) / 2
    values, ys = certified_values_batch(
        z[None],
        constraint_operators=operator[None],
        constraint_bounds=np.array([float(constraint_bound)]),
        y_hints=np.array(
            [float(y_hint) if y_hint is not None else np.nan], dtype=float
        ),
    )
    return DualCertificate(
        value=float(values[0]),
        z=z,
        y=float(ys[0]),
        constraint_operator=operator,
        constraint_bound=float(constraint_bound),
    )


def verify_certificate(
    certificate: DualCertificate,
    choi: np.ndarray,
    *,
    tolerance: float = 1e-7,
) -> bool:
    """Independently re-check a certificate's feasibility and value.

    Returns True when ``z >= -tol``, ``z - choi >= -tol``, ``y >= 0`` and the
    recorded value matches the dual objective at ``(z, y)`` up to tolerance.
    Used by :meth:`repro.core.derivation.Derivation.check`.
    """
    z = certificate.z
    scale = max(1.0, float(np.abs(choi).max()))
    if min_eigenvalue(z) < -tolerance * scale:
        return False
    if min_eigenvalue(z - choi) < -tolerance * scale:
        return False
    if certificate.y < -tolerance:
        return False
    recomputed = _dual_objective(
        z,
        certificate.y,
        certificate.constraint_operator,
        certificate.constraint_bound,
    )
    return bool(recomputed <= certificate.value + tolerance * scale + 1e-12)
