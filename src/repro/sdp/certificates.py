"""Dual certificates for the constrained diamond-norm SDPs.

The primal SDP of Eq. (2) maximises ``tr(J(Phi) W)``; its Lagrangian dual is

    minimise    lambda_max( Tr_out(Z) + y * Q ) - y * c
    subject to  Z >= J(Phi),  Z >= 0,  y >= 0,

where ``Q`` is the linear constraint operator (the local density matrix ρ'
for the (ρ̂, δ)-norm, the predicate Q for the (Q, λ)-norm) and ``c`` the
constraint bound.  By weak duality, *every* feasible ``(Z, y)`` yields a sound
upper bound on the constrained diamond norm — this is what makes Gleipnir's
reported bounds verified even though the underlying first-order solver is
approximate.

This module provides:

* :func:`repair_dual_candidate` — turn an arbitrary Hermitian candidate into
  an exactly feasible ``Z`` (two PSD projections; no iteration needed);
* :func:`certified_value` — the dual objective at a feasible ``Z`` after a
  one-dimensional convex minimisation over ``y >= 0``;
* :func:`verify_certificate` — an independent feasibility re-check used when
  re-validating derivations.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy import optimize

from ..errors import CertificationError
from ..linalg.channels import choi_output_trace_map
from ..linalg.decompositions import min_eigenvalue, positive_part

__all__ = [
    "DualCertificate",
    "repair_dual_candidate",
    "certified_value",
    "verify_certificate",
]


@dataclasses.dataclass(frozen=True)
class DualCertificate:
    """A verified dual-feasible point and the bound it certifies.

    Attributes:
        value: the certified upper bound on the constrained diamond norm.
        z: the dual matrix variable (feasible: ``z >= 0`` and ``z >= choi``).
        y: the multiplier of the linear constraint (0 when unconstrained).
        constraint_operator: the operator Q of the linear constraint (or None).
        constraint_bound: the bound c of the linear constraint.
    """

    value: float
    z: np.ndarray
    y: float
    constraint_operator: np.ndarray | None
    constraint_bound: float


def repair_dual_candidate(candidate: np.ndarray, choi: np.ndarray) -> np.ndarray:
    """Project an arbitrary Hermitian candidate onto the dual feasible set.

    Construction: let ``A = (candidate)_+`` (PSD part) and return
    ``Z = A + (choi - A)_+``.  Then ``Z >= 0`` (sum of PSD matrices) and
    ``Z - choi = (choi - A)_+ - (choi - A) = (choi - A)_- >= 0``, so ``Z`` is
    feasible by construction — regardless of how bad the candidate was.
    """
    candidate = np.asarray(candidate, dtype=np.complex128)
    choi = np.asarray(choi, dtype=np.complex128)
    if candidate.shape != choi.shape:
        raise CertificationError(
            f"candidate shape {candidate.shape} does not match Choi shape {choi.shape}"
        )
    a = positive_part(candidate)
    return a + positive_part(choi - a)


def _dual_objective(
    z: np.ndarray,
    y: float,
    constraint_operator: np.ndarray | None,
    constraint_bound: float,
) -> float:
    reduced = choi_output_trace_map(z)
    if constraint_operator is None or y == 0.0:
        matrix = reduced
        penalty = 0.0
    else:
        matrix = reduced + y * constraint_operator
        penalty = y * constraint_bound
    eigenvalues = np.linalg.eigvalsh((matrix + matrix.conj().T) / 2)
    return float(eigenvalues.max() - penalty)


def certified_value(
    z: np.ndarray,
    choi: np.ndarray,
    *,
    constraint_operator: np.ndarray | None = None,
    constraint_bound: float = 0.0,
    y_hint: float | None = None,
) -> DualCertificate:
    """Certified upper bound from a feasible dual matrix ``z``.

    When a linear constraint is present, the dual objective
    ``g(y) = lambda_max(Tr_out(z) + y Q) - y c`` is convex in ``y``; it is
    minimised over ``y >= 0`` with a bounded scalar search (seeded by
    ``y_hint`` when the solver provides one).  Without a constraint (or with a
    vacuous one, ``c <= 0``) the bound is simply ``lambda_max(Tr_out(z))``.
    """
    z = np.asarray(z, dtype=np.complex128)
    use_constraint = constraint_operator is not None and constraint_bound > 0.0
    if not use_constraint:
        value = _dual_objective(z, 0.0, None, 0.0)
        return DualCertificate(value, z, 0.0, None, float(constraint_bound))

    operator = np.asarray(constraint_operator, dtype=np.complex128)
    operator = (operator + operator.conj().T) / 2

    # Tr_out(Z) is independent of y; hoist it out of the scalar search so each
    # evaluation is a small matrix add plus one eigvalsh.
    reduced = choi_output_trace_map(z)
    reduced = (reduced + reduced.conj().T) / 2

    def objective(y: float) -> float:
        y = max(0.0, y)
        eigenvalues = np.linalg.eigvalsh(reduced + y * operator)
        return float(eigenvalues.max() - y * constraint_bound)

    # The useful range of y scales like lambda_max(Tr_out z) / c; search a
    # generous bracket around it (g is convex, so golden-section is safe).
    base = float(np.linalg.eigvalsh(reduced).max())
    upper = 10.0 * (base / constraint_bound + 1.0)
    candidates = [0.0]
    if y_hint is not None and y_hint > 0:
        candidates.append(float(y_hint))
        upper = max(upper, 10.0 * y_hint)
    result = optimize.minimize_scalar(
        objective, bounds=(0.0, upper), method="bounded", options={"xatol": 1e-12}
    )
    if result.x is not None:
        candidates.append(float(result.x))
    best_y = min(candidates, key=objective)
    return DualCertificate(
        value=objective(best_y),
        z=z,
        y=float(best_y),
        constraint_operator=operator,
        constraint_bound=float(constraint_bound),
    )


def verify_certificate(
    certificate: DualCertificate,
    choi: np.ndarray,
    *,
    tolerance: float = 1e-7,
) -> bool:
    """Independently re-check a certificate's feasibility and value.

    Returns True when ``z >= -tol``, ``z - choi >= -tol``, ``y >= 0`` and the
    recorded value matches the dual objective at ``(z, y)`` up to tolerance.
    Used by :meth:`repro.core.derivation.Derivation.check`.
    """
    z = certificate.z
    scale = max(1.0, float(np.abs(choi).max()))
    if min_eigenvalue(z) < -tolerance * scale:
        return False
    if min_eigenvalue(z - choi) < -tolerance * scale:
        return False
    if certificate.y < -tolerance:
        return False
    recomputed = _dual_objective(
        z,
        certificate.y,
        certificate.constraint_operator,
        certificate.constraint_bound,
    )
    return bool(recomputed <= certificate.value + tolerance * scale + 1e-12)
